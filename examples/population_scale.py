"""A million-client population on sixteen slots — the population plane tour.

The paper's cross-device regime has far more clients than any simulation can
materialize; the population plane (:mod:`repro.population`) registers N
logical clients as O(1) descriptors and multiplexes each round's sampled
cohort onto the existing K-slot cluster.  This walkthrough exercises the
plane end to end and *asserts* its three contracts along the way:

1. **Scale for free** — a ``ClientPopulation`` over N = 1 000 000 clients
   trains at cohort cost: registration is instant, each round touches only
   the 16 sampled clients, and resident client state stays bounded by the
   store budget (2·cohort), never by N.
2. **Parity** — with N = K and cohort=all, population mode is *bit-identical*
   to training the materialized cluster directly: binding is fresh-reset +
   snapshot overlay, an identity round-trip.
3. **Eviction transparency** — squeezing the state store to a single resident
   snapshot forces evict/rematerialize cycles through the middle of training
   and changes nothing, bit-for-bit.

Run with::

    python examples/population_scale.py
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import gaussian_blobs
from repro.experiments.run import TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster, make_optimizer
from repro.nn.architectures import mlp
from repro.population import ClientPopulation, PopulationConfig
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.utils.formatting import format_bytes
from repro.utils.rng import RngFactory


def make_workload(population: PopulationConfig | None = None) -> WorkloadConfig:
    train = gaussian_blobs(600, feature_dim=8, num_classes=3, seed=0)
    test = gaussian_blobs(150, feature_dim=8, num_classes=3, seed=0)
    workload = WorkloadConfig(
        name="population-demo",
        model_factory=lambda: mlp(8, 3, hidden_units=(16,), seed=0),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=16,
        batch_size=16,
        seed=0,
    )
    return workload.with_population(population) if population is not None else workload


def main() -> None:
    # -- 1. a million clients, sixteen slots -------------------------------
    config = PopulationConfig(
        num_clients=1_000_000,
        cohort_size=16,
        sampling="fixed",
        weighting="data-size",
    )
    workload = make_workload(config)
    cluster, test_dataset = build_cluster(workload)
    run = TrainingRun(accuracy_target=0.95, max_steps=25, eval_every_steps=5)
    result = run.execute(
        FDAStrategy(threshold=0.5), cluster, test_dataset,
        workload_name=workload.name,
    )
    population = cluster.population
    print(f"trained {result.parallel_steps} rounds over {population.describe()}")
    print(f"  final accuracy   : {result.final_accuracy:.3f}")
    print(f"  communication    : {format_bytes(result.communication_bytes)}")
    print(f"  stateful clients : {population.store.stateful_count} "
          f"(of {config.num_clients:,} registered)")
    print(f"  peak resident    : {population.peak_resident_clients} snapshots "
          f"(budget {config.effective_memory_budget})")
    # Only ever-sampled clients hold any state, and the resident set is a
    # function of the cohort size — a 10^6-client run fits in cohort memory.
    assert population.store.stateful_count <= result.parallel_steps * config.cohort_size
    assert population.peak_resident_clients <= 2 * config.cohort_size
    # Every round stepped exactly one cohort's worth of clients (FDA runs one
    # local step per round).
    assert sum(population.client_steps.values()) == result.parallel_steps * 16
    assert result.population == config.describe()

    # -- 2. cohort=all parity ----------------------------------------------
    rounds = 10
    plain_workload = make_workload()
    plain_cluster, _ = build_cluster(plain_workload)
    plain_strategy = LocalSGDStrategy(tau=2).attach(plain_cluster)
    plain_losses = [plain_strategy.run_round().mean_loss for _ in range(rounds)]

    pop_cluster, _ = build_cluster(plain_workload)
    pop_strategy = LocalSGDStrategy(tau=2).attach(pop_cluster)
    # client_seed_fn must reproduce the seeds build_cluster gave the workers
    # (RngFactory(seed).worker is a pure function, so a fresh factory works).
    parity_population = ClientPopulation(
        PopulationConfig(num_clients=16, cohort_size=16, weighting="uniform"),
        shards=[worker.dataset for worker in pop_cluster.workers],
        client_seed_fn=RngFactory(plain_workload.seed).worker,
    )
    parity_population.attach(pop_cluster, pop_strategy)
    pop_losses = [parity_population.run_round().mean_loss for _ in range(rounds)]
    np.testing.assert_array_equal(
        plain_cluster.parameter_matrix, pop_cluster.parameter_matrix
    )
    assert plain_losses == pop_losses
    assert plain_cluster.total_bytes == pop_cluster.total_bytes
    print("\ncohort=all over the workers' own shards -> bit-identical to the "
          "materialized cluster")

    # -- 3. eviction is invisible ------------------------------------------
    squeezed_cluster, _ = build_cluster(plain_workload)
    squeezed_strategy = LocalSGDStrategy(tau=2).attach(squeezed_cluster)
    squeezed_population = ClientPopulation(
        PopulationConfig(
            num_clients=16, cohort_size=16, weighting="uniform", memory_budget=1
        ),
        shards=[worker.dataset for worker in squeezed_cluster.workers],
        client_seed_fn=RngFactory(plain_workload.seed).worker,
    )
    squeezed_population.attach(squeezed_cluster, squeezed_strategy)
    for _ in range(rounds):
        squeezed_population.run_round()
    np.testing.assert_array_equal(
        squeezed_cluster.parameter_matrix, plain_cluster.parameter_matrix
    )
    assert squeezed_population.store.evictions > 0
    assert squeezed_population.store.peak_resident == 1
    print(f"memory_budget=1 forced {squeezed_population.store.evictions} "
          f"evictions and {squeezed_population.store.spill_loads} disk reloads "
          "-> still bit-identical")


if __name__ == "__main__":
    main()
