"""Error-feedback compression under FDA, with per-link compressed-byte ledgers.

Two points from the paper, demonstrated end-to-end on the unified
collective-level compression subsystem (:mod:`repro.compression`):

1. **FDA is orthogonal to compression** (Section 2): FDA decides *when* to
   synchronize, compression shrinks *what* is sent, and the savings compose
   multiplicatively.  The example runs Synchronous (BSP), FDA, and both again
   with error-feedback top-k installed at the cluster level — the same
   ``WorkloadConfig.with_compression`` switch serves every strategy.

2. **The fabric charges true compressed bytes** (and translates them into
   wall-time): per-link ledgers on a hierarchical topology show each edge
   carrying the top-k payload (index/value pairs) instead of the dense
   ``4·d``, and the FL-vs-HPC network models turn the byte gap into a
   wall-clock gap.

The example *asserts* its headline claims — compressed ledgers must shrink —
so it doubles as an executable document.

Run with::

    python examples/compression_and_costing.py
"""

from __future__ import annotations

from repro import (
    CompressionConfig,
    FDAStrategy,
    SynchronousStrategy,
    TrainingRun,
    build_cluster,
)
from repro.experiments.registry import lenet_mnist_workload
from repro.utils.formatting import format_bytes, format_duration


#: Error-feedback top-k keeping 10% of the drift: a 5x smaller sync payload
#: (each kept entry costs an index + a value), with the dropped mass carried
#: in the cluster's (K, d) residual matrix and re-sent once it grows large.
COMPRESSION = CompressionConfig("topk", ratio=0.1, error_feedback=True)


def main() -> None:
    print("Error-feedback compression under FDA, with per-link byte ledgers")
    print("=" * 68)
    # A hierarchical fabric (workers -> group heads -> root) on the paper's
    # 0.5 Gbps federated channel: multi-hop routes make per-link ledgers
    # interesting, and the slow network makes bytes visible as wall-clock.
    workload = lenet_mnist_workload(num_workers=4).with_fabric(
        topology="hierarchical", network="fl"
    )
    run = TrainingRun(accuracy_target=0.9, max_steps=240, eval_every_steps=20)

    strategies = {
        "Synchronous": lambda: SynchronousStrategy(),
        "Synchronous + topk(0.1)+ef": lambda: SynchronousStrategy(),
        "LinearFDA (Theta = 8)": lambda: FDAStrategy(threshold=8.0, variant="linear"),
        "LinearFDA + topk(0.1)+ef": lambda: FDAStrategy(threshold=8.0, variant="linear"),
    }

    results, clusters = {}, {}
    for name, factory in strategies.items():
        configured = (
            workload.with_compression(COMPRESSION) if "topk" in name else workload
        )
        cluster, test_dataset = build_cluster(configured)
        results[name] = run.execute(factory(), cluster, test_dataset, workload_name=name)
        clusters[name] = cluster

    print(f"\n{'strategy':<28}{'model-sync':>12}{'total':>12}{'wall-clock':>12}{'acc':>7}")
    print("-" * 71)
    for name, result in results.items():
        print(
            f"{name:<28}{format_bytes(result.model_bytes):>12}"
            f"{format_bytes(result.communication_bytes):>12}"
            f"{format_duration(result.virtual_seconds):>12}"
            f"{result.final_accuracy:>7.3f}"
        )

    # -- the executable claims -------------------------------------------------
    plain_bsp = results["Synchronous"]
    compressed_bsp = results["Synchronous + topk(0.1)+ef"]
    plain_fda = results["LinearFDA (Theta = 8)"]
    compressed_fda = results["LinearFDA + topk(0.1)+ef"]

    # Compression shrinks the model-sync ledger for BSP *and* for FDA: the
    # subsystem lives at the collective layer, so FDA's dynamically triggered
    # synchronizations compress exactly like BSP's per-step ones.
    assert compressed_bsp.model_bytes < plain_bsp.model_bytes, "BSP ledger must shrink"
    per_sync_plain = plain_fda.model_bytes / max(plain_fda.synchronizations, 1)
    per_sync_compressed = compressed_fda.model_bytes / max(
        compressed_fda.synchronizations, 1
    )
    assert per_sync_compressed < per_sync_plain, "FDA per-sync payload must shrink"

    # The per-link ledger on the hierarchy records compressed volumes on every
    # edge (leaf->head, head->root, and back): each edge of the compressed run
    # carried fewer bytes than the same edge of the exact run.
    plain_links = clusters["Synchronous"].fabric.bytes_by_link
    compressed_links = clusters["Synchronous + topk(0.1)+ef"].fabric.bytes_by_link
    assert compressed_links, "the hierarchy must have recorded per-link traffic"
    shrunk = sum(
        compressed_links[link] < plain_links[link] for link in compressed_links
    )
    assert shrunk == len(compressed_links), "every link must carry fewer bytes"

    print("\nper-link ledger (hierarchical topology, worker->head->root and back):")
    print(f"{'link':>12}{'exact BSP':>14}{'topk(0.1)+ef':>14}")
    server = -1
    for (src, dst), plain_bytes in sorted(plain_links.items()):
        label = f"{'root' if src == server else src}->{'root' if dst == server else dst}"
        print(
            f"{label:>12}{format_bytes(plain_bytes):>14}"
            f"{format_bytes(compressed_links.get((src, dst), 0)):>14}"
        )

    bsp_saving = plain_bsp.model_bytes / max(compressed_bsp.model_bytes, 1)
    fda_saving = plain_bsp.model_bytes / max(compressed_fda.model_bytes, 1)
    print(
        f"\ncompression alone saves {bsp_saving:.1f}x on BSP's ledger; FDA's dynamic "
        f"schedule plus the same compressor reaches {fda_saving:.1f}x vs plain BSP — "
        "when-to-send and what-to-send savings multiply."
    )
    # Same protocol cadence, only the payload differs: the byte gap becomes a
    # communication-time gap on the bandwidth side, while per-collective
    # latency (which compression cannot remove) sets the floor.
    print(
        "time BSP spends communicating on the 0.5 Gbps FL channel: "
        f"{format_duration(plain_bsp.comm_seconds)} exact vs "
        f"{format_duration(compressed_bsp.comm_seconds)} compressed — "
        "bandwidth time shrinks with the payload; per-collective latency remains."
    )


if __name__ == "__main__":
    main()
