"""Compression compatibility and wall-time estimation across network settings.

Two secondary points from the paper, demonstrated end-to-end:

1. **FDA is orthogonal to compression** (Section 2): quantizing/sparsifying the
   synchronized payload multiplies the savings of *any* strategy, FDA included,
   because FDA only changes when models are exchanged, not what is exchanged.
   The example compares plain Synchronous, quantized Synchronous, and FDA.

2. **Translating bytes into wall-time** (Section 4.3): the same byte count
   costs very different wall-clock time on the paper's ARIS InfiniBand fabric
   versus a 0.5 Gbps federated channel, which is why the recommended Θ differs
   per deployment setting.  The example prices each run under both networks.

Run with::

    python examples/compression_and_costing.py
"""

from __future__ import annotations

from repro import FDAStrategy, SynchronousStrategy, TrainingRun, build_cluster
from repro.distributed.network import FL_NETWORK, HPC_NETWORK
from repro.experiments.registry import lenet_mnist_workload
from repro.strategies.compression import CompressedSynchronousStrategy, QuantizationCompressor
from repro.utils.formatting import format_bytes, format_duration


SECONDS_PER_STEP = 0.02  # assumed local compute time per mini-batch step


def price_run(result) -> str:
    """Wall-time estimate of a run under the FL and HPC network models."""
    operations = result.synchronizations + result.evaluations
    times = []
    for network in (HPC_NETWORK, FL_NETWORK):
        total = network.wall_time(
            communication_bytes=result.communication_bytes,
            num_operations=operations,
            parallel_steps=result.parallel_steps,
            seconds_per_step=SECONDS_PER_STEP,
        )
        times.append(f"{network.name}: {format_duration(total)}")
    return "  ".join(times)


def main() -> None:
    print("Compression compatibility and network costing")
    print("=" * 60)
    workload = lenet_mnist_workload(num_workers=5)
    run = TrainingRun(accuracy_target=0.9, max_steps=300, eval_every_steps=20)

    strategies = {
        "Synchronous": lambda: SynchronousStrategy(),
        "Synchronous + 8-bit quantization": lambda: CompressedSynchronousStrategy(
            QuantizationCompressor(bits=8)
        ),
        "LinearFDA (Theta = 8)": lambda: FDAStrategy(threshold=8.0, variant="linear"),
    }

    results = {}
    for name, factory in strategies.items():
        cluster, test_dataset = build_cluster(workload)
        results[name] = run.execute(factory(), cluster, test_dataset, workload_name=name)

    print(f"\n{'strategy':<34}{'comm':>12}{'steps':>8}{'acc':>7}   wall-time estimate")
    print("-" * 100)
    for name, result in results.items():
        print(
            f"{name:<34}{format_bytes(result.communication_bytes):>12}"
            f"{result.parallel_steps:>8}{result.final_accuracy:>7.3f}   {price_run(result)}"
        )

    plain = results["Synchronous"]
    quantized = results["Synchronous + 8-bit quantization"]
    fda = results["LinearFDA (Theta = 8)"]
    print(
        f"\nquantization alone saves {plain.communication_bytes / max(quantized.communication_bytes, 1):.1f}x, "
        f"FDA saves {plain.communication_bytes / max(fda.communication_bytes, 1):.1f}x — and the two "
        "compose, because FDA decides *when* to synchronize while compression shrinks *what* is sent."
    )


if __name__ == "__main__":
    main()
