"""Quickstart: train one model with Federated Dynamic Averaging.

This script builds the smallest interesting setup — five simulated workers,
the miniature LeNet-5, a synthetic MNIST-like dataset — and compares FDA
(LinearFDA) against the Synchronous baseline at the same accuracy target,
printing the communication and computation costs of both, exactly the two
metrics the paper reports.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FDAStrategy, SynchronousStrategy, TrainingRun, build_cluster
from repro.experiments.registry import lenet_mnist_workload
from repro.experiments.reporting import format_comparison, format_results_table
from repro.utils.formatting import format_bytes


def main() -> None:
    print("Federated Dynamic Averaging — quickstart")
    print("=" * 60)

    # 1. A workload: model + dataset + local optimizer + K workers (Table 2 row 1).
    workload = lenet_mnist_workload(num_workers=5)
    model = workload.model_factory()
    print(f"model: {model.name}  (d = {model.num_parameters} parameters)")
    print(f"train samples: {len(workload.train_dataset)}, "
          f"test samples: {len(workload.test_dataset)}, workers: {workload.num_workers}")

    # 2. The run definition: train until the global model hits the accuracy target.
    run = TrainingRun(accuracy_target=0.9, max_steps=400, eval_every_steps=20)

    # 3. Execute LinearFDA and the Synchronous baseline on identical clusters.
    results = []
    for strategy in (FDAStrategy(threshold=8.0, variant="linear"), SynchronousStrategy()):
        cluster, test_dataset = build_cluster(workload)
        result = run.execute(strategy, cluster, test_dataset, workload_name=workload.name)
        results.append(result)
        print(
            f"\n{result.strategy}: reached target = {result.reached_target}, "
            f"final accuracy = {result.final_accuracy:.3f}"
        )
        print(f"  communication: {format_bytes(result.communication_bytes)} "
              f"({result.synchronizations} synchronizations)")
        print(f"  computation:   {result.parallel_steps} in-parallel learning steps")

    # 4. Summary in the paper's format.
    print("\n" + format_results_table(results, reached_only=False))
    print(format_comparison(results, "LinearFDA", "Synchronous"))


if __name__ == "__main__":
    main()
