"""Transfer learning with FDA: fine-tuning a head over a frozen backbone.

The paper's hardest scenario (Figure 13) fine-tunes a large pretrained model
on CIFAR-100, where SketchFDA's tighter variance estimate pays off — it
synchronizes less often than LinearFDA and saves roughly 1.5× communication.
This example reproduces the pipeline end-to-end with the library's substitutes:

* a frozen :class:`PretrainedFeatureExtractor` plays the ImageNet-pretrained
  ConvNeXtLarge backbone,
* a GELU head trained with AdamW plays the fine-tuned model,
* LinearFDA, SketchFDA and Synchronous are compared at the same target.

Run with::

    python examples/transfer_learning.py
"""

from __future__ import annotations

from repro import FDAStrategy, SynchronousStrategy, TrainingRun, build_cluster
from repro.experiments.registry import (
    REGISTRY_SKETCH_DEPTH,
    REGISTRY_SKETCH_WIDTH,
    transfer_learning_workload,
)
from repro.experiments.reporting import format_results_table
from repro.utils.formatting import format_bytes


def main() -> None:
    print("Transfer learning (fine-tuning) with FDA")
    print("=" * 60)

    workload = transfer_learning_workload(num_workers=3)
    head = workload.model_factory()
    print(f"frozen backbone output -> trainable head with d = {head.num_parameters} parameters")
    print(f"classes: {workload.train_dataset.num_classes}, workers: {workload.num_workers}, "
          f"local optimizer: AdamW")

    run = TrainingRun(accuracy_target=0.55, max_steps=500, eval_every_steps=40)
    strategies = {
        "LinearFDA": lambda: FDAStrategy(threshold=1.0, variant="linear"),
        "SketchFDA": lambda: FDAStrategy(
            threshold=1.0,
            variant="sketch",
            sketch_depth=REGISTRY_SKETCH_DEPTH,
            sketch_width=REGISTRY_SKETCH_WIDTH,
        ),
        "Synchronous": lambda: SynchronousStrategy(),
    }

    results = []
    for name, factory in strategies.items():
        cluster, test_dataset = build_cluster(workload)
        result = run.execute(factory(), cluster, test_dataset, workload_name=workload.name)
        results.append(result)
        print(
            f"\n{name}: accuracy {result.final_accuracy:.3f} "
            f"(target reached: {result.reached_target})"
        )
        print(f"  communication {format_bytes(result.communication_bytes)}  "
              f"synchronizations {result.synchronizations}  steps {result.parallel_steps}")

    print("\n" + format_results_table(results, reached_only=False))

    linear = next(r for r in results if r.strategy == "LinearFDA")
    sketch = next(r for r in results if r.strategy == "SketchFDA")
    if sketch.synchronizations <= linear.synchronizations:
        print(
            "\nSketchFDA synchronized no more often than LinearFDA "
            f"({sketch.synchronizations} vs {linear.synchronizations}), matching the paper's "
            "finding that the tighter sketch estimate pays off in the fine-tuning scenario."
        )


if __name__ == "__main__":
    main()
