"""Worker churn, lossy links, and checkpoint/restore — a guided chaos run.

Real federated deployments lose workers mid-round, drop packets, and get
preempted; the reproduction's fault plane (:mod:`repro.faults`) simulates all
of that deterministically so robustness claims are reproducible bit-for-bit.
This walkthrough exercises the three layers end to end and *asserts* the
contracts along the way:

1. **A chaos run** — FDA trains through 15% per-round worker crashes and 10%
   per-link message loss.  Crashed workers freeze (their parameter-plane rows
   stop moving), survivors renormalize their collectives, and every rejoin
   pays a real model download charged to the byte ledger.
2. **Determinism** — the same :class:`~repro.faults.plan.FaultPlan` seed
   reproduces the identical fault log and final parameters.
3. **Checkpoint/restore** — the run snapshots itself mid-flight; a fresh
   cluster restored from the snapshot continues the trajectory bit-exactly.

Run with::

    python examples/churn_and_recovery.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.data.synthetic import gaussian_blobs
from repro.experiments.run import TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster, make_optimizer
from repro.faults import FaultPlan
from repro.nn.architectures import mlp
from repro.strategies.fda_strategy import FDAStrategy
from repro.utils.formatting import format_bytes


def make_workload(faults: FaultPlan | None = None) -> WorkloadConfig:
    train = gaussian_blobs(360, feature_dim=8, num_classes=3, seed=0)
    test = gaussian_blobs(150, feature_dim=8, num_classes=3, seed=0)
    return WorkloadConfig(
        name="churn-demo",
        model_factory=lambda: mlp(8, 3, hidden_units=(16,), seed=0),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=4,
        batch_size=16,
        seed=0,
        faults=faults,
    )


def run_once(workload: WorkloadConfig, max_steps: int = 80, **run_kwargs):
    resume_from = run_kwargs.pop("resume_from", None)
    cluster, test_dataset = build_cluster(workload)
    run = TrainingRun(
        accuracy_target=0.95, max_steps=max_steps, eval_every_steps=20, **run_kwargs
    )
    result = run.execute(
        FDAStrategy(threshold=0.5), cluster, test_dataset,
        workload_name=workload.name, resume_from=resume_from,
    )
    return cluster, result


def main() -> None:
    plan = FaultPlan(crash_rate=0.15, loss_rate=0.1, recovery_rounds=3, seed=7)
    workload = make_workload(plan)

    # -- 1. train through the chaos ---------------------------------------
    cluster, result = run_once(workload)
    log = result.fault_log
    print(f"chaos run under plan [{result.faults}]")
    print(f"  final accuracy    : {result.final_accuracy:.3f}")
    print(f"  communication     : {format_bytes(result.communication_bytes)}")
    print(f"  crashes / rejoins : {len(log['crashes'])} / {len(log['rejoins'])}")
    print(f"  retransmissions   : {log['total_retries']} retries, "
          f"{format_bytes(log['retransmitted_bytes'])}, "
          f"{log['total_backoff_seconds']:.2f}s backoff")
    recovery_bytes = sum(event["recovery_bytes"] for event in log["rejoins"])
    print(f"  recovery downloads: {format_bytes(recovery_bytes)}")
    assert log["crashes"], "the plan should have injected churn"
    assert all(event["recovery_bytes"] > 0 for event in log["rejoins"]), (
        "every rejoin pays a real model download"
    )
    # The timeline kept a churn ledger in virtual time, one event per
    # crash/rejoin — the same events the fault log recorded.
    assert len(cluster.timeline.churn_events) == len(log["crashes"]) + len(log["rejoins"])

    # -- 2. chaos is deterministic -----------------------------------------
    cluster_again, result_again = run_once(workload)
    assert result_again.fault_log == result.fault_log
    np.testing.assert_array_equal(
        cluster_again.parameter_matrix, cluster.parameter_matrix
    )
    print("\nsame plan, same seed -> identical fault log and final parameters")

    # -- 3. interrupt, restore, continue — bit-exactly ---------------------
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "checkpoint.json"
        # "Crash" the driver at 40 steps, snapshotting every 20.
        run_once(workload, max_steps=40, checkpoint_every=20, checkpoint_path=snapshot)
        # A fresh process would do exactly this: rebuild, restore, continue.
        resumed_cluster, resumed = run_once(workload, resume_from=snapshot)
    np.testing.assert_array_equal(
        resumed_cluster.parameter_matrix, cluster.parameter_matrix
    )
    assert resumed.history.entries == result.history.entries
    assert resumed.fault_log == result.fault_log
    print("interrupted at step 40, restored, continued -> bit-identical to the "
          "uninterrupted run")


if __name__ == "__main__":
    main()
