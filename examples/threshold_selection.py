"""Choosing the variance threshold Θ: trade-off sweep, guideline, and dynamic Θ.

Θ is FDA's single tuning knob: larger values tolerate more model divergence
before synchronizing (less communication, potentially more computation).  This
example walks through the three ways the library supports choosing it:

1. sweep a Θ grid and inspect the communication/computation trade-off
   (Figures 8-11 of the paper);
2. apply the paper's linear guideline Θ ≈ c·d for a deployment setting
   (Figure 12), plus the workload-specific calibration helper;
3. let the dynamic-Θ controller (the paper's future-work extension) adapt Θ
   online toward a bandwidth budget.

Run with::

    python examples/threshold_selection.py
"""

from __future__ import annotations

from repro import DynamicThetaController, FDAStrategy, TrainingRun, build_cluster
from repro.core.theta import calibrate_theta, theta_guideline
from repro.experiments.registry import lenet_mnist_workload
from repro.experiments.sweep import sweep_theta
from repro.strategies.synchronous import SynchronousStrategy
from repro.utils.formatting import format_bytes


def sweep_section(workload, run) -> None:
    print("\n### 1. Θ sweep (communication vs computation trade-off)")
    thetas = [1.0, 4.0, 16.0, 64.0]
    points = sweep_theta(workload, thetas, run, variant="linear")
    print(f"{'Theta':>8}  {'reached':>7}  {'comm':>12}  {'steps':>6}  {'syncs':>5}")
    for point in points:
        result = point.result
        print(
            f"{point.value:>8g}  {str(result.reached_target):>7}  "
            f"{format_bytes(result.communication_bytes):>12}  "
            f"{result.parallel_steps:>6}  {result.synchronizations:>5}"
        )
    print("Expected trend: synchronizations and model traffic drop as Θ grows.")


def guideline_section(workload) -> None:
    print("\n### 2. The paper's Θ guideline and workload calibration")
    dimension = workload.model_factory().num_parameters
    for setting in ("fl", "balanced", "hpc"):
        print(f"  paper guideline ({setting:>8}): Θ ≈ {theta_guideline(dimension, setting):.4f}"
              f"  (d = {dimension})")

    # Workload-specific calibration: probe the per-step worker drift of a short
    # synchronous run and target ~20 local steps between synchronizations.
    cluster, _ = build_cluster(workload)
    strategy = SynchronousStrategy().attach(cluster)
    drift_norms = []
    for _ in range(10):
        reference = cluster.average_parameters()
        cluster.step_all()
        per_worker = [
            float((worker.drift_from(reference) ** 2).sum()) for worker in cluster.workers
        ]
        drift_norms.append(sum(per_worker) / len(per_worker))
        cluster.synchronize()
    calibrated = calibrate_theta(drift_norms, target_sync_interval=20)
    print(f"  calibrated from drift probe: Θ ≈ {calibrated:.3f} "
          "(aimed at ~20 steps between synchronizations)")


def dynamic_section(workload, run) -> None:
    print("\n### 3. Dynamic Θ: tracking a bandwidth budget (future-work extension)")
    controller = DynamicThetaController(
        target_bytes_per_step=4000.0, window=10, adjustment=1.5
    )
    strategy = FDAStrategy(threshold=1.0, variant="linear", theta_controller=controller)
    cluster, test_dataset = build_cluster(workload)
    result = run.execute(strategy, cluster, test_dataset, workload_name="dynamic-theta")
    per_step = result.communication_bytes / max(result.parallel_steps, 1)
    print(f"  final Θ after adaptation: {strategy.current_threshold:.3f} "
          f"(started at 1.0)")
    print(f"  bytes per step: {per_step:.0f} (budget was 4000)")
    print(f"  reached accuracy target: {result.reached_target} "
          f"(accuracy {result.final_accuracy:.3f})")


def main() -> None:
    print("Selecting the FDA variance threshold Θ")
    print("=" * 60)
    workload = lenet_mnist_workload(num_workers=4)
    run = TrainingRun(accuracy_target=0.9, max_steps=300, eval_every_steps=20)
    sweep_section(workload, run)
    guideline_section(workload)
    dynamic_section(workload, run)


if __name__ == "__main__":
    main()
