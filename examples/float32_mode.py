"""float32 as a first-class compute mode: half the bytes, faster steps.

The paper reports communication in float32 terms — real FL deployments train
and ship single-precision models.  This reproduction keeps float64 as the
bit-exact reference mode (every golden trajectory is pinned against it) and
offers float32 as a supported fast mode behind the backend seam
(:mod:`repro.backend`), selected with one knob: ``WorkloadConfig.dtype`` /
``SimulatedCluster(dtype=...)``.

Two claims, demonstrated end-to-end and *asserted*:

1. **Conservation** — the fabric prices collectives at the plane dtype's
   itemsize, so the float32 run of the same protocol charges *exactly* half
   the sync bytes of the float64 run, on the ledger total and on every
   individual link of the topology.

2. **Throughput** — on a bandwidth-bound model (wide stacked GEMMs, a
   ``(K, d)`` optimizer update measured in megabytes), halving the element
   size buys a measurable steps/s improvement on the batched engine.

Run with::

    python examples/float32_mode.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.architectures import mlp
from repro.optim.sgd import SGD
from repro.utils.formatting import format_bytes

#: The workload: K=8 workers on a wide d≈1e5 MLP (9 hidden layers of width
#: 100) — stacked GEMMs big enough that memory traffic, not Python dispatch,
#: carries the step.  Deliberately the same regime as the BENCH dtype cell.
NUM_WORKERS = 8
FEATURES, WIDTH, DEPTH, CLASSES = 150, 100, 9, 40
BATCH_SIZE = 16
STEPS = 10


def build_cluster(dtype: str) -> SimulatedCluster:
    rng = np.random.default_rng(0)
    workers = []
    for worker_id in range(NUM_WORKERS):
        model = mlp(FEATURES, CLASSES, hidden_units=(WIDTH,) * DEPTH, seed=1)
        x = rng.normal(size=(2 * BATCH_SIZE, FEATURES))
        y = rng.integers(0, CLASSES, size=2 * BATCH_SIZE)
        workers.append(
            Worker(
                worker_id,
                model,
                Dataset(x, y, CLASSES),
                SGD(0.05),
                batch_size=BATCH_SIZE,
                seed=worker_id,
            )
        )
    # A ring topology so the per-link ledger has several edges to compare;
    # the default cost model prices at the dtype's itemsize (8 vs 4 B).
    return SimulatedCluster(workers, execution="batched", topology="ring", dtype=dtype)


def run_mode(dtype: str):
    """Train STEPS steps (sync every other step); return (cluster, steps/s)."""
    cluster = build_cluster(dtype)
    cluster.step_all()  # warmup: optimizer state, layer scratch, BLAS threads
    start = time.perf_counter()
    for step in range(STEPS):
        loss = cluster.step_all()
        if step % 2 == 1:
            cluster.synchronize(include_buffers=False)
    elapsed = time.perf_counter() - start
    assert np.isfinite(loss), f"{dtype} training must stay finite"
    return cluster, STEPS / elapsed


def main() -> None:
    print("float32 fast mode vs the float64 reference, same protocol")
    print("=" * 64)
    clusters, rates = {}, {}
    for dtype in ("float64", "float32"):
        clusters[dtype], rates[dtype] = run_mode(dtype)
        assert clusters[dtype].parameter_matrix.dtype == np.dtype(dtype)

    d = clusters["float64"].model_dimension
    print(f"\nmodel dimension d = {d:,}; K = {NUM_WORKERS} workers, ring topology")
    print(f"\n{'mode':<10}{'steps/s':>10}{'sync bytes':>14}{'B/element':>11}")
    print("-" * 45)
    for dtype in ("float64", "float32"):
        cluster = clusters[dtype]
        per_element = cluster.tracker.cost_model.bytes_per_element
        print(
            f"{dtype:<10}{rates[dtype]:>10.1f}"
            f"{format_bytes(cluster.total_bytes):>14}{per_element:>11}"
        )

    # -- claim 1: exact byte conservation, total and per link -----------------
    total64 = clusters["float64"].total_bytes
    total32 = clusters["float32"].total_bytes
    assert total64 == 2 * total32, (
        f"float32 must charge exactly half the sync bytes: {total32} vs {total64}"
    )
    links64 = clusters["float64"].fabric.bytes_by_link
    links32 = clusters["float32"].fabric.bytes_by_link
    assert links32, "the ring must have recorded per-link traffic"
    assert set(links64) == set(links32), "both runs must use the same links"
    for link in links64:
        assert links64[link] == 2 * links32[link], f"link {link} must carry half"

    print("\nper-link ledger (ring, each worker to its neighbour):")
    print(f"{'link':>8}{'float64':>12}{'float32':>12}{'ratio':>7}")
    for (src, dst), bytes64 in sorted(links64.items())[:4]:
        print(
            f"{f'{src}->{dst}':>8}{format_bytes(bytes64):>12}"
            f"{format_bytes(links32[(src, dst)]):>12}"
            f"{bytes64 / links32[(src, dst)]:>6.1f}x"
        )
    print(f"   ... every one of the {len(links64)} links carries exactly half.")

    # -- claim 2: the measured steps/s delta ----------------------------------
    speedup = rates["float32"] / rates["float64"]
    print(
        f"\nmeasured throughput: {rates['float64']:.1f} steps/s at float64 vs "
        f"{rates['float32']:.1f} at float32 — {speedup:.2f}x from halving the "
        "element size on a bandwidth-bound model."
    )
    assert speedup > 1.1, (
        f"expected a measurable float32 speedup on this model, got {speedup:.2f}x "
        "(a loaded machine can blur the ratio; re-run on a quiet one)"
    )
    print(
        "\nfloat64 stays the bit-exact reference: golden trajectories and parity "
        "suites pin it; float32 is the deployment-realistic fast mode, one "
        "`dtype=\"float32\"` away."
    )


if __name__ == "__main__":
    main()
