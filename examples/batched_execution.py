"""Batched execution: advance all K workers in one vectorized pass.

The simulator has two execution engines.  The default, ``"sequential"``,
steps the K simulated workers one Python loop iteration at a time — faithful
and simple, but per-layer Python dispatch dominates at the large worker
counts the paper sweeps (K up to 64).  ``execution="batched"`` runs the whole
cluster's forward/backward as stacked ``(K, B, ...)`` kernels over views of
the cluster's ``(K, d)`` parameter matrix, and applies all K optimizer
updates as one ``(K, d)`` in-place step.  Same protocol, same byte ledger,
same trajectory (to floating-point tolerance) — only faster.

This example trains LinearFDA twice, once per engine, and verifies that the
results agree while reporting the wall-clock difference.

Run with::

    python examples/batched_execution.py
"""

from __future__ import annotations

import time

from repro import FDAStrategy, TrainingRun, build_cluster
from repro.experiments.registry import lenet_mnist_workload
from repro.utils.formatting import format_bytes


def main() -> None:
    print("Batched K-worker execution engine")
    print("=" * 60)

    # One flag on the workload selects the engine for every cluster built
    # from it; `repro.cli compare --execution batched` does the same thing
    # from the command line.
    workload = lenet_mnist_workload(num_workers=16)
    run = TrainingRun(accuracy_target=0.9, max_steps=200, eval_every_steps=40)

    results = {}
    for execution in ("sequential", "batched"):
        cluster, test_dataset = build_cluster(workload.with_execution(execution))
        start = time.perf_counter()
        result = run.execute(
            FDAStrategy(threshold=8.0, variant="linear"),
            cluster,
            test_dataset,
            workload_name=workload.name,
        )
        elapsed = time.perf_counter() - start
        results[execution] = (result, elapsed)
        print(
            f"\n{execution:>10}: accuracy {result.final_accuracy:.3f}, "
            f"{result.parallel_steps} steps, "
            f"{result.synchronizations} syncs, "
            f"{format_bytes(result.communication_bytes)}, "
            f"{elapsed:.2f}s wall-clock"
        )

    sequential, seq_time = results["sequential"]
    batched, bat_time = results["batched"]
    assert sequential.communication_bytes == batched.communication_bytes, (
        "the engines must charge identical communication"
    )
    assert sequential.synchronizations == batched.synchronizations
    print(
        f"\nidentical ledgers ({format_bytes(batched.communication_bytes)}, "
        f"{batched.synchronizations} syncs); "
        f"batched engine ran {seq_time / bat_time:.2f}x faster"
    )


if __name__ == "__main__":
    main()
