"""Batched execution: advance all K workers in one vectorized pass.

The simulator has two execution engines.  The default, ``"sequential"``,
steps the K simulated workers one Python loop iteration at a time — faithful
and simple, but per-layer Python dispatch dominates at the large worker
counts the paper sweeps (K up to 64).  ``execution="batched"`` runs the whole
cluster's forward/backward as stacked ``(K, B, ...)`` kernels over views of
the cluster's ``(K, d)`` parameter matrix, and applies all K optimizer
updates as one ``(K, d)`` in-place step.  Same protocol, same byte ledger,
same trajectory (to floating-point tolerance) — only faster.

This example trains LinearFDA twice, once per engine, and verifies that the
results agree while reporting the wall-clock difference.  A second section
does the same under **partial participation** (``dropout_rate=0.25``): the
batched engine then executes only the participating rows of its ``(K, d)``
matrices per step — dropped-out workers neither compute nor consume RNG
draws, exactly like the sequential loop, so the runs still agree while
staying vectorized.

Run with::

    python examples/batched_execution.py
"""

from __future__ import annotations

import time

from repro import FDAStrategy, TrainingRun, build_cluster
from repro.experiments.registry import lenet_mnist_workload
from repro.utils.formatting import format_bytes


def main() -> None:
    print("Batched K-worker execution engine")
    print("=" * 60)

    # One flag on the workload selects the engine for every cluster built
    # from it; `repro.cli compare --execution batched` does the same thing
    # from the command line.
    workload = lenet_mnist_workload(num_workers=16)
    run = TrainingRun(accuracy_target=0.9, max_steps=200, eval_every_steps=40)

    results = {}
    for execution in ("sequential", "batched"):
        cluster, test_dataset = build_cluster(workload.with_execution(execution))
        start = time.perf_counter()
        result = run.execute(
            FDAStrategy(threshold=8.0, variant="linear"),
            cluster,
            test_dataset,
            workload_name=workload.name,
        )
        elapsed = time.perf_counter() - start
        results[execution] = (result, elapsed)
        print(
            f"\n{execution:>10}: accuracy {result.final_accuracy:.3f}, "
            f"{result.parallel_steps} steps, "
            f"{result.synchronizations} syncs, "
            f"{format_bytes(result.communication_bytes)}, "
            f"{elapsed:.2f}s wall-clock"
        )

    sequential, seq_time = results["sequential"]
    batched, bat_time = results["batched"]
    assert sequential.communication_bytes == batched.communication_bytes, (
        "the engines must charge identical communication"
    )
    assert sequential.synchronizations == batched.synchronizations
    print(
        f"\nidentical ledgers ({format_bytes(batched.communication_bytes)}, "
        f"{batched.synchronizations} syncs); "
        f"batched engine ran {seq_time / bat_time:.2f}x faster"
    )

    # -- masked batched execution: partial participation stays vectorized ----
    print("\nPartial participation (dropout_rate=0.25) on both engines")
    print("=" * 60)
    # The same workload flag that enables timeline dropout for sequential
    # runs now also works batched: each FDA step samples the participation
    # mask from the timeline, and the batched engine gathers just the active
    # rows into an (A, d) scratch block, runs one stacked pass, and scatters
    # them back.  Per-worker optimizer state (per-row moments, per-worker
    # step counts) keeps Adam/schedules correct for workers that sat out.
    masked = workload.with_timeline(dropout_rate=0.25)
    masked_results = {}
    for execution in ("sequential", "batched"):
        cluster, test_dataset = build_cluster(masked.with_execution(execution))
        start = time.perf_counter()
        result = run.execute(
            FDAStrategy(threshold=8.0, variant="linear"),
            cluster,
            test_dataset,
            workload_name=masked.name,
        )
        elapsed = time.perf_counter() - start
        masked_results[execution] = (result, elapsed)
        steps = [w.steps_performed for w in cluster.workers]
        print(
            f"\n{execution:>10}: accuracy {result.final_accuracy:.3f}, "
            f"worker steps {min(steps)}..{max(steps)} (unequal: dropout), "
            f"{result.synchronizations} syncs, "
            f"{format_bytes(result.communication_bytes)}, {elapsed:.2f}s"
        )
    seq_masked, seq_masked_time = masked_results["sequential"]
    bat_masked, bat_masked_time = masked_results["batched"]
    assert seq_masked.communication_bytes == bat_masked.communication_bytes
    assert seq_masked.synchronizations == bat_masked.synchronizations
    # (The speedup story lives in benchmarks/test_bench_hotpath.py on a
    # deep-narrow dispatch-bound model; this small conv workload is about
    # demonstrating agreement, not throughput.)
    print(
        f"\nmasked runs agree too; sequential/batched wall-clock ratio "
        f"{seq_masked_time / bat_masked_time:.2f}x under dropout"
    )


if __name__ == "__main__":
    main()
