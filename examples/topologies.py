"""Topology × network wall-clock comparison (the fabric in action).

The paper observes that FDA's communication savings are decisive on a shared
0.5 Gbps federated channel and negligible on the ARIS InfiniBand fabric.
This example makes the third axis visible: the *topology* the collectives are
routed over.  It trains the same small workload with Synchronous (BSP) and
LinearFDA on the star, ring, and hierarchical topologies under the FL and HPC
network models, and prints where each combination spends its virtual time.

Run with::

    PYTHONPATH=src python examples/topologies.py
"""

from __future__ import annotations

from repro.experiments.registry import lenet_mnist_workload
from repro.experiments.run import TrainingRun
from repro.experiments.sweep import sweep_fabric
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy
from repro.utils.formatting import format_bytes, format_duration

TOPOLOGIES = ("star", "ring", "hierarchical")
NETWORKS = ("fl", "hpc")
THETA = 8.0
MAX_STEPS = 60


def main() -> None:
    workload = lenet_mnist_workload(num_workers=4)
    run = TrainingRun(accuracy_target=0.99, max_steps=MAX_STEPS, eval_every_steps=20)

    strategies = {
        "Synchronous": lambda: SynchronousStrategy(),
        "LinearFDA": lambda: FDAStrategy(threshold=THETA, variant="linear"),
    }

    print(f"workload: {workload.name}, K={workload.num_workers}, {MAX_STEPS} steps")
    print("every cell: total bytes | compute s + communication s = wall-clock")
    for name, factory in strategies.items():
        points = sweep_fabric(
            workload, run, factory, topologies=TOPOLOGIES, networks=NETWORKS
        )
        print(f"\n=== {name} ===")
        header = f"{'topology':<14}" + "".join(f"{network:>34}" for network in NETWORKS)
        print(header)
        print("-" * len(header))
        by_topology = {}
        for point in points:
            by_topology.setdefault(point.topology, {})[point.network] = point.result
        for topology in TOPOLOGIES:
            cells = []
            for network in NETWORKS:
                result = by_topology[topology][network]
                cells.append(
                    f"{format_bytes(result.communication_bytes):>10} | "
                    f"{result.compute_seconds:.0f}s + {result.comm_seconds:5.1f}s "
                    f"= {format_duration(result.virtual_seconds):>8}"
                )
            print(f"{topology:<14}" + "".join(f"{cell:>34}" for cell in cells))

    print(
        "\nReading the table: on the HPC network every fabric is compute-bound\n"
        "(communication rounds to ~0 s), so the topology choice is free.  On the\n"
        "FL channel this miniature model is *latency*-bound, and the fabrics\n"
        "separate by sequential hops per collective: star (2) < hierarchical (4)\n"
        "< ring (2(K-1)) - the ring pays those hops for every collective,\n"
        "including FDA's tiny per-step state exchange.  At paper-sized model\n"
        "dimensions the bandwidth term takes over and FDA's byte savings become\n"
        "wall-clock savings on star/hierarchical fabrics; that regime is covered\n"
        "by benchmarks/test_bench_topology.py (d = 1e6)."
    )


if __name__ == "__main__":
    main()
