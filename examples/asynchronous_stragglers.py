"""Asynchronous FDA with stragglers (the paper's Section-3.3 extension).

Synchronous protocols advance at the pace of the slowest worker.  The paper
notes FDA can run asynchronously: a coordinator collects the tiny local states
as each worker finishes a step and orders a synchronization when the variance
estimate (over the latest state from every worker) exceeds Θ.  The win is not
bandwidth — states are already tiny — but *straggler tolerance*: fast workers
keep learning while a slow worker catches up.

This example simulates a cluster where a quarter of the workers are 4× slower
and compares, for the same virtual wall-clock budget:

* synchronous FDA (every step waits for the slowest worker), and
* asynchronous FDA (workers proceed at their own pace).

Run with::

    python examples/asynchronous_stragglers.py
"""

from __future__ import annotations

import numpy as np

from repro.core.async_fda import AsynchronousFDATrainer, StragglerProfile
from repro.core.fda import FDATrainer
from repro.core.monitor import LinearMonitor
from repro.experiments.registry import lenet_mnist_workload
from repro.experiments.setup import build_cluster
from repro.utils.formatting import format_bytes

THETA = 8.0
VIRTUAL_SECONDS = 120.0
PROFILE = StragglerProfile(
    base_step_seconds=1.0, straggler_fraction=0.25, straggler_factor=4.0, jitter=0.05
)


def run_synchronous(workload) -> dict:
    """Synchronous FDA: each global step takes as long as the slowest worker."""
    cluster, test_dataset = build_cluster(workload)
    monitor = LinearMonitor(dimension=cluster.model_dimension, seed=0)
    trainer = FDATrainer(cluster, monitor, THETA)
    durations = PROFILE.step_durations(cluster.num_workers, seed=0)
    step_duration = float(durations.max())  # lockstep: wait for the straggler
    steps = int(VIRTUAL_SECONDS // step_duration)
    trainer.run_steps(steps)
    _, accuracy = cluster.evaluate_global(test_dataset)
    return {
        "mode": "synchronous FDA",
        "steps_per_worker": steps,
        "total_steps": steps * cluster.num_workers,
        "syncs": trainer.synchronization_count,
        "bytes": cluster.total_bytes,
        "accuracy": accuracy,
    }


def run_asynchronous(workload) -> dict:
    """Asynchronous FDA: fast workers do not wait for the straggler."""
    cluster, test_dataset = build_cluster(workload)
    monitor = LinearMonitor(dimension=cluster.model_dimension, seed=0)
    trainer = AsynchronousFDATrainer(cluster, monitor, THETA, profile=PROFILE, seed=0)
    trainer.run_for(VIRTUAL_SECONDS)
    _, accuracy = cluster.evaluate_global(test_dataset)
    steps = trainer.steps_by_worker()
    return {
        "mode": "asynchronous FDA",
        "steps_per_worker": f"{min(steps)}-{max(steps)}",
        "total_steps": trainer.total_steps,
        "syncs": trainer.synchronization_count,
        "bytes": cluster.total_bytes,
        "accuracy": accuracy,
    }


def main() -> None:
    print("Asynchronous FDA under stragglers")
    print("=" * 60)
    print(f"virtual time budget: {VIRTUAL_SECONDS:.0f} s, Theta = {THETA}, "
          f"straggler profile: 25% of workers 4x slower")

    workload = lenet_mnist_workload(num_workers=4)
    rows = [run_synchronous(workload), run_asynchronous(workload)]

    print(f"\n{'mode':<20}{'steps/worker':>14}{'total steps':>13}{'syncs':>7}"
          f"{'comm':>12}{'accuracy':>10}")
    print("-" * 76)
    for row in rows:
        print(
            f"{row['mode']:<20}{str(row['steps_per_worker']):>14}{row['total_steps']:>13}"
            f"{row['syncs']:>7}{format_bytes(row['bytes']):>12}{row['accuracy']:>10.3f}"
        )

    sync_steps, async_steps = rows[0]["total_steps"], rows[1]["total_steps"]
    print(
        f"\nWithin the same wall-clock budget the asynchronous protocol completed "
        f"{async_steps / max(sync_steps, 1):.1f}x more learning steps, because fast workers "
        "never wait for the straggler — the benefit the paper anticipates for the "
        "asynchronous mode of operation."
    )


if __name__ == "__main__":
    main()
