"""Non-IID robustness: FDA under the paper's three data-heterogeneity settings.

Federated deployments rarely see IID data.  The paper (Figures 3 and 4) shows
that FDA's communication and computation costs barely change between IID and
two Non-IID partitioning schemes.  This example reproduces that comparison on
the miniature LeNet-5 workload: for each heterogeneity setting it trains
LinearFDA, SketchFDA and FedAdam to the same accuracy target and prints the
cost table, plus the per-worker label-skew statistics of each partition.

Run with::

    python examples/noniid_robustness.py
"""

from __future__ import annotations

from repro import TrainingRun, build_cluster
from repro.data.partition import partition_dataset, partition_statistics
from repro.experiments.registry import default_strategies, lenet_mnist_workload
from repro.experiments.reporting import format_results_table
from repro.utils.formatting import format_bytes


SETTINGS = {
    "IID": ("iid", {}),
    "Non-IID: Label 0": ("noniid-label", {"label": 0, "num_holders": 1}),
    "Non-IID: 60%": ("noniid-fraction", {"fraction": 0.6}),
}


def describe_partition(workload) -> str:
    """Summarize how skewed the worker shards are for a workload."""
    parts = partition_dataset(
        workload.train_dataset,
        workload.num_workers,
        scheme=workload.partition_scheme,
        seed=workload.seed,
        **workload.partition_kwargs,
    )
    stats = partition_statistics(parts)
    return (
        f"workers={stats['num_workers']} shard sizes={stats['sizes']} "
        f"label-skew={stats['heterogeneity']:.3f}"
    )


def main() -> None:
    print("FDA robustness to data heterogeneity")
    print("=" * 60)
    run = TrainingRun(accuracy_target=0.9, max_steps=400, eval_every_steps=20)

    per_setting = {}
    for title, (scheme, kwargs) in SETTINGS.items():
        workload = lenet_mnist_workload(
            num_workers=5, partition_scheme=scheme, partition_kwargs=kwargs
        )
        print(f"\n### {title}")
        print("partition:", describe_partition(workload))

        results = []
        for name, factory in default_strategies(theta=8.0, fedopt="fedadam").items():
            if name == "Synchronous":
                continue  # keep the example fast; the quickstart covers Synchronous
            cluster, test_dataset = build_cluster(workload)
            result = run.execute(factory(), cluster, test_dataset, workload_name=title)
            results.append(result)
        per_setting[title] = results
        print(format_results_table(results, reached_only=False))

    print("\n### Cross-setting comparison (LinearFDA communication)")
    for title, results in per_setting.items():
        linear = next(r for r in results if r.strategy == "LinearFDA")
        print(
            f"  {title:<18} comm={format_bytes(linear.communication_bytes):>12}  "
            f"steps={linear.parallel_steps:>5}  reached={linear.reached_target}"
        )
    print("\nThe FDA rows should stay within the same order of magnitude across "
          "settings, mirroring the paper's Figure 3.")


if __name__ == "__main__":
    main()
