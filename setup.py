"""Setup shim.

Package metadata lives in ``setup()`` below; this file exists so that
``python setup.py develop`` works in fully offline environments where pip's
PEP 660 editable-install path is unavailable (it requires the ``wheel``
package, which may not be installed).
"""

from setuptools import setup

#: README section: shown as the package's long description on index pages.
LONG_DESCRIPTION = """\
# repro — Federated Dynamic Averaging, reproduced and grown

A pure-NumPy reproduction of *Communication-Efficient Distributed Deep
Learning via Federated Dynamic Averaging* (EDBT 2025), grown into a
simulation substrate: a zero-copy parameter plane with `(K, d)` cluster
matrices, sequential and batched execution engines, a topology-aware
communication fabric with a unified virtual-time engine, and a
collective-level compression subsystem (top-k / random-k / quantization /
sign+norm / layer-wise top-k with error feedback) that every strategy —
FDA, BSP, Local-SGD, FedOpt, FedProx, SCAFFOLD — picks up uniformly.

- **Architecture:** see `ARCHITECTURE.md` (the five planes: parameter plane
  → engines → fabric/timeline → strategies → experiments).
- **Paper map:** see `docs/paper_map.md` for every paper figure/table mapped
  to its benchmark module (`benchmarks/test_bench_fig*.py`), CLI invocation
  (`python -m repro.cli figureN` / `compare` / `fabric` / `compression`),
  and emitted `BENCH_*.json` key.
- **Verify:** `PYTHONPATH=src python -m pytest -x -q`.
"""

setup(
    long_description=LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
)
