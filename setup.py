"""Setup shim.

Package metadata lives in ``pyproject.toml``; this file exists so that
``python setup.py develop`` works in fully offline environments where pip's
PEP 660 editable-install path is unavailable (it requires the ``wheel``
package, which may not be installed).
"""

from setuptools import setup

setup()
