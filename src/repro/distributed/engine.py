"""Execution engines: how a cluster physically advances its workers.

A :class:`~repro.distributed.cluster.SimulatedCluster` separates the training
*protocol* (when to communicate, owned by the trainers/strategies) from the
*mechanics* of a local step.  The engine owns the mechanics:

* :class:`SequentialEngine` (``execution="sequential"``, the default) runs
  ``K`` independent per-worker steps — the seed semantics, kept bit-identical
  for the golden-trajectory suite.
* :class:`BatchedEngine` (``execution="batched"``) advances **all workers in
  one vectorized pass**: a :class:`~repro.data.loaders.StackedSampler` draws
  the ``K`` mini-batches (from the workers' own RNG streams) as one
  ``(K, B, ...)`` array, a :class:`~repro.nn.batched.BatchedModel` runs one
  stacked forward/backward writing every worker's gradients into a shared
  ``(K, d)`` gradient matrix, and a single ``Optimizer.step_inplace`` on the
  cluster's ``(K, d)`` parameter matrix applies all ``K`` updates at once.

Both engines plug in below ``cluster.step_all``, so every lockstep protocol —
``FDATrainer``, the Synchronous/BSP baseline, Local-SGD/FedAvg, compression —
picks the engine up transparently.  The event-driven asynchronous trainer
steps single workers through :meth:`ClusterEngine.step_worker`, which is the
per-worker path on either engine (its completions are not lockstep, so there
is nothing to batch); an engine refuses to mix the two drive modes.

The batched engine requires lockstep in the strict sense: full participation
(no timeline dropout), ``inplace`` workers, and identically configured
optimizers/losses across workers, all validated at construction or first use
with actionable errors.  Per-worker arithmetic is element-for-element the
sequential arithmetic, so trajectories agree to tight tolerance and all
communication accounting — which lives above the engine — is identical.

One asymmetry is inherent and deliberate: the *error* path of a non-finite
loss (``TrainingError``).  The sequential engine fails mid-loop — workers
before the diverging one have already stepped — while the batched engine
fails atomically before any parameter/optimizer update (though every
worker's sampler stream has advanced).  ``TrainingError`` signals a diverged
run to be aborted or restarted, not resumed, so the engines only guarantee
matching state on completed steps.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro.data.loaders import StackedSampler
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.batched import BatchedModel, BatchedPlane, unsupported_layers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster builds engines)
    from repro.distributed.cluster import SimulatedCluster

#: Engine names accepted by ``SimulatedCluster(execution=...)`` and
#: ``WorkloadConfig.execution``.
EXECUTION_MODES = ("sequential", "batched")


class ClusterEngine:
    """Base class: one engine instance drives one cluster's local compute."""

    #: Engine name as selected via ``execution=...``.
    name = "engine"
    #: Whether :meth:`step_all` advances all workers in one vectorized pass.
    is_batched = False

    def __init__(self, cluster: "SimulatedCluster") -> None:
        self.cluster = cluster

    @property
    def gradient_matrix(self) -> Optional[np.ndarray]:
        """The live ``(K, d)`` gradient matrix, if this engine maintains one."""
        return None

    def step_all(self, active: Optional[np.ndarray] = None) -> float:
        """One local mini-batch step on every (participating) worker.

        Returns the mean loss over the workers that stepped.  ``active`` is
        the timeline's optional participation mask.
        """
        raise NotImplementedError

    def step_worker(self, worker_id: int) -> float:
        """One local step on a single worker (the asynchronous event path)."""
        return self.cluster.workers[worker_id].local_step()

    def epoch_all(self) -> float:
        """One full local epoch on every worker; returns the mean loss.

        Epochs stay per-worker on every engine: shards may differ in size, so
        the per-round batch sequences are ragged across workers and cannot be
        stacked into one ``(K, B, ...)`` tensor without changing what each
        worker trains on.
        """
        workers = self.cluster.workers
        return float(np.mean([worker.local_epoch() for worker in workers]))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(K={self.cluster.num_workers})"


class SequentialEngine(ClusterEngine):
    """Per-worker Python-loop execution — the seed-faithful default."""

    name = "sequential"
    is_batched = False

    def step_all(self, active: Optional[np.ndarray] = None) -> float:
        workers = self.cluster.workers
        if active is None:
            losses = [worker.local_step() for worker in workers]
        else:
            losses = [
                worker.local_step()
                for worker, is_active in zip(workers, active)
                if is_active
            ]
        return float(np.mean(losses)) if losses else 0.0


class BatchedEngine(ClusterEngine):
    """One einsum-driven forward/backward/update for the whole cluster.

    Construction stacks the cluster's state for vectorized compute:

    * every worker model's *gradient* storage is rebound onto the rows of a
      freshly allocated ``(K, d)`` matrix (parameters and buffers are already
      stacked by the cluster), so the batched backward pass and the per-worker
      layer views observe the same memory;
    * a :class:`BatchedPlane` carves per-layer ``(K, *shape)`` views out of
      the three matrices and a :class:`BatchedModel` chains the batched layer
      kernels over them;
    * worker 0's optimizer becomes the cluster optimizer, updating the whole
      ``(K, d)`` matrix per step (its elementwise rules make that exactly
      ``K`` per-worker updates; construction verifies all workers' optimizers
      are identically configured).
    """

    name = "batched"
    is_batched = True

    def __init__(self, cluster: "SimulatedCluster") -> None:
        super().__init__(cluster)
        workers = cluster.workers
        reference = workers[0]

        not_inplace = [w.worker_id for w in workers if not w.inplace]
        if not_inplace:
            raise ConfigurationError(
                f"execution='batched' requires inplace workers; workers {not_inplace} "
                "use the legacy copy path (inplace=False)"
            )
        pre_stepped = [w.worker_id for w in workers if w.optimizer.step_count]
        if pre_stepped:
            # A pre-stepped optimizer holds (d,)-shaped moment/velocity
            # buffers that the first (K, d) update would silently re-zero
            # while its step count (Adam bias correction, LR schedules) kept
            # counting — a quietly wrong trajectory.  Demand fresh optimizers.
            raise ConfigurationError(
                "execution='batched' requires fresh optimizers (their state "
                "becomes cluster-wide (K, d) matrices); workers "
                f"{pre_stepped} have optimizers that already stepped — call "
                "optimizer.reset() or construct new optimizers"
            )
        missing = unsupported_layers(reference.model)
        if missing:
            raise ConfigurationError(
                "execution='batched' does not support these layers: "
                f"{', '.join(missing)}; use execution='sequential' for this model"
            )
        for worker in workers[1:]:
            self._require_compatible(reference, worker)
        if cluster.timeline.dropout_rate > 0.0:
            raise ConfigurationError(
                "execution='batched' requires full lockstep participation; "
                "the timeline's dropout_rate is "
                f"{cluster.timeline.dropout_rate} — use execution='sequential' "
                "for partial-participation studies"
            )

        # Stack all workers' gradients next to the cluster's parameter matrix.
        self._grad_matrix = np.empty_like(cluster.parameter_matrix)
        for row, worker in zip(self._grad_matrix, workers):
            worker.model.rebind_gradient_storage(row)
        self._plane = BatchedPlane(
            reference.model,
            cluster.parameter_matrix,
            self._grad_matrix,
            cluster.buffer_matrix,
        )
        self._model = BatchedModel(reference.model, self._plane)
        self._sampler = StackedSampler([worker._sampler for worker in workers])
        self._optimizer = reference.optimizer
        self._loss = reference.loss
        # Drive-mode exclusion: lockstep step_all shares one optimizer across
        # all workers, per-worker stepping uses each worker's own — the two
        # kinds of optimizer state cannot coexist.  step_all detects *any*
        # prior per-worker driving from the workers' optimizer step counts
        # (which also catches callers that step workers directly, e.g. the
        # drift-control strategies' local epochs, without going through this
        # engine); the latches below additionally lock the engine's own
        # entry points in both directions with a precise error.  The one
        # undetectable order — direct worker stepping *after* lockstep steps
        # — does not arise in-library: every strategy attaches to a fresh
        # cluster and drives it in a single mode.
        self._per_worker_stepped = False
        self._lockstep_stepped = False
        self._lockstep_steps = 0

    @staticmethod
    def _model_signature(model) -> List[tuple]:
        """A structural fingerprint of a model: per-layer type, geometry, config.

        The batched kernels are built from worker 0's layers and applied to
        every row of the stacked matrices, so all workers' models must be the
        *same architecture*, not merely the same parameter count.  The
        signature captures everything a kernel reads from its layer.
        """
        signature = []
        config_attrs = (
            "units", "filters", "kernel_size", "stride", "padding_mode",
            "pool_size", "use_bias", "momentum", "epsilon",
        )
        for layer in model.layers:
            entry = [type(layer).__name__, tuple(layer.output_shape)]
            for attr in config_attrs:
                if hasattr(layer, attr):
                    entry.append((attr, getattr(layer, attr)))
            activation = getattr(layer, "activation", None)
            if activation is not None:
                entry.append(("activation", activation.name))
            signature.append(tuple(entry))
        return signature

    @staticmethod
    def _require_compatible(reference, worker) -> None:
        """All workers must be interchangeable up to their data shard and RNG."""
        problems: List[str] = []
        if BatchedEngine._model_signature(worker.model) != BatchedEngine._model_signature(
            reference.model
        ):
            problems.append("model architecture differs (layer types/geometry/config)")
        if type(worker.optimizer) is not type(reference.optimizer):
            problems.append(
                f"optimizer type {type(worker.optimizer).__name__} != "
                f"{type(reference.optimizer).__name__}"
            )
        elif worker.optimizer.state_dict() != reference.optimizer.state_dict() or (
            type(worker.optimizer.schedule) is not type(reference.optimizer.schedule)
            or vars(worker.optimizer.schedule) != vars(reference.optimizer.schedule)
        ):
            problems.append("optimizer hyper-parameters/state differ")
        if type(worker.loss) is not type(reference.loss) or vars(worker.loss) != vars(
            reference.loss
        ):
            problems.append("loss configuration differs")
        if worker.batch_size != reference.batch_size:
            problems.append(
                f"batch_size {worker.batch_size} != {reference.batch_size}"
            )
        if problems:
            raise ConfigurationError(
                f"execution='batched' needs identically configured workers; worker "
                f"{worker.worker_id}: {'; '.join(problems)}"
            )

    @property
    def batched_model(self) -> BatchedModel:
        """The stacked kernel chain (exposed for tests and diagnostics)."""
        return self._model

    @property
    def gradient_matrix(self) -> np.ndarray:
        """The live ``(K, d)`` gradient matrix; row ``k`` IS worker ``k``'s grads."""
        return self._grad_matrix

    def step_all(self, active: Optional[np.ndarray] = None) -> float:
        if active is not None and not bool(np.all(active)):
            raise ConfigurationError(
                "execution='batched' cannot step a partial worker set; "
                "use execution='sequential' with dropout timelines"
            )
        if self._per_worker_stepped or self._per_worker_drive_detected():
            raise ConfigurationError(
                "this batched engine's workers have already been driven "
                "individually (event-driven steps or local epochs); lockstep "
                "step_all would desynchronize the shared optimizer state"
            )
        self._lockstep_stepped = True
        x, y = self._sampler.sample()
        losses = self._model.train_batch(x, y, self._loss)
        bad = np.flatnonzero(~np.isfinite(losses))
        if bad.size:
            raise TrainingError(
                f"worker {int(bad[0])}: loss became non-finite ({losses[bad[0]]}); "
                "reduce the learning rate or variance threshold"
            )
        self._optimizer.step_inplace(self.cluster.parameter_matrix, self._grad_matrix)
        self._lockstep_steps += 1
        for worker, value in zip(self.cluster.workers, losses):
            worker.steps_performed += 1
            worker.last_loss = float(value)
        return float(losses.mean())

    def _per_worker_drive_detected(self) -> bool:
        """Whether any worker optimizer has stepped outside lockstep mode.

        All optimizers start fresh (enforced at construction).  In lockstep
        mode only the shared optimizer (worker 0's) advances, by exactly one
        count per step_all; workers 1..K-1 never step.  Any other count means
        something drove workers directly (e.g. the drift-control strategies'
        local epochs, which bypass the engine's entry points).
        """
        workers = self.cluster.workers
        if workers[0].optimizer.step_count != self._lockstep_steps:
            return True
        return any(worker.optimizer.step_count for worker in workers[1:])

    def _require_no_lockstep_history(self, mode: str) -> None:
        if self._lockstep_stepped:
            raise ConfigurationError(
                f"this batched engine has already run lockstep step_all; {mode} "
                "would desynchronize the shared optimizer state (worker "
                "optimizers would restart from scratch while the cluster "
                "optimizer holds the accumulated (K, d) state)"
            )

    def step_worker(self, worker_id: int) -> float:
        # Event-driven completions are per-worker by nature; they run the
        # worker's own (sequential) step and lock this engine out of lockstep
        # mode so the shared (K, d) optimizer state can never be half-updated.
        self._require_no_lockstep_history("per-worker stepping")
        self._per_worker_stepped = True
        return self.cluster.workers[worker_id].local_step()

    def epoch_all(self) -> float:
        # Ragged shards force per-worker epochs (see the base class); the
        # workers' own optimizers carry the state, so lockstep batched steps
        # are locked out afterwards.
        self._require_no_lockstep_history("per-worker epochs")
        self._per_worker_stepped = True
        return super().epoch_all()


def build_engine(execution: str, cluster: "SimulatedCluster") -> ClusterEngine:
    """Construct the engine selected by ``execution`` for ``cluster``."""
    if execution == "sequential":
        return SequentialEngine(cluster)
    if execution == "batched":
        return BatchedEngine(cluster)
    raise ConfigurationError(
        f"unknown execution mode {execution!r}; expected one of {EXECUTION_MODES}"
    )
