"""Execution engines: how a cluster physically advances its workers.

A :class:`~repro.distributed.cluster.SimulatedCluster` separates the training
*protocol* (when to communicate, owned by the trainers/strategies) from the
*mechanics* of a local step.  The engine owns the mechanics:

* :class:`SequentialEngine` (``execution="sequential"``, the default) runs
  ``K`` independent per-worker steps — the seed semantics, kept bit-identical
  for the golden-trajectory suite.
* :class:`BatchedEngine` (``execution="batched"``) advances workers **in one
  vectorized pass**: a :class:`~repro.data.loaders.StackedSampler` draws the
  participating workers' mini-batches (from the workers' own RNG streams) as
  one ``(A, B, ...)`` array, a :class:`~repro.nn.batched.BatchedModel` runs
  one stacked forward/backward writing every covered worker's gradients into
  a shared gradient matrix, and a single
  :class:`~repro.optim.base.StackedOptimizer` update applies all covered
  per-worker optimizer steps at once.

Both engines plug in below ``cluster.step_all``, so every protocol — FDA,
the Synchronous/BSP baseline, Local-SGD/FedAvg, FedOpt epochs, compression,
the event-driven asynchronous trainer — picks the engine up transparently,
and the whole scenario grid runs on either engine:

* **Partial participation** (timeline dropout): ``step_all(active=mask)``
  executes only the active rows.  The batched engine gathers those workers'
  parameter/buffer rows into an ``(A, d)`` scratch block, runs one stacked
  pass over it, applies a masked ``(A, d)`` optimizer update (per-row
  optimizer state and step counts, so Adam moments and schedules stay
  per-worker), and scatters the rows back — inactive rows are left
  bit-untouched and inactive workers' RNG streams consume nothing, exactly
  like a sequential loop over the active workers.
* **RNG-stateful layers** (``Dropout``): the batched kernels replay each
  worker's private mask stream (see :class:`~repro.nn.batched.BatchedDropout`).
* **Heterogeneous workers**: optimizer hyper-parameters (learning rate,
  momentum, weight decay, betas) may differ per worker — they become per-row
  broadcast columns inside the stacked update.  Only *structural* differences
  (model architecture, optimizer type, Nesterov vs classical momentum, loss
  configuration, batch size) are rejected.
* **Per-worker driving**: :meth:`ClusterEngine.step_worker` and
  :meth:`ClusterEngine.epoch_worker` run single-row slices of the same
  batched kernels, so event-driven (asynchronous) completions and
  FedOpt-style local epochs use the fast path too.  Because the stacked
  optimizer state *is* the workers' own optimizer state (row-bound), lockstep
  and per-worker driving compose freely — there is no drive-mode exclusion.

Per-worker arithmetic is element-for-element the sequential arithmetic, so
trajectories agree to tight tolerance (bit-exactly for SGD on mainstream BLAS
builds) and all communication accounting — which lives above the engine — is
identical.  Payload compression (:mod:`repro.compression`) also lives above
the engine, at the cluster's collective layer: both engines feed the same
``(K, d)`` parameter matrix into the same row-wise compression kernels, so
compressed runs inherit the cross-engine parity guarantee unchanged.

Divergence (a non-finite loss) raises ``TrainingError`` consistently on both
engines: the error names *every* diverged worker, the batched engine fails
atomically — parameters, optimizer moments, and batch-norm buffers are rolled
back or never touched — and the sequential engine completes the round for the
remaining workers before raising, so every non-diverged worker has stepped
exactly once.  ``TrainingError`` still signals a run to be aborted or
restarted, not resumed (every participating worker's sampler stream has
advanced), so the engines only guarantee matching state on completed steps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.data.loaders import StackedSampler
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.batched import BatchedModel, BatchedPlane, unsupported_layers
from repro.optim.base import StackedOptimizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster builds engines)
    from repro.distributed.cluster import SimulatedCluster

#: Engine names accepted by ``SimulatedCluster(execution=...)`` and
#: ``WorkloadConfig.execution``.
EXECUTION_MODES = ("sequential", "batched")


def _divergence_error(worker_ids, loss_values) -> TrainingError:
    """One ``TrainingError`` naming every diverged worker.

    Keeps the per-worker ``"worker N: loss became non-finite (...)"`` wording
    so callers (and tests) matching on a worker id keep working regardless of
    how many workers diverged in the same round.
    """
    parts = [
        f"worker {int(worker_id)}: loss became non-finite ({value})"
        for worker_id, value in zip(worker_ids, loss_values)
    ]
    return TrainingError(
        "; ".join(parts) + "; reduce the learning rate or variance threshold"
    )


class ClusterEngine:
    """Base class: one engine instance drives one cluster's local compute."""

    #: Engine name as selected via ``execution=...``.
    name = "engine"
    #: Whether :meth:`step_all` advances all workers in one vectorized pass.
    is_batched = False

    def __init__(self, cluster: "SimulatedCluster") -> None:
        self.cluster = cluster

    @property
    def gradient_matrix(self) -> Optional[np.ndarray]:
        """The live ``(K, d)`` gradient matrix, if this engine maintains one."""
        return None

    def step_all(self, active: Optional[np.ndarray] = None) -> float:
        """One local mini-batch step on every (participating) worker.

        Returns the mean loss over the workers that stepped.  ``active`` is
        the timeline's optional participation mask.
        """
        raise NotImplementedError

    def step_worker(self, worker_id: int) -> float:
        """One local step on a single worker (the asynchronous event path)."""
        return self.cluster.workers[worker_id].local_step()

    def epoch_worker(self, worker_id: int) -> float:
        """One full local epoch on a single worker; returns its mean batch loss."""
        return self.cluster.workers[worker_id].local_epoch()

    def epoch_all(self) -> float:
        """One full local epoch on every worker; returns the mean loss.

        Epochs stay per-worker on every engine: shards may differ in size, so
        the per-round batch sequences are ragged across workers and cannot be
        stacked into one ``(K, B, ...)`` tensor without changing what each
        worker trains on.  Each worker's epoch goes through
        :meth:`epoch_worker`, which the batched engine implements with
        single-row slices of its stacked kernels.
        """
        workers = self.cluster.workers
        return float(np.mean([self.epoch_worker(worker.worker_id) for worker in workers]))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(K={self.cluster.num_workers})"


class SequentialEngine(ClusterEngine):
    """Per-worker Python-loop execution — the seed-faithful default."""

    name = "sequential"
    is_batched = False

    def step_all(self, active: Optional[np.ndarray] = None) -> float:
        workers = self.cluster.workers
        if active is not None:
            workers = [
                worker for worker, is_active in zip(workers, active) if is_active
            ]
        losses: List[float] = []
        failures: List[str] = []
        for worker in workers:
            # Complete the round for every worker before reporting failures,
            # so the error names *all* diverged workers (not just the first)
            # and every non-diverged worker has stepped exactly once.
            try:
                losses.append(worker.local_step())
            except TrainingError as error:
                failures.append(str(error))
        if failures:
            raise TrainingError("; ".join(failures))
        return float(np.mean(losses)) if losses else 0.0


class BatchedEngine(ClusterEngine):
    """One einsum-driven forward/backward/update for the whole cluster.

    Construction stacks the cluster's state for vectorized compute:

    * every worker model's *gradient* storage is rebound onto the rows of a
      freshly allocated ``(K, d)`` matrix (parameters and buffers are already
      stacked by the cluster), so the batched backward pass and the per-worker
      layer views observe the same memory;
    * a :class:`BatchedPlane` carves per-layer ``(K, *shape)`` views out of
      the three matrices and a :class:`BatchedModel` chains the batched layer
      kernels over them;
    * the workers' optimizers are wrapped in one
      :class:`~repro.optim.base.StackedOptimizer`: hyper-parameters become
      per-row columns, moment/velocity state becomes ``(K, d)`` matrices
      whose rows are bound back into each worker's own optimizer, and step
      counts stay per-worker — so masked updates, per-worker driving, and
      direct ``worker.local_step`` calls all read and write the same state.

    Partial participation runs through a masked scratch path: the active
    workers' parameter/buffer rows are gathered into ``(A, d)`` scratch
    blocks, a per-``A`` cached :class:`BatchedModel` (carving views of the
    scratch) runs the stacked pass, the masked optimizer update applies, and
    the rows are scattered back.  Inactive rows are never read or written.
    """

    name = "batched"
    is_batched = True

    def __init__(self, cluster: "SimulatedCluster") -> None:
        super().__init__(cluster)
        workers = cluster.workers
        reference = workers[0]

        not_inplace = [w.worker_id for w in workers if not w.inplace]
        if not_inplace:
            raise ConfigurationError(
                f"execution='batched' requires inplace workers; workers {not_inplace} "
                "use the legacy copy path (inplace=False)"
            )
        pre_stepped = [w.worker_id for w in workers if w.optimizer.step_count]
        if pre_stepped:
            # A pre-stepped optimizer holds (d,)-shaped moment/velocity
            # buffers that row-binding would silently discard while its step
            # count (Adam bias correction, LR schedules) kept counting — a
            # quietly wrong trajectory.  Demand fresh optimizers.
            raise ConfigurationError(
                "execution='batched' requires fresh optimizers (their state "
                "becomes rows of cluster-wide (K, d) matrices); workers "
                f"{pre_stepped} have optimizers that already stepped — call "
                "optimizer.reset() or construct new optimizers"
            )
        missing = unsupported_layers(reference.model)
        if missing:
            raise ConfigurationError(
                "execution='batched' does not support these layers: "
                f"{', '.join(missing)}; use execution='sequential' for this model"
            )
        for worker in workers[1:]:
            self._require_compatible(reference, worker)

        # Stack all workers' gradients next to the cluster's parameter matrix.
        self._grad_matrix = np.empty_like(cluster.parameter_matrix)
        for row, worker in zip(self._grad_matrix, workers):
            worker.model.rebind_gradient_storage(row)
        self._worker_models = [worker.model for worker in workers]
        self._plane = BatchedPlane(
            reference.model,
            cluster.parameter_matrix,
            self._grad_matrix,
            cluster.buffer_matrix,
        )
        self._model = BatchedModel(
            reference.model, self._plane, worker_models=self._worker_models
        )
        self._sampler = StackedSampler([worker._sampler for worker in workers])
        # May raise ConfigurationError for structurally incompatible
        # optimizers (mixed types, mixed Nesterov) or types without a stacked
        # update rule; binds per-row state into the workers' optimizers.
        self._optimizer = StackedOptimizer(
            [worker.optimizer for worker in workers],
            cluster.model_dimension,
            dtype=cluster.dtype,
        )
        self._loss = reference.loss
        # Masked-path scratch (lazy: full-participation runs never pay for it).
        self._param_scratch: Optional[np.ndarray] = None
        self._grad_scratch: Optional[np.ndarray] = None
        self._buffer_scratch: Optional[np.ndarray] = None
        self._masked_models: Dict[int, BatchedModel] = {}
        # Full-path divergence rollback: the stacked forward mutates the live
        # buffer matrix (batch-norm running stats) before losses exist, so a
        # pre-step snapshot is needed to keep failure atomic (lazy, and only
        # ever allocated for models that have buffers at all).
        self._buffer_rollback: Optional[np.ndarray] = None

    @staticmethod
    def _model_signature(model) -> List[tuple]:
        """A structural fingerprint of a model: per-layer type, geometry, config.

        The batched kernels are built from worker 0's layers and applied to
        every row of the stacked matrices, so all workers' models must be the
        *same architecture*, not merely the same parameter count.  The
        signature captures everything a kernel reads from its layer —
        per-worker-stateful attributes (a ``Dropout`` layer's rate and RNG)
        are deliberately absent: their kernels read each worker's own layer.
        """
        signature = []
        config_attrs = (
            "units", "filters", "kernel_size", "stride", "padding_mode",
            "pool_size", "use_bias", "momentum", "epsilon",
        )
        for layer in model.layers:
            entry = [type(layer).__name__, tuple(layer.output_shape)]
            for attr in config_attrs:
                if hasattr(layer, attr):
                    entry.append((attr, getattr(layer, attr)))
            activation = getattr(layer, "activation", None)
            if activation is not None:
                entry.append(("activation", activation.name))
            signature.append(tuple(entry))
        return signature

    @staticmethod
    def _require_compatible(reference, worker) -> None:
        """Workers must be *structurally* interchangeable.

        Scalar optimizer hyper-parameters (learning rate, momentum, weight
        decay, betas) may differ per worker — the stacked optimizer carries
        them as per-row columns.  What must match is everything that changes
        the shape of the computation itself: the model architecture, the
        optimizer type, the loss configuration, and the batch size.
        """
        problems: List[str] = []
        if BatchedEngine._model_signature(worker.model) != BatchedEngine._model_signature(
            reference.model
        ):
            problems.append("model architecture differs (layer types/geometry/config)")
        if type(worker.optimizer) is not type(reference.optimizer):
            problems.append(
                f"optimizer type {type(worker.optimizer).__name__} != "
                f"{type(reference.optimizer).__name__}"
            )
        if type(worker.loss) is not type(reference.loss) or vars(worker.loss) != vars(
            reference.loss
        ):
            problems.append("loss configuration differs")
        if worker.batch_size != reference.batch_size:
            problems.append(
                f"batch_size {worker.batch_size} != {reference.batch_size}"
            )
        if problems:
            raise ConfigurationError(
                f"execution='batched' needs structurally compatible workers; worker "
                f"{worker.worker_id}: {'; '.join(problems)}"
            )

    @property
    def batched_model(self) -> BatchedModel:
        """The stacked kernel chain (exposed for tests and diagnostics)."""
        return self._model

    @property
    def stacked_optimizer(self) -> StackedOptimizer:
        """The cluster-wide stacked optimizer (per-row state and step counts)."""
        return self._optimizer

    @property
    def gradient_matrix(self) -> np.ndarray:
        """The live ``(K, d)`` gradient matrix; row ``k`` IS worker ``k``'s grads."""
        return self._grad_matrix

    # -- the masked scratch path -------------------------------------------------

    def _masked_model(self, count: int) -> BatchedModel:
        """The cached ``(count, d)`` scratch-backed model for masked passes."""
        model = self._masked_models.get(count)
        if model is None:
            if self._param_scratch is None:
                cluster = self.cluster
                self._param_scratch = np.empty_like(cluster.parameter_matrix)
                self._grad_scratch = np.empty_like(self._grad_matrix)
                self._buffer_scratch = np.empty_like(cluster.buffer_matrix)
            reference = self.cluster.workers[0].model
            plane = BatchedPlane(
                reference,
                self._param_scratch[:count],
                self._grad_scratch[:count],
                self._buffer_scratch[:count],
            )
            model = BatchedModel(reference, plane, worker_models=self._worker_models)
            self._masked_models[count] = model
        return model

    def _train_rows(self, rows: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """One stacked step on the workers in ``rows``; returns their losses.

        Gathers the active parameter/buffer rows into the scratch block, runs
        the stacked forward/backward and the masked optimizer update there,
        and scatters parameters, gradients, and buffers back.  Nothing is
        written back if a loss diverges (atomic failure).
        """
        count = int(rows.size)
        model = self._masked_model(count)
        cluster = self.cluster
        # mode="clip" skips numpy's slow bounds-checking take path; the rows
        # come from a K-length mask, so they are always in range.
        np.take(
            cluster.parameter_matrix, rows, axis=0,
            out=self._param_scratch[:count], mode="clip",
        )
        has_buffers = bool(cluster.buffer_matrix.shape[1])
        if has_buffers:
            np.take(
                cluster.buffer_matrix, rows, axis=0,
                out=self._buffer_scratch[:count], mode="clip",
            )
        losses = model.train_batch(x, y, self._loss, rows=rows)
        bad = np.flatnonzero(~np.isfinite(losses))
        if bad.size:
            # The stacked pass only touched the scratch block: live
            # parameters, buffers, and optimizer moments are untouched.
            raise _divergence_error(rows[bad], losses[bad])
        self._optimizer.step_rows(
            self._param_scratch[:count], self._grad_scratch[:count], rows
        )
        cluster.parameter_matrix[rows] = self._param_scratch[:count]
        self._grad_matrix[rows] = self._grad_scratch[:count]
        if has_buffers:
            cluster.buffer_matrix[rows] = self._buffer_scratch[:count]
        for k in rows:
            cluster.workers[int(k)].steps_performed += 1
        return losses

    # -- drive modes --------------------------------------------------------------

    def step_all(self, active: Optional[np.ndarray] = None) -> float:
        if active is not None and not bool(np.all(active)):
            rows = np.flatnonzero(np.asarray(active))
            if rows.size == 0:
                return 0.0
            x, y = self._sampler.sample(rows)
            losses = self._train_rows(rows, x, y)
            for k, value in zip(rows, losses):
                self.cluster.workers[int(k)].last_loss = float(value)
            return float(losses.mean())
        x, y = self._sampler.sample()
        buffer_matrix = self.cluster.buffer_matrix
        has_buffers = bool(buffer_matrix.shape[1])
        if has_buffers:
            # The stacked forward writes batch-norm running stats into the
            # live buffer matrix before losses exist; snapshot them so a
            # divergence can be rolled back (atomic failure, as on the
            # masked scratch path).
            if self._buffer_rollback is None:
                self._buffer_rollback = np.empty_like(buffer_matrix)
            self._buffer_rollback[...] = buffer_matrix
        losses = self._model.train_batch(x, y, self._loss)
        bad = np.flatnonzero(~np.isfinite(losses))
        if bad.size:
            if has_buffers:
                buffer_matrix[...] = self._buffer_rollback
            raise _divergence_error(bad, losses[bad])
        self._optimizer.step_rows(self.cluster.parameter_matrix, self._grad_matrix)
        for worker, value in zip(self.cluster.workers, losses):
            worker.steps_performed += 1
            worker.last_loss = float(value)
        return float(losses.mean())

    def step_worker(self, worker_id: int) -> float:
        # Event-driven completions are per-worker by nature; they run as a
        # single-row slice of the batched kernels, sharing optimizer state
        # and RNG streams with every other drive mode.
        rows = np.array([worker_id])
        x, y = self._sampler.sample(rows)
        losses = self._train_rows(rows, x, y)
        worker = self.cluster.workers[worker_id]
        worker.last_loss = float(losses[0])
        return worker.last_loss

    def epoch_worker(self, worker_id: int) -> float:
        # Ragged shards force per-worker epochs (see the base class); each
        # batch of the worker's own shuffled epoch stream runs as a
        # single-row slice of the batched kernels.
        worker = self.cluster.workers[worker_id]
        rows = np.array([worker_id])
        losses: List[float] = []
        for batch_x, batch_y in worker._epoch_iterator.epoch():
            batch_losses = self._train_rows(rows, batch_x[None], batch_y[None])
            losses.append(float(batch_losses[0]))
        if losses:
            worker.last_loss = float(np.mean(losses))
        return worker.last_loss if worker.last_loss is not None else 0.0


def build_engine(execution: str, cluster: "SimulatedCluster") -> ClusterEngine:
    """Construct the engine selected by ``execution`` for ``cluster``."""
    if execution == "sequential":
        return SequentialEngine(cluster)
    if execution == "batched":
        return BatchedEngine(cluster)
    raise ConfigurationError(
        f"unknown execution mode {execution!r}; expected one of {EXECUTION_MODES}"
    )
