"""Simulated distributed execution substrate.

The paper runs on a 44-node GPU cluster; its evaluation, however, is
infrastructure-agnostic and reports *communication cost in bytes* and
*computation cost in mini-batch steps*.  This subpackage reproduces exactly
those quantities with an in-process simulation: :class:`Worker` objects hold
local models, data shards and optimizers, :class:`SimulatedCluster` implements
AllReduce as an exact average plus byte accounting, and :class:`NetworkModel`
translates byte counts into wall-clock time for the FL / balanced / HPC
settings discussed in the paper.
"""

from repro.distributed.comm import (
    CommunicationCostModel,
    CommunicationTracker,
    NAIVE_COST_MODEL,
    RING_COST_MODEL,
)
from repro.distributed.network import (
    NetworkModel,
    FL_NETWORK,
    HPC_NETWORK,
    BALANCED_NETWORK,
    get_network,
)
from repro.distributed.topology import (
    Fabric,
    GossipTopology,
    HierarchicalTopology,
    NAMED_TOPOLOGIES,
    RingTopology,
    StarTopology,
    Topology,
    get_topology,
)
from repro.distributed.engine import (
    BatchedEngine,
    ClusterEngine,
    EXECUTION_MODES,
    SequentialEngine,
)
from repro.distributed.worker import Worker
from repro.distributed.cluster import SimulatedCluster

__all__ = [
    "ClusterEngine",
    "SequentialEngine",
    "BatchedEngine",
    "EXECUTION_MODES",
    "CommunicationCostModel",
    "CommunicationTracker",
    "NAIVE_COST_MODEL",
    "RING_COST_MODEL",
    "NetworkModel",
    "FL_NETWORK",
    "HPC_NETWORK",
    "BALANCED_NETWORK",
    "get_network",
    "Topology",
    "StarTopology",
    "RingTopology",
    "HierarchicalTopology",
    "GossipTopology",
    "NAMED_TOPOLOGIES",
    "get_topology",
    "Fabric",
    "Worker",
    "SimulatedCluster",
]
