"""A simulated federated worker.

Each worker owns a local model replica, a local optimizer, and a shard of the
training data.  ``local_step`` performs exactly one ``Optimize(w, B)`` update
from the paper's Algorithm 1; ``local_epoch`` performs the full local pass
used by the FedAvg/FedOpt baselines.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.data.datasets import Dataset
from repro.data.loaders import BatchSampler, EpochIterator
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.optim.base import Optimizer


class Worker:
    """One simulated worker-node: local model + local data + local optimizer.

    ``inplace`` selects the parameter-update path: the default drives the
    optimizer directly on the model's contiguous parameter-plane views
    (zero-copy); ``inplace=False`` keeps the seed-era copy path
    (``get_parameters`` → ``optimizer.step`` → ``set_parameters``), retained
    so the golden-trajectory equivalence test can prove both paths produce
    bit-identical training trajectories.
    """

    def __init__(
        self,
        worker_id: int,
        model: Sequential,
        dataset: Dataset,
        optimizer: Optimizer,
        batch_size: int = 32,
        loss: Optional[Loss] = None,
        seed=None,
        inplace: bool = True,
    ) -> None:
        if worker_id < 0:
            raise ConfigurationError(f"worker_id must be non-negative, got {worker_id}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.worker_id = int(worker_id)
        self.model = model
        self.dataset = dataset
        self.optimizer = optimizer
        self.batch_size = int(batch_size)
        self.loss = loss or SoftmaxCrossEntropy()
        self.inplace = bool(inplace)
        self._sampler = BatchSampler(dataset, batch_size, seed=seed)
        self._epoch_iterator = EpochIterator(dataset, batch_size, seed=seed)
        self.steps_performed = 0
        self.last_loss: Optional[float] = None

    # -- parameter access -----------------------------------------------------

    def parameters_view(self) -> np.ndarray:
        """Zero-copy view of the local model parameters (``w_t^{(k)}``)."""
        return self.model.parameters_view()

    def get_parameters(self) -> np.ndarray:
        """Flat copy of the local model parameters (``w_t^{(k)}``)."""
        return self.model.get_parameters()

    def set_parameters(self, flat: np.ndarray) -> None:
        """Overwrite the local model parameters (synchronization)."""
        self.model.set_parameters(flat)

    def get_buffers(self) -> np.ndarray:
        """Flat copy of the local model's non-trainable buffers."""
        return self.model.get_buffers()

    def set_buffers(self, flat: np.ndarray) -> None:
        """Overwrite the local model's non-trainable buffers."""
        self.model.set_buffers(flat)

    def drift_from(self, reference: np.ndarray) -> np.ndarray:
        """The local model drift ``u_t^{(k)} = w_t^{(k)} − reference``.

        Hot-path contract: ``reference`` must already be a plane-dtype ndarray of
        shape ``(d,)`` — every trainer holds its reference that way (it comes
        from ``get_parameters``/``synchronize``) — so the subtraction runs
        straight off the parameter-plane view with no per-call ``asarray``
        conversion.  Callers with convertible inputs convert once at the call
        site, not here.
        """
        return self.model.parameters_view() - reference

    @property
    def num_parameters(self) -> int:
        """Model dimension ``d``."""
        return self.model.num_parameters

    # -- training -------------------------------------------------------------

    def local_step(
        self,
        gradient_transform: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    ) -> float:
        """One mini-batch optimization step; returns the batch loss.

        ``gradient_transform(params, grads)`` — if given — may return a
        modified gradient before the optimizer step.  The drift-control
        baselines (FedProx's proximal term, SCAFFOLD's control variates) use
        this hook; plain FDA/BSP/FedAvg leave it unset.  On the in-place path
        the transform receives live views and must treat them as read-only.
        """
        batch_x, batch_y = self._sampler.sample()
        loss_value = self.model.train_batch(batch_x, batch_y, self.loss)
        if not np.isfinite(loss_value):
            raise TrainingError(
                f"worker {self.worker_id}: loss became non-finite ({loss_value}); "
                "reduce the learning rate or variance threshold"
            )
        self._apply_update(gradient_transform)
        self.steps_performed += 1
        self.last_loss = float(loss_value)
        return self.last_loss

    def _apply_update(self, gradient_transform) -> None:
        """One optimizer update on the freshly back-propagated gradients."""
        if self.inplace:
            params = self.model.parameters_view()
            grads = self.model.gradients_view()
            if gradient_transform is not None:
                grads = gradient_transform(params, grads)
            self.optimizer.step_inplace(params, grads)
        else:
            params = self.model.get_parameters()
            grads = self.model.get_gradients()
            if gradient_transform is not None:
                grads = gradient_transform(params, grads)
            self.model.set_parameters(self.optimizer.step(params, grads))

    def local_epoch(
        self,
        gradient_transform: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    ) -> float:
        """One full pass over the local shard; returns the mean batch loss.

        See :meth:`local_step` for the ``gradient_transform`` hook.
        """
        losses = []
        for batch_x, batch_y in self._epoch_iterator.epoch():
            loss_value = self.model.train_batch(batch_x, batch_y, self.loss)
            if not np.isfinite(loss_value):
                raise TrainingError(
                    f"worker {self.worker_id}: loss became non-finite ({loss_value}) "
                    "during a local epoch"
                )
            self._apply_update(gradient_transform)
            self.steps_performed += 1
            losses.append(float(loss_value))
        self.last_loss = float(np.mean(losses)) if losses else self.last_loss
        return self.last_loss if self.last_loss is not None else 0.0

    @property
    def batches_per_epoch(self) -> int:
        """Number of mini-batches in one local epoch."""
        return self._epoch_iterator.batches_per_epoch

    def __repr__(self) -> str:
        return (
            f"Worker(id={self.worker_id}, samples={len(self.dataset)}, "
            f"steps={self.steps_performed})"
        )
