"""Aggregation-weight metadata for weighted collectives (population plane).

Aggregation weights are O(K) *accounting* vectors — client sample counts or
participation masks — not streamed ``(K, d)`` tensors, so like the fabric's
byte counters and the timeline's virtual seconds they deliberately stay
float64 regardless of the plane dtype: normalization (``w / w.sum()``)
happens once per round in double precision, and only the final normalized
vector is cast to the plane dtype at the weighted-mean matmul.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


def validate_aggregation_weights(weights, num_workers: int) -> np.ndarray:
    """Check and canonicalize one per-slot weight vector (float64 copy)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (num_workers,):
        raise ShapeError(
            f"aggregation weights must have shape ({num_workers},), "
            f"got {weights.shape}"
        )
    if np.any(weights < 0.0) or not np.isfinite(weights).all():
        raise ConfigurationError("aggregation weights must be finite and >= 0")
    if weights.sum() <= 0.0:
        raise ConfigurationError("aggregation weights must not sum to zero")
    return weights


def renormalized_weights(
    weights: Optional[np.ndarray], mask: Optional[np.ndarray] = None
) -> Optional[np.ndarray]:
    """Weights renormalized to sum one over ``mask`` (``None`` = uniform path).

    ``None`` weights pass through (the exact ``mean(axis=0)`` collectives);
    a mask that zeroes every weight also returns ``None`` so callers fall
    back to the uniform average over the mask instead of dividing by zero.
    """
    if weights is None:
        return None
    if mask is not None:
        weights = np.where(mask, weights, 0.0)
    total = weights.sum()
    if total <= 0.0:
        return None
    return weights / total
