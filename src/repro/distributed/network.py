"""Network models: translating bytes and steps into wall-clock time.

The paper notes that the impact of communication cost on wall time depends on
the interconnect: negligible on the ARIS HPC InfiniBand fabric, dominant in a
federated setting on a shared 0.5 Gbps channel.  :class:`NetworkModel`
captures that translation so the Θ-selection guideline (Figure 12) and the
examples can reason about end-to-end training time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class NetworkModel:
    """A simple bandwidth + per-operation-latency network model."""

    name: str
    bandwidth_bits_per_second: float
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_second <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_bits_per_second}"
            )
        if self.latency_seconds < 0:
            raise ConfigurationError(
                f"latency must be non-negative, got {self.latency_seconds}"
            )

    def transfer_time(self, num_bytes: float, num_operations: int = 1) -> float:
        """Seconds needed to move ``num_bytes`` over this network."""
        if num_bytes < 0:
            raise ConfigurationError(f"num_bytes must be non-negative, got {num_bytes}")
        if num_operations < 0:
            raise ConfigurationError(
                f"num_operations must be non-negative, got {num_operations}"
            )
        return (num_bytes * 8.0) / self.bandwidth_bits_per_second + self.latency_seconds * num_operations

    def wall_time(
        self,
        communication_bytes: float,
        num_operations: int,
        parallel_steps: int,
        seconds_per_step: float,
    ) -> float:
        """Total wall-clock estimate: computation plus communication.

        ``parallel_steps`` is the paper's computation metric (steps performed
        by each worker, executed in parallel), so computation time is
        ``parallel_steps * seconds_per_step``.
        """
        if parallel_steps < 0:
            raise ConfigurationError(f"parallel_steps must be non-negative, got {parallel_steps}")
        if seconds_per_step < 0:
            raise ConfigurationError(
                f"seconds_per_step must be non-negative, got {seconds_per_step}"
            )
        return parallel_steps * seconds_per_step + self.transfer_time(
            communication_bytes, num_operations
        )


#: Federated-learning setting from the paper: a shared 0.5 Gbps channel.
FL_NETWORK = NetworkModel("fl", bandwidth_bits_per_second=0.5e9, latency_seconds=0.05)

#: The paper's ARIS HPC environment: InfiniBand FDR14, 56 Gb/s.
HPC_NETWORK = NetworkModel("hpc", bandwidth_bits_per_second=56e9, latency_seconds=1e-4)

#: A synthetic middle ground between the two, used for the "balanced" Θ guideline.
BALANCED_NETWORK = NetworkModel("balanced", bandwidth_bits_per_second=5e9, latency_seconds=5e-3)

NAMED_NETWORKS = {
    "fl": FL_NETWORK,
    "hpc": HPC_NETWORK,
    "balanced": BALANCED_NETWORK,
}


def get_network(name):
    """Resolve ``name`` into a :class:`NetworkModel` (or ``None``).

    Accepts a predefined name (``"fl"``, ``"hpc"``, ``"balanced"``), an
    existing :class:`NetworkModel` (returned unchanged), or ``None`` /
    ``"none"`` for the timeless default in which communication takes no
    virtual seconds.
    """
    if name is None or isinstance(name, NetworkModel):
        return name
    if name == "none":
        return None
    try:
        return NAMED_NETWORKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown network {name!r}; known: {sorted(NAMED_NETWORKS)} or 'none'"
        ) from None
