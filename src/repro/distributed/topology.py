"""Topology-aware communication fabric.

The paper's wall-clock claims hinge on the interconnect: FDA's savings are
negligible on an InfiniBand HPC fabric and decisive on a shared 0.5 Gbps
federated channel.  The byte accounting, however, also depends on *how* the
collective is routed — a parameter-server star, a ring AllReduce, a two-level
hierarchy of aggregators, or a gossip mesh move very different volumes over
very different numbers of sequential hops.

This module makes the routing first-class:

* :class:`Topology` subclasses describe one interconnect layout: its directed
  links, how many elements each link carries for one AllReduce / broadcast /
  coordinator upload, and how many sequential rounds (latency hops) plus
  critical-path bytes (bandwidth) the collective needs.
* :class:`Fabric` composes a topology with the scalar
  :class:`~repro.distributed.comm.CommunicationCostModel` and an optional
  :class:`~repro.distributed.network.NetworkModel` into one per-collective
  ``(bytes, virtual-seconds)`` charge, recording bytes per traffic category
  (through the shared :class:`~repro.distributed.comm.CommunicationTracker`)
  and per link.

The star topology is the paper's accounting convention ("total data
transmitted by all workers"): it delegates its AllReduce byte total to the
scalar cost model, so the default ``Fabric(StarTopology(), NAIVE_COST_MODEL)``
is bit-identical to the pre-fabric accounting, including the ring-scheme
ablation (``cost_model=RING_COST_MODEL``).  All other topologies charge the
sum of their per-link volumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.distributed.comm import (
    CommunicationCostModel,
    CommunicationTracker,
    NAIVE_COST_MODEL,
)
from repro.distributed.network import NetworkModel
from repro.exceptions import CommunicationError, ConfigurationError

#: Node id of the central server / coordinator in server-based topologies.
#: Worker nodes are ``0 .. K-1``; the server is an extra node.
SERVER = -1

#: A directed link ``(source, destination)`` between node ids.
Link = Tuple[int, int]


class Topology:
    """One interconnect layout: links plus per-collective traffic placement.

    Subclasses implement the ``*_link_elements`` methods, which return the
    number of float32-equivalent elements each directed link carries for one
    collective of ``num_elements`` across ``num_workers``, together with the
    latency/critical-path geometry the network model needs:

    * ``*_rounds`` — sequential communication rounds (each pays one network
      latency);
    * ``*_critical_elements`` — elements on the longest serial transfer chain
      (each pays bandwidth time).

    ``paper_accounting`` marks the topology whose AllReduce *byte total* is
    defined by the scalar cost model rather than the link sum — the star, i.e.
    the paper's own convention.  Its link loads still sum to the same total
    under the default naive scheme, which the conservation property test
    checks.
    """

    name = "topology"
    paper_accounting = False

    # -- structure -------------------------------------------------------------

    def validate(self, num_workers: int) -> None:
        """Raise :class:`ConfigurationError` if ``num_workers`` is unsupported."""
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")

    def links(self, num_workers: int) -> List[Link]:
        """Every directed link of this topology for ``num_workers`` workers."""
        raise NotImplementedError

    # -- AllReduce -------------------------------------------------------------

    def allreduce_link_elements(
        self, num_elements: int, num_workers: int
    ) -> Dict[Link, float]:
        """Elements carried per link for one AllReduce of ``num_elements``."""
        raise NotImplementedError

    def allreduce_rounds(self, num_workers: int) -> int:
        raise NotImplementedError

    def allreduce_critical_elements(self, num_elements: int, num_workers: int) -> float:
        raise NotImplementedError

    # -- broadcast -------------------------------------------------------------

    def broadcast_link_elements(
        self, num_elements: int, num_workers: int
    ) -> Dict[Link, float]:
        """Elements per link for broadcasting one vector from the root to all."""
        raise NotImplementedError

    def broadcast_rounds(self, num_workers: int) -> int:
        raise NotImplementedError

    def broadcast_critical_elements(self, num_elements: int, num_workers: int) -> float:
        return float(num_elements)

    # -- coordinator upload (asynchronous FDA state traffic) --------------------

    def upload_path(self, worker_id: int, num_workers: int) -> List[Link]:
        """The sequence of links a worker→coordinator upload traverses.

        Every returned link must be one of :meth:`links`.  The coordinator is
        the hub/root where one exists (:data:`SERVER`) and worker 0 on the
        serverless topologies — whose own upload is then local and free.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StarTopology(Topology):
    """Parameter-server star: every worker talks directly to a central hub.

    This is the paper's setting.  One AllReduce is a gather (each worker
    uploads its vector) followed by a broadcast of the average; the paper's
    accounting counts the worker uploads — ``K·n`` elements — which is exactly
    the naive cost model's total, so this topology delegates its byte charge
    to the scalar cost model (``paper_accounting``).
    """

    name = "star"
    paper_accounting = True

    def links(self, num_workers: int) -> List[Link]:
        self.validate(num_workers)
        up = [(worker, SERVER) for worker in range(num_workers)]
        down = [(SERVER, worker) for worker in range(num_workers)]
        return up + down

    def allreduce_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers == 1:
            return {}
        return {(worker, SERVER): float(num_elements) for worker in range(num_workers)}

    def allreduce_rounds(self, num_workers: int) -> int:
        return 2 if num_workers > 1 else 0

    def allreduce_critical_elements(self, num_elements: int, num_workers: int) -> float:
        # One upload plus one download on the slowest worker's path.
        return 2.0 * num_elements if num_workers > 1 else 0.0

    def broadcast_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers <= 1:
            return {}
        # The paper's convention: the broadcaster is one of the K workers, so
        # K - 1 transmissions leave the hub.
        return {(SERVER, worker): float(num_elements) for worker in range(1, num_workers)}

    def broadcast_rounds(self, num_workers: int) -> int:
        return 1 if num_workers > 1 else 0

    def upload_path(self, worker_id: int, num_workers: int) -> List[Link]:
        return [(worker_id, SERVER)]


class RingTopology(Topology):
    """Ring AllReduce: workers exchange chunks around a cycle.

    The classic bandwidth-optimal schedule: ``2 (K−1)`` rounds in which every
    worker forwards an ``n/K`` chunk to its successor, moving ``2 (K−1)/K · n``
    elements per worker — the volume of :data:`~repro.distributed.comm.RING_COST_MODEL`.
    """

    name = "ring"

    def links(self, num_workers: int) -> List[Link]:
        # The physical ring is bidirectional; the AllReduce/broadcast schedules
        # only use the forward direction, coordinator uploads take the shorter.
        self.validate(num_workers)
        if num_workers == 1:
            return []
        forward = [(worker, (worker + 1) % num_workers) for worker in range(num_workers)]
        backward = [(worker, (worker - 1) % num_workers) for worker in range(num_workers)]
        return forward + [link for link in backward if link not in forward]

    def allreduce_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers == 1:
            return {}
        per_link = 2.0 * (num_workers - 1) / num_workers * num_elements
        return {
            (worker, (worker + 1) % num_workers): per_link
            for worker in range(num_workers)
        }

    def allreduce_rounds(self, num_workers: int) -> int:
        return 2 * (num_workers - 1) if num_workers > 1 else 0

    def allreduce_critical_elements(self, num_elements: int, num_workers: int) -> float:
        if num_workers == 1:
            return 0.0
        return 2.0 * (num_workers - 1) / num_workers * num_elements

    def broadcast_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers <= 1:
            return {}
        # Pipeline around the ring: every link except the closing one carries
        # the full vector once.
        return {
            (worker, worker + 1): float(num_elements) for worker in range(num_workers - 1)
        }

    def broadcast_rounds(self, num_workers: int) -> int:
        return num_workers - 1 if num_workers > 1 else 0

    def upload_path(self, worker_id: int, num_workers: int) -> List[Link]:
        # Shortest way around the (bidirectional) ring to the coordinator,
        # worker 0; the coordinator's own upload is local.
        if worker_id == 0 or num_workers == 1:
            return []
        if worker_id <= num_workers // 2:
            return [(node, node - 1) for node in range(worker_id, 0, -1)]
        return [
            (node, (node + 1) % num_workers) for node in range(worker_id, num_workers)
        ]


class HierarchicalTopology(Topology):
    """Two-level aggregation: workers → group heads → root, and back down.

    Workers are partitioned into groups of at most ``group_size``; the first
    worker of each group is its head.  One AllReduce gathers within each group,
    reduces the heads at the root, then broadcasts back down — the structure of
    rack-local aggregation in HPC clusters and of edge servers in hierarchical
    federated learning.
    """

    name = "hierarchical"

    def __init__(self, group_size: int = 4) -> None:
        if group_size < 2:
            raise ConfigurationError(f"group_size must be >= 2, got {group_size}")
        self.group_size = int(group_size)

    def _groups(self, num_workers: int) -> List[List[int]]:
        return [
            list(range(start, min(start + self.group_size, num_workers)))
            for start in range(0, num_workers, self.group_size)
        ]

    def links(self, num_workers: int) -> List[Link]:
        self.validate(num_workers)
        result: List[Link] = []
        for group in self._groups(num_workers):
            head = group[0]
            for member in group[1:]:
                result.append((member, head))
                result.append((head, member))
            result.append((head, SERVER))
            result.append((SERVER, head))
        return result

    def allreduce_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers == 1:
            return {}
        loads: Dict[Link, float] = {}
        for group in self._groups(num_workers):
            head = group[0]
            for member in group[1:]:
                loads[(member, head)] = float(num_elements)   # intra-group gather
                loads[(head, member)] = float(num_elements)   # intra-group broadcast
            loads[(head, SERVER)] = float(num_elements)        # head reduce
            loads[(SERVER, head)] = float(num_elements)        # head broadcast
        return loads

    def allreduce_rounds(self, num_workers: int) -> int:
        return 4 if num_workers > 1 else 0

    def allreduce_critical_elements(self, num_elements: int, num_workers: int) -> float:
        # Leaf → head → root → head → leaf.
        return 4.0 * num_elements if num_workers > 1 else 0.0

    def broadcast_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers <= 1:
            return {}
        loads: Dict[Link, float] = {}
        for group in self._groups(num_workers):
            head = group[0]
            loads[(SERVER, head)] = float(num_elements)
            for member in group[1:]:
                loads[(head, member)] = float(num_elements)
        return loads

    def broadcast_rounds(self, num_workers: int) -> int:
        return 2 if num_workers > 1 else 0

    def broadcast_critical_elements(self, num_elements: int, num_workers: int) -> float:
        return 2.0 * num_elements if num_workers > 1 else 0.0

    def upload_path(self, worker_id: int, num_workers: int) -> List[Link]:
        head = (worker_id // self.group_size) * self.group_size
        if worker_id == head:
            return [(head, SERVER)]
        return [(worker_id, head), (head, SERVER)]

    def __repr__(self) -> str:
        return f"HierarchicalTopology(group_size={self.group_size})"


class GossipTopology(Topology):
    """Gossip mesh: every worker averages with ``degree`` ring-neighbours.

    One "synchronization" is ``rounds`` gossip exchanges (default
    ``ceil(log2 K)``, enough mixing steps for near-uniform averaging on a
    well-connected mesh); each round every worker pushes its vector to each of
    its neighbours.  The simulation still realises the *exact* average — the
    gossip geometry here defines the traffic and timing charged for it, which
    is the upper bound a decentralized deployment would pay.
    """

    name = "gossip"

    def __init__(self, degree: int = 2, rounds: Optional[int] = None) -> None:
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        if rounds is not None and rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self.degree = int(degree)
        self.rounds = rounds

    def _degree(self, num_workers: int) -> int:
        return min(self.degree, max(num_workers - 1, 0))

    def _rounds(self, num_workers: int) -> int:
        if self.rounds is not None:
            return int(self.rounds)
        return max(1, math.ceil(math.log2(max(num_workers, 2))))

    def links(self, num_workers: int) -> List[Link]:
        self.validate(num_workers)
        degree = self._degree(num_workers)
        result: List[Link] = []
        for worker in range(num_workers):
            for offset in range(1, degree + 1):
                result.append((worker, (worker + offset) % num_workers))
        return result

    def allreduce_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers == 1:
            return {}
        per_link = float(num_elements) * self._rounds(num_workers)
        return {link: per_link for link in self.links(num_workers)}

    def allreduce_rounds(self, num_workers: int) -> int:
        return self._rounds(num_workers) if num_workers > 1 else 0

    def allreduce_critical_elements(self, num_elements: int, num_workers: int) -> float:
        if num_workers == 1:
            return 0.0
        # Per gossip round a worker transmits to each of its neighbours.
        return float(num_elements) * self._rounds(num_workers) * self._degree(num_workers)

    def broadcast_link_elements(self, num_elements: int, num_workers: int) -> Dict[Link, float]:
        self.validate(num_workers)
        if num_elements == 0 or num_workers <= 1:
            return {}
        # Flood from node 0: every worker forwards to its neighbours once.
        return {link: float(num_elements) for link in self.links(num_workers)}

    def broadcast_rounds(self, num_workers: int) -> int:
        if num_workers <= 1:
            return 0
        return max(1, math.ceil((num_workers - 1) / max(self._degree(num_workers), 1)))

    def upload_path(self, worker_id: int, num_workers: int) -> List[Link]:
        # Forward along the chord links (offsets 1..degree) to the
        # coordinator, worker 0, taking the largest available stride.
        if worker_id == 0 or num_workers == 1:
            return []
        degree = max(self._degree(num_workers), 1)
        path: List[Link] = []
        node = worker_id
        while node != 0:
            stride = min(degree, num_workers - node)
            next_node = (node + stride) % num_workers
            path.append((node, next_node))
            node = next_node
        return path

    def __repr__(self) -> str:
        return f"GossipTopology(degree={self.degree}, rounds={self.rounds})"


#: Factories for the named topologies accepted by the CLI / workload configs.
NAMED_TOPOLOGIES: Dict[str, Callable[[], Topology]] = {
    "star": StarTopology,
    "ring": RingTopology,
    "hierarchical": HierarchicalTopology,
    "gossip": GossipTopology,
}


def get_topology(topology, **kwargs) -> Topology:
    """Resolve ``topology`` (a name or an instance) into a :class:`Topology`."""
    if isinstance(topology, Topology):
        return topology
    try:
        factory = NAMED_TOPOLOGIES[str(topology)]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology {topology!r}; known: {sorted(NAMED_TOPOLOGIES)}"
        ) from None
    return factory(**kwargs)


@dataclass(frozen=True)
class CollectiveCharge:
    """The cost of one collective: bytes on the wire and virtual seconds."""

    num_bytes: int
    seconds: float


@dataclass
class Fabric:
    """Routes collectives through a topology and prices them.

    One object per cluster: every ``synchronize`` / ``allreduce`` /
    ``broadcast`` / async state upload calls into the fabric, which computes
    the byte total (per the topology's link loads, or the scalar cost model
    for the paper-accounting star), records it on the shared tracker and the
    per-link ledger, and — when a :class:`NetworkModel` is configured —
    converts the collective's critical path and round count into virtual
    seconds.  Without a network model communication is instantaneous, which is
    the pre-fabric behaviour.
    """

    topology: Topology = field(default_factory=StarTopology)
    cost_model: CommunicationCostModel = field(default_factory=lambda: NAIVE_COST_MODEL)
    network: Optional[NetworkModel] = None
    tracker: CommunicationTracker = None  # type: ignore[assignment]
    bytes_by_link: Dict[Link, int] = field(default_factory=dict)
    comm_seconds: float = 0.0
    seconds_by_category: Dict[str, float] = field(default_factory=dict)
    #: Optional :class:`~repro.faults.injector.FaultInjector`.  When set and
    #: its link-loss category is active, every collective draws per-link
    #: retransmissions that are charged to the same ledgers as the original
    #: transfer (see :meth:`_retransmit`).
    injector: Optional[object] = None

    def __post_init__(self) -> None:
        if self.tracker is None:
            self.tracker = CommunicationTracker(self.cost_model)

    # -- helpers ---------------------------------------------------------------

    @property
    def network_name(self) -> str:
        return self.network.name if self.network is not None else "none"

    def _record_links(self, loads: Dict[Link, float]) -> None:
        bytes_per_element = self.cost_model.bytes_per_element
        for link, elements in loads.items():
            charged = int(round(elements * bytes_per_element))
            if charged:
                self.bytes_by_link[link] = self.bytes_by_link.get(link, 0) + charged

    def _seconds(self, critical_elements: float, rounds: int) -> float:
        if self.network is None:
            return 0.0
        critical_bytes = critical_elements * self.cost_model.bytes_per_element
        return self.network.transfer_time(critical_bytes, num_operations=rounds)

    def _retransmit(self, loads: Dict[Link, float]) -> CollectiveCharge:
        """Draw per-link retransmissions for one collective over lossy links.

        For every link the collective touches (in deterministic sorted order)
        the injector draws a capped-geometric retry count; each retry resends
        that link's full payload, so the extra bytes land on *both* the
        per-link ledger and the tracker total — the conservation property the
        faults bench asserts (`tracker delta == Σ FaultLog link entries`).
        Retry latency is the capped exponential backoff plus the network
        transfer time of the resent payload (zero without a network model).
        """
        bytes_per_element = self.cost_model.bytes_per_element
        extra_bytes = 0
        extra_seconds = 0.0
        for link in sorted(loads):
            retries, backoff = self.injector.sample_link_retries()
            if retries <= 0:
                continue
            link_bytes = int(round(loads[link] * bytes_per_element)) * retries
            delay = backoff
            if self.network is not None and link_bytes:
                delay += self.network.transfer_time(link_bytes, num_operations=retries)
            if link_bytes:
                self.bytes_by_link[link] = self.bytes_by_link.get(link, 0) + link_bytes
            extra_bytes += link_bytes
            extra_seconds += delay
            self.injector.log.record_retransmission(
                f"{link[0]}->{link[1]}", retries, link_bytes, backoff
            )
        return CollectiveCharge(extra_bytes, extra_seconds)

    def _charge(
        self, num_bytes: int, seconds: float, category: str, loads: Dict[Link, float]
    ) -> CollectiveCharge:
        if self.injector is not None and self.injector.loss_active:
            resent = self._retransmit(loads)
            num_bytes += resent.num_bytes
            seconds += resent.seconds
        self.tracker.record_transfer(num_bytes, category)
        self._record_links(loads)
        self.comm_seconds += seconds
        self.seconds_by_category[category] = (
            self.seconds_by_category.get(category, 0.0) + seconds
        )
        return CollectiveCharge(num_bytes, seconds)

    # -- collectives -----------------------------------------------------------

    @staticmethod
    def _payload_elements(num_elements: int, compression) -> int:
        """The per-node element count actually placed on the wire.

        ``compression`` (a :class:`~repro.compression.kernels.Compressor`, or
        ``None``) converts the logical vector length into the kernel's true
        transmitted size — index/value pairs for sparse formats, level bits
        plus scale for quantized ones — so link ledgers, byte totals, and
        network seconds all price the compressed payload instead of ``4·d``.
        """
        if num_elements < 0:
            raise CommunicationError(f"num_elements must be non-negative, got {num_elements}")
        if compression is None:
            return num_elements
        return int(compression.transmitted_elements(num_elements))

    def allreduce(
        self, num_elements: int, num_workers: int, category: str, compression=None
    ) -> CollectiveCharge:
        """Price one AllReduce of ``num_elements`` across ``num_workers``."""
        num_elements = self._payload_elements(num_elements, compression)
        loads = self.topology.allreduce_link_elements(num_elements, num_workers)
        if self.topology.paper_accounting:
            num_bytes = self.cost_model.allreduce_bytes(num_elements, num_workers)
        else:
            num_bytes = int(
                round(sum(loads.values()) * self.cost_model.bytes_per_element)
            )
        seconds = self._seconds(
            self.topology.allreduce_critical_elements(num_elements, num_workers),
            self.topology.allreduce_rounds(num_workers),
        )
        return self._charge(num_bytes, seconds, category, loads)

    def broadcast(
        self, num_elements: int, num_workers: int, category: str, compression=None
    ) -> CollectiveCharge:
        """Price one root-to-all broadcast of ``num_elements``."""
        num_elements = self._payload_elements(num_elements, compression)
        loads = self.topology.broadcast_link_elements(num_elements, num_workers)
        if self.topology.paper_accounting:
            num_bytes = self.cost_model.broadcast_bytes(num_elements, num_workers)
        else:
            num_bytes = int(
                round(sum(loads.values()) * self.cost_model.bytes_per_element)
            )
        seconds = self._seconds(
            self.topology.broadcast_critical_elements(num_elements, num_workers),
            self.topology.broadcast_rounds(num_workers),
        )
        return self._charge(num_bytes, seconds, category, loads)

    def upload(
        self,
        num_elements: int,
        num_workers: int,
        category: str,
        worker_id: int = 0,
        compression=None,
    ) -> CollectiveCharge:
        """Price one point-to-point worker → coordinator upload.

        Used for the asynchronous protocol's local-state messages; the charge
        is ``num_elements`` per link on the topology's actual
        worker→coordinator path (one hop on the star — identical to the
        pre-fabric accounting; multi-hop on the hierarchy, ring, and mesh,
        where the per-link ledger records each traversed edge).  With a
        ``compression`` kernel the payload charged per hop is the kernel's
        transmitted size, never the dense vector.
        """
        num_elements = self._payload_elements(num_elements, compression)
        path = self.topology.upload_path(worker_id, num_workers)
        hops = len(path)
        num_bytes = num_elements * self.cost_model.bytes_per_element * hops
        seconds = self._seconds(float(num_elements) * hops, hops)
        loads: Dict[Link, float] = {}
        for link in path:
            loads[link] = loads.get(link, 0.0) + float(num_elements)
        return self._charge(num_bytes, seconds, category, loads)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view of the fabric state for logging."""
        return {
            "topology": self.topology.name,
            "network": self.network_name,
            "comm_seconds": self.comm_seconds,
            "seconds_by_category": dict(self.seconds_by_category),
            "bytes_by_link": {f"{src}->{dst}": b for (src, dst), b in self.bytes_by_link.items()},
            **self.tracker.snapshot(),
        }
