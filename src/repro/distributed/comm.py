"""Communication-cost accounting.

The paper's primary metric is the *communication cost*: "the total data (in
bytes) transmitted by all workers".  :class:`CommunicationCostModel` maps one
collective operation (AllReduce of ``n`` float32 elements across ``K``
workers) to that byte count, and :class:`CommunicationTracker` accumulates the
totals per traffic category (model synchronization vs. FDA local states) so
the experiment harness can report exactly the series plotted in the figures.

The default unit is the *float32-equivalent element* (4 bytes), matching the
paper's accounting; :meth:`CommunicationCostModel.for_dtype` builds a model
priced at any plane dtype's true itemsize (clusters install one so float64
runs charge 8-byte elements and float32 runs 4-byte elements).  Payload
compression plugs in one level up: when a collective is charged with a
:class:`~repro.compression.kernels.Compressor`, the
:class:`~repro.distributed.topology.Fabric` first converts the logical vector
length into the kernel's transmitted element count (index/value pairs for
sparse formats, level bits plus scale for quantized ones) and only then
applies the cost model here — so byte totals, per-link ledgers, and network
seconds all price what is actually on the wire, never a flat ``4·d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.exceptions import ConfigurationError

#: Bytes per transmitted element; the paper assumes 4-byte (float32) values.
BYTES_PER_ELEMENT = 4


@dataclass(frozen=True)
class CommunicationCostModel:
    """Maps an AllReduce of ``num_elements`` across ``num_workers`` to total bytes.

    ``scheme="naive"`` charges every worker the full vector (total =
    ``K · n · bytes``), matching the paper's "total data transmitted by all
    workers" accounting.  ``scheme="ring"`` charges the ring-AllReduce volume
    (``2 (K−1)/K · n`` per worker), which is what an MPI/NCCL implementation
    would actually move; it is available for the ablation benchmark.
    """

    scheme: str = "naive"
    bytes_per_element: int = BYTES_PER_ELEMENT

    def __post_init__(self) -> None:
        if self.scheme not in ("naive", "ring"):
            raise ConfigurationError(
                f"scheme must be 'naive' or 'ring', got {self.scheme!r}"
            )
        if self.bytes_per_element <= 0:
            raise ConfigurationError(
                f"bytes_per_element must be positive, got {self.bytes_per_element}"
            )

    def allreduce_bytes(self, num_elements: int, num_workers: int) -> int:
        """Total bytes transmitted by all workers for one AllReduce."""
        if num_elements < 0:
            raise ConfigurationError(f"num_elements must be non-negative, got {num_elements}")
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        if num_elements == 0 or num_workers == 1:
            return 0
        payload = num_elements * self.bytes_per_element
        if self.scheme == "naive":
            return payload * num_workers
        per_worker = 2.0 * (num_workers - 1) / num_workers * payload
        return int(round(per_worker * num_workers))

    def broadcast_bytes(self, num_elements: int, num_workers: int) -> int:
        """Total bytes for broadcasting a vector from one node to all others."""
        if num_elements == 0 or num_workers <= 1:
            return 0
        return num_elements * self.bytes_per_element * (num_workers - 1)

    @classmethod
    def for_dtype(cls, dtype, scheme: str = "naive") -> "CommunicationCostModel":
        """A cost model pricing elements at ``dtype``'s itemsize.

        This is what :class:`~repro.distributed.cluster.SimulatedCluster`
        installs by default: a float64 plane transmits 8-byte elements, a
        float32 plane 4-byte elements, so per-link ledgers and byte totals
        reflect the selected precision instead of a flat 4-byte assumption.
        """
        from repro.backend import resolve_dtype

        return cls(scheme, bytes_per_element=resolve_dtype(dtype).itemsize)


NAIVE_COST_MODEL = CommunicationCostModel("naive")
RING_COST_MODEL = CommunicationCostModel("ring")


@dataclass
class CommunicationTracker:
    """Accumulates transmitted bytes and collective-operation counts.

    Byte totals are kept per category so that the experiment harness can
    separate the (large) model-synchronization traffic from the (small) FDA
    local-state traffic — Figure 8-11 style breakdowns rely on this.
    """

    cost_model: CommunicationCostModel = field(default_factory=lambda: NAIVE_COST_MODEL)
    bytes_by_category: Dict[str, int] = field(default_factory=dict)
    operations_by_category: Dict[str, int] = field(default_factory=dict)

    def record_allreduce(self, num_elements: int, num_workers: int, category: str) -> int:
        """Record one AllReduce and return the bytes charged for it."""
        charged = self.cost_model.allreduce_bytes(num_elements, num_workers)
        self.bytes_by_category[category] = self.bytes_by_category.get(category, 0) + charged
        self.operations_by_category[category] = self.operations_by_category.get(category, 0) + 1
        return charged

    def record_broadcast(self, num_elements: int, num_workers: int, category: str) -> int:
        """Record one broadcast and return the bytes charged for it."""
        charged = self.cost_model.broadcast_bytes(num_elements, num_workers)
        self.bytes_by_category[category] = self.bytes_by_category.get(category, 0) + charged
        self.operations_by_category[category] = self.operations_by_category.get(category, 0) + 1
        return charged

    def record_transfer(self, num_bytes: int, category: str) -> int:
        """Record one collective whose byte total was computed by the caller.

        The topology-aware :class:`~repro.distributed.topology.Fabric` prices
        collectives itself (per-link sums, or the scalar cost model for the
        paper-accounting star) and records the result here, so every category
        still accumulates in one place.
        """
        if num_bytes < 0:
            raise ConfigurationError(f"num_bytes must be non-negative, got {num_bytes}")
        self.bytes_by_category[category] = self.bytes_by_category.get(category, 0) + int(num_bytes)
        self.operations_by_category[category] = self.operations_by_category.get(category, 0) + 1
        return int(num_bytes)

    @property
    def total_bytes(self) -> int:
        """Total bytes across every category (the paper's communication cost)."""
        return int(sum(self.bytes_by_category.values()))

    def bytes_for(self, category: str) -> int:
        """Total bytes charged to a single category."""
        return int(self.bytes_by_category.get(category, 0))

    def operations_for(self, category: str) -> int:
        """Number of collectives charged to a single category."""
        return int(self.operations_by_category.get(category, 0))

    def reset(self) -> None:
        """Clear all accumulated statistics."""
        self.bytes_by_category.clear()
        self.operations_by_category.clear()

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict snapshot suitable for logging."""
        return {
            "total_bytes": self.total_bytes,
            "bytes_by_category": dict(self.bytes_by_category),
            "operations_by_category": dict(self.operations_by_category),
        }
