"""The simulated cluster: collectives, synchronization, and global evaluation.

:class:`SimulatedCluster` owns the workers and implements the two collective
operations FDA needs (AllReduce of local states and AllReduce of model
parameters), charging their byte cost to a :class:`CommunicationTracker`.
It also maintains an *evaluation model* used to measure the accuracy of the
global (average) model without disturbing any worker's local state.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.distributed.comm import CommunicationCostModel, CommunicationTracker, NAIVE_COST_MODEL
from repro.distributed.worker import Worker
from repro.exceptions import CommunicationError, ConfigurationError
from repro.nn.losses import Loss, SoftmaxCrossEntropy

#: Traffic categories used by the tracker.
CATEGORY_MODEL = "model-sync"
CATEGORY_STATE = "fda-state"
CATEGORY_OTHER = "other"


class SimulatedCluster:
    """A set of workers plus exact-average collectives with byte accounting."""

    def __init__(
        self,
        workers: Sequence[Worker],
        cost_model: Optional[CommunicationCostModel] = None,
        loss: Optional[Loss] = None,
    ) -> None:
        if not workers:
            raise ConfigurationError("a cluster needs at least one worker")
        dimensions = {worker.num_parameters for worker in workers}
        if len(dimensions) != 1:
            raise CommunicationError(
                f"all workers must share the same model dimension, got {sorted(dimensions)}"
            )
        self.workers: List[Worker] = list(workers)
        self.tracker = CommunicationTracker(cost_model or NAIVE_COST_MODEL)
        self.loss = loss or SoftmaxCrossEntropy()
        self.synchronization_count = 0
        self._evaluation_model = self.workers[0].model.clone()

    # -- basic properties ------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """``K`` in the paper."""
        return len(self.workers)

    @property
    def model_dimension(self) -> int:
        """``d`` in the paper."""
        return self.workers[0].num_parameters

    @property
    def parallel_steps(self) -> int:
        """In-parallel learning steps: the maximum steps performed by any worker.

        All strategies in this library drive workers in lockstep, so this also
        equals every individual worker's step count.
        """
        return max(worker.steps_performed for worker in self.workers)

    @property
    def total_bytes(self) -> int:
        """Total communication cost so far (bytes transmitted by all workers)."""
        return self.tracker.total_bytes

    # -- collectives -----------------------------------------------------------

    def allreduce(self, vectors: Sequence[np.ndarray], category: str = CATEGORY_OTHER) -> np.ndarray:
        """Exact element-wise average of one vector per worker, with byte accounting."""
        if len(vectors) != self.num_workers:
            raise CommunicationError(
                f"allreduce needs one vector per worker ({self.num_workers}), got {len(vectors)}"
            )
        stacked = np.stack([np.asarray(v, dtype=np.float64) for v in vectors], axis=0)
        self.tracker.record_allreduce(int(stacked[0].size), self.num_workers, category)
        return stacked.mean(axis=0)

    def allreduce_scalar(self, values: Sequence[float], category: str = CATEGORY_OTHER) -> float:
        """AllReduce (average) of one scalar per worker."""
        if len(values) != self.num_workers:
            raise CommunicationError(
                f"allreduce_scalar needs one value per worker ({self.num_workers}), got {len(values)}"
            )
        self.tracker.record_allreduce(1, self.num_workers, category)
        return float(np.mean([float(v) for v in values]))

    def broadcast_parameters(self, flat: np.ndarray, count_cost: bool = False) -> None:
        """Set every worker's parameters to ``flat`` (optionally charging broadcast bytes)."""
        flat = np.asarray(flat, dtype=np.float64)
        if count_cost:
            self.tracker.record_broadcast(int(flat.size), self.num_workers, CATEGORY_MODEL)
        for worker in self.workers:
            worker.set_parameters(flat)

    # -- model synchronization ---------------------------------------------------

    def average_parameters(self) -> np.ndarray:
        """The global model ``w̄`` (average of worker parameters); free of charge.

        This is a *bookkeeping* average used for evaluation — it does not
        correspond to any network traffic in the simulated system.
        """
        stacked = np.stack([worker.get_parameters() for worker in self.workers], axis=0)
        return stacked.mean(axis=0)

    def average_buffers(self) -> np.ndarray:
        """Average of the workers' non-trainable buffers (batch-norm statistics)."""
        stacked = np.stack([worker.get_buffers() for worker in self.workers], axis=0)
        return stacked.mean(axis=0)

    def synchronize(self, include_buffers: bool = True) -> np.ndarray:
        """Full model synchronization via AllReduce (Algorithm 1, line 9).

        Averages the worker parameters (and, by default, the batch-norm
        buffers), writes the average back into every worker, charges the
        corresponding AllReduce traffic, and returns the new global parameters.
        """
        average = self.allreduce(
            [worker.get_parameters() for worker in self.workers], CATEGORY_MODEL
        )
        for worker in self.workers:
            worker.set_parameters(average)
        if include_buffers and self.workers[0].model.num_buffers:
            buffer_average = self.allreduce(
                [worker.get_buffers() for worker in self.workers], CATEGORY_MODEL
            )
            for worker in self.workers:
                worker.set_buffers(buffer_average)
        self.synchronization_count += 1
        return average

    # -- training helpers ----------------------------------------------------------

    def step_all(self) -> float:
        """Run one local mini-batch step on every worker; returns the mean loss."""
        losses = [worker.local_step() for worker in self.workers]
        return float(np.mean(losses))

    def epoch_all(self) -> float:
        """Run one local epoch on every worker; returns the mean loss."""
        losses = [worker.local_epoch() for worker in self.workers]
        return float(np.mean(losses))

    # -- evaluation -------------------------------------------------------------------

    def evaluate_global(self, dataset: Dataset, batch_size: int = 256) -> Tuple[float, float]:
        """Evaluate the *global* (average) model on ``dataset``.

        The evaluation model receives the average parameters and the average
        batch-norm buffers; worker state is untouched and no communication is
        charged (evaluation is an observer operation of the simulation).
        """
        self._evaluation_model.set_parameters(self.average_parameters())
        if self._evaluation_model.num_buffers:
            self._evaluation_model.set_buffers(self.average_buffers())
        return self._evaluation_model.evaluate(
            dataset.x, dataset.y, loss=self.loss, batch_size=batch_size
        )

    def evaluate_worker(self, worker_index: int, dataset: Dataset, batch_size: int = 256) -> Tuple[float, float]:
        """Evaluate a single worker's local model on ``dataset``."""
        if not 0 <= worker_index < self.num_workers:
            raise CommunicationError(
                f"worker_index must lie in [0, {self.num_workers}), got {worker_index}"
            )
        worker = self.workers[worker_index]
        return worker.model.evaluate(dataset.x, dataset.y, loss=self.loss, batch_size=batch_size)

    def model_variance(self) -> float:
        """The exact model variance Var(w_t) across workers (Equation 2)."""
        parameters = np.stack([worker.get_parameters() for worker in self.workers], axis=0)
        average = parameters.mean(axis=0)
        deviations = parameters - average
        return float(np.mean(np.sum(deviations * deviations, axis=1)))

    def __repr__(self) -> str:
        return (
            f"SimulatedCluster(K={self.num_workers}, d={self.model_dimension}, "
            f"syncs={self.synchronization_count}, bytes={self.total_bytes})"
        )
