"""The simulated cluster: collectives, synchronization, and global evaluation.

:class:`SimulatedCluster` owns the workers and implements the two collective
operations FDA needs (AllReduce of local states and AllReduce of model
parameters).  Every collective is routed through the cluster's
:class:`~repro.distributed.topology.Fabric`, which composes the interconnect
topology (star / ring / hierarchical / gossip), the scalar cost model, and an
optional network model into one ``(bytes, virtual-seconds)`` charge; compute
and communication time accumulate on the cluster's shared
:class:`~repro.core.timeline.Timeline`.  The cluster also maintains an
*evaluation model* used to measure the accuracy of the global (average) model
without disturbing any worker's local state.

The cluster is the top of the parameter plane: on construction it stacks
every worker's flat parameter vector (and buffer vector) into one contiguous
``(K, d)`` matrix and rebinds each model's storage onto its row.  From then
on ``average_parameters``, ``synchronize``, ``model_variance``,
``broadcast_parameters``, and ``drift_matrix`` are single row-wise matrix
operations — no per-worker Python loops, no gather/scatter copies.

Compression is a collective-level concern and therefore lives here too: an
optional :class:`~repro.compression.state.ClusterCompression` (installed via
the ``compression`` constructor argument or :meth:`enable_compression`)
reroutes ``synchronize`` and :meth:`gather_models` through row-wise
compression kernels with per-worker error-feedback memory, and every
``charge_*`` call accepts a compression spec so the fabric prices the true
compressed payload per link.  Without it, every path below is bit-identical
to the uncompressed implementation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import resolve_dtype
from repro.data.datasets import Dataset
from repro.distributed.comm import CommunicationCostModel
from repro.distributed.engine import ClusterEngine, build_engine
from repro.distributed.network import NetworkModel, get_network
from repro.distributed.topology import CollectiveCharge, Fabric, Topology, get_topology
from repro.distributed.worker import Worker
from repro.exceptions import CommunicationError, ConfigurationError, ShapeError
from repro.nn.losses import Loss, SoftmaxCrossEntropy

#: Traffic categories used by the tracker.
CATEGORY_MODEL = "model-sync"
CATEGORY_STATE = "fda-state"
CATEGORY_OTHER = "other"


class SimulatedCluster:
    """A set of workers plus exact-average collectives with cost accounting.

    ``topology`` (a name or :class:`~repro.distributed.topology.Topology`) and
    ``network`` (a name or :class:`~repro.distributed.network.NetworkModel`)
    configure the communication fabric; ``timeline`` supplies the virtual
    clock (heterogeneous compute, stragglers, dropout).  All three default to
    the paper's setting — star topology, naive cost model, instantaneous
    network, uniform unit compute — under which byte counts and parameter
    trajectories are bit-identical to the pre-fabric implementation.

    ``execution`` selects the compute engine below ``step_all``:
    ``"sequential"`` (default, per-worker steps, golden-trajectory
    bit-identical) or ``"batched"`` (one vectorized pass advancing all ``K``
    workers at once; see :mod:`repro.distributed.engine`).

    ``compression`` installs cluster-level payload compression: a kernel name
    (``"topk"``, ``"quantization"``, ``"randomk"``, ``"signsgd"``,
    ``"layerwise-topk"``), a
    :class:`~repro.compression.config.CompressionConfig`, or ``None`` (exact
    collectives, the default).  See :meth:`enable_compression`.

    ``dtype`` selects the compute dtype of the whole parameter plane:
    ``float64`` (default, the bit-exact reference) or ``float32`` (the fast
    mode — half the memory traffic, itemsize-accurate half the sync bytes).
    Worker models built in another dtype are converted in place before their
    storage is rebound onto the ``(K, d)`` matrix rows.  When no explicit
    ``cost_model`` is passed, the cluster prices collectives at
    ``dtype.itemsize`` bytes per element, so byte ledgers always reflect what
    the selected precision actually puts on the wire.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        cost_model: Optional[CommunicationCostModel] = None,
        loss: Optional[Loss] = None,
        topology: Union[str, Topology, None] = None,
        network: Union[str, NetworkModel, None] = None,
        timeline: Optional["Timeline"] = None,
        execution: str = "sequential",
        compression=None,
        dtype=None,
        faults=None,
    ) -> None:
        if not workers:
            raise ConfigurationError("a cluster needs at least one worker")
        dimensions = {worker.num_parameters for worker in workers}
        if len(dimensions) != 1:
            raise CommunicationError(
                f"all workers must share the same model dimension, got {sorted(dimensions)}"
            )
        buffer_sizes = {worker.model.num_buffers for worker in workers}
        if len(buffer_sizes) != 1:
            raise CommunicationError(
                f"all workers must share the same buffer dimension, got {sorted(buffer_sizes)}"
            )
        self.workers: List[Worker] = list(workers)
        # The plane dtype: explicit ``dtype`` wins; otherwise inherit from the
        # workers' models (which default to the float64 reference dtype).
        if dtype is not None:
            self.dtype = resolve_dtype(dtype)
        else:
            model_dtypes = {worker.model.dtype for worker in self.workers}
            if len(model_dtypes) != 1:
                raise ConfigurationError(
                    "workers disagree on model dtype "
                    f"({sorted(d.name for d in model_dtypes)}); pass dtype= to "
                    "pick the cluster-wide compute dtype"
                )
            self.dtype = model_dtypes.pop()
        for worker in self.workers:
            worker.model.to_dtype(self.dtype)
        resolved_topology = get_topology(topology) if topology is not None else None
        if cost_model is None:
            # Itemsize-accurate pricing: a float32 plane puts 4-byte elements
            # on the wire, a float64 plane 8-byte elements.
            cost_model = CommunicationCostModel.for_dtype(self.dtype)
        self.fabric = Fabric(
            topology=resolved_topology or get_topology("star"),
            cost_model=cost_model,
            network=get_network(network),
        )
        self.fabric.topology.validate(len(self.workers))
        # Compatibility alias: the tracker is owned by the fabric but remains
        # reachable as ``cluster.tracker`` for existing callers and tests.
        self.tracker = self.fabric.tracker
        from repro.core.timeline import Timeline  # local import: core builds on distributed

        if timeline is not None and timeline.num_workers != len(self.workers):
            raise ConfigurationError(
                f"timeline models {timeline.num_workers} workers, cluster has {len(self.workers)}"
            )
        self.timeline = timeline or Timeline(len(self.workers))
        self.loss = loss or SoftmaxCrossEntropy()
        self.synchronization_count = 0
        # The cluster-wide parameter plane: one contiguous (K, d) matrix whose
        # rows ARE the workers' parameter vectors (each model's flat storage is
        # rebound onto its row), plus the analogous buffer matrix.
        dimension = dimensions.pop()
        self._param_matrix = np.empty((len(self.workers), dimension), dtype=self.dtype)
        for row, worker in zip(self._param_matrix, self.workers):
            worker.model.rebind_parameter_storage(row)
        buffer_size = buffer_sizes.pop()
        self._buffer_matrix = np.empty((len(self.workers), buffer_size), dtype=self.dtype)
        for row, worker in zip(self._buffer_matrix, self.workers):
            worker.model.rebind_buffer_storage(row)
        self._evaluation_model = self.workers[0].model.clone()
        # Optional collective-level compression (kernel + reference model +
        # (K, d) error-feedback memory); None means exact collectives.
        self._compression = None
        if compression is not None:
            self.enable_compression(compression)
        # Optional fault injection: ``faults`` is a
        # :class:`~repro.faults.plan.FaultPlan` (or ``None``).  A null plan
        # (all rates zero) installs nothing at all, which is what makes the
        # fault-free path bit-identical to a run with no plan attached.
        # Optional population plane: aggregation weights (data-size weighted
        # collectives), a participation mask for partial cohorts, and a back
        # reference to the owning ClientPopulation.  All ``None`` means the
        # exact legacy collectives — the bit-exact parity path.
        self._aggregation_weights: Optional[np.ndarray] = None
        self._population_mask: Optional[np.ndarray] = None
        self.population = None
        self.faults = None
        if faults is not None and not faults.is_null:
            if self._compression is not None:
                raise ConfigurationError(
                    "fault injection and collective compression cannot be "
                    "combined yet; drop one of the two"
                )
            from repro.faults.injector import FaultInjector

            self.faults = FaultInjector(faults, len(self.workers))
            self.fabric.injector = self.faults
        # The execution engine (sequential per-worker loop or one batched
        # pass) sits below step_all; built last because the batched engine
        # stacks gradients next to the matrices created above.
        self._engine = build_engine(execution, self)

    # -- basic properties ------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """``K`` in the paper."""
        return len(self.workers)

    @property
    def engine(self) -> ClusterEngine:
        """The execution engine driving local compute (see :mod:`repro.distributed.engine`)."""
        return self._engine

    @property
    def execution(self) -> str:
        """The selected execution mode: ``"sequential"`` or ``"batched"``."""
        return self._engine.name

    @property
    def gradient_matrix(self) -> Optional[np.ndarray]:
        """The live ``(K, d)`` gradient matrix (batched engine only, else ``None``)."""
        return self._engine.gradient_matrix

    @property
    def dtype_name(self) -> str:
        """The plane dtype as a string (``"float64"`` or ``"float32"``)."""
        return self.dtype.name

    @property
    def model_dimension(self) -> int:
        """``d`` in the paper."""
        return self.workers[0].num_parameters

    @property
    def parallel_steps(self) -> int:
        """In-parallel learning steps: the maximum steps performed by any worker.

        All strategies in this library drive workers in lockstep, so this also
        equals every individual worker's step count.
        """
        return max(worker.steps_performed for worker in self.workers)

    @property
    def total_bytes(self) -> int:
        """Total communication cost so far (bytes transmitted by all workers)."""
        return self.tracker.total_bytes

    @property
    def virtual_time(self) -> float:
        """The cluster's virtual clock (compute plus communication seconds)."""
        return self.timeline.now

    # -- collective-level compression -------------------------------------------

    @property
    def compression(self):
        """The installed :class:`~repro.compression.state.ClusterCompression` (or ``None``)."""
        return self._compression

    @property
    def compression_label(self) -> str:
        """Compact description of the installed compression (``"none"`` without)."""
        return self._compression.label if self._compression is not None else "none"

    def enable_compression(self, spec):
        """Install (or replace) cluster-level payload compression.

        ``spec`` is a kernel name, a
        :class:`~repro.compression.config.CompressionConfig`, a ready
        :class:`~repro.compression.kernels.Compressor` instance, or ``None``
        to disable.  From then on ``synchronize`` and :meth:`gather_models`
        exchange compressed drifts from the last broadcast reference, the
        fabric charges compressed bytes, and (with ``error_feedback``) the
        dropped mass is carried in a ``(K, d)`` residual matrix whose rows
        belong to the workers.  Returns the installed state.
        """
        from repro.compression import ClusterCompression, Compressor, get_compression

        if spec is None:
            self._compression = None
            return None
        resolved = spec if isinstance(spec, Compressor) else get_compression(spec)
        if resolved is None:
            self._compression = None
            return None
        self._compression = ClusterCompression(
            resolved,
            num_workers=self.num_workers,
            dimension=self.model_dimension,
            layout=self.workers[0].model.plane.parameter_layout(),
            dtype=self.dtype,
        )
        return self._compression

    # -- fabric charges ---------------------------------------------------------

    def charge_allreduce(
        self, num_elements: int, category: str, compression=None
    ) -> CollectiveCharge:
        """Charge one AllReduce through the fabric and advance the clock.

        ``compression`` (an optional kernel) makes the fabric price the
        kernel's transmitted payload for a logical vector of ``num_elements``
        instead of the dense size.
        """
        charge = self.fabric.allreduce(
            num_elements, self.num_workers, category, compression=compression
        )
        self.timeline.add_communication(charge.seconds)
        return charge

    def charge_broadcast(
        self, num_elements: int, category: str, compression=None
    ) -> CollectiveCharge:
        """Charge one root-to-all broadcast through the fabric."""
        charge = self.fabric.broadcast(
            num_elements, self.num_workers, category, compression=compression
        )
        self.timeline.add_communication(charge.seconds)
        return charge

    def charge_upload(
        self, num_elements: int, category: str, worker_id: int = 0, compression=None
    ) -> CollectiveCharge:
        """Charge one point-to-point worker → coordinator upload.

        Unlike the collectives this does not act as a cluster-wide barrier:
        the upload's seconds are folded into the sender's next completion by
        the caller (the asynchronous trainer), while the timeline's
        communication ledger still records them.
        """
        charge = self.fabric.upload(
            num_elements, self.num_workers, category, worker_id, compression=compression
        )
        self.timeline.note_communication(charge.seconds)
        return charge

    # -- the cluster parameter plane -------------------------------------------

    @property
    def parameter_matrix(self) -> np.ndarray:
        """The live ``(K, d)`` parameter matrix; row ``k`` IS worker ``k``'s model.

        Zero-copy: mutating a row mutates the corresponding model.  Callers
        that need a snapshot must copy.
        """
        return self._param_matrix

    @property
    def buffer_matrix(self) -> np.ndarray:
        """The live ``(K, num_buffers)`` matrix of non-trainable buffers."""
        return self._buffer_matrix

    def drift_matrix(self, reference: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """All worker drifts ``u_t^{(k)} = w_t^{(k)} − reference`` as a ``(K, d)`` matrix.

        One vectorized subtraction replaces the per-worker gather-and-subtract
        loop.  Without ``out`` the matrix is freshly allocated, so its rows are
        safe to retain (e.g. inside an :class:`~repro.core.state.ExactState`);
        with a reusable ``out`` buffer the rows are only valid until the next
        call that writes into the same buffer.
        """
        reference = np.asarray(reference, dtype=self.dtype)
        if reference.shape != (self.model_dimension,):
            raise ShapeError(
                f"reference must have shape ({self.model_dimension},), got {reference.shape}"
            )
        return np.subtract(self._param_matrix, reference, out=out)

    # -- collectives -----------------------------------------------------------

    def _stack_vectors(
        self, vectors: Union[Sequence[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """One ``(K, n)`` matrix of per-worker vectors in the plane dtype.

        An already-stacked matrix whose dtype matches the plane is returned
        *as-is* — no copy.  (The old comparison was hardcoded against
        float64, so a float32 plane's own ``(K, d)`` matrices took a silent
        full-matrix ``astype`` copy on every collective.)  Mismatched dtypes
        and Python sequences are stacked/cast into a fresh matrix.
        """
        if isinstance(vectors, np.ndarray) and vectors.ndim == 2:
            if vectors.shape[0] != self.num_workers:
                raise CommunicationError(
                    f"allreduce needs one vector per worker ({self.num_workers}), "
                    f"got {vectors.shape[0]}"
                )
            return vectors if vectors.dtype == self.dtype else vectors.astype(self.dtype)
        if len(vectors) != self.num_workers:
            raise CommunicationError(
                f"allreduce needs one vector per worker ({self.num_workers}), got {len(vectors)}"
            )
        return np.stack([np.asarray(v, dtype=self.dtype) for v in vectors], axis=0)

    def allreduce(
        self,
        vectors: Union[Sequence[np.ndarray], np.ndarray],
        category: str = CATEGORY_OTHER,
        compression=None,
    ) -> np.ndarray:
        """Element-wise average of one vector per worker, with byte accounting.

        ``vectors`` may be a Python sequence of ``(n,)`` arrays or — the fast
        path — an already-stacked ``(K, n)`` matrix, which is averaged without
        re-stacking row copies.  With a ``compression`` kernel each row is
        lossily compressed before averaging (no error feedback — this is the
        raw collective; drift-aware compression lives in ``synchronize``) and
        the fabric is charged the compressed payload.
        """
        stacked = self._stack_vectors(vectors)
        self.charge_allreduce(int(stacked[0].size), category, compression=compression)
        if compression is not None:
            return compression.compress_rows(stacked).mean()
        return stacked.mean(axis=0)

    def allreduce_scalar(self, values: Sequence[float], category: str = CATEGORY_OTHER) -> float:
        """AllReduce (average) of one scalar per worker."""
        if len(values) != self.num_workers:
            raise CommunicationError(
                f"allreduce_scalar needs one value per worker ({self.num_workers}), got {len(values)}"
            )
        self.charge_allreduce(1, category)
        return float(np.mean([float(v) for v in values]))

    def broadcast_parameters(self, flat: np.ndarray, count_cost: bool = False) -> None:
        """Set every worker's parameters to ``flat`` (optionally charging broadcast bytes).

        With compression installed, the broadcast model becomes the new
        *reference*: subsequent compressed uploads transmit drifts from it.
        """
        flat = np.asarray(flat, dtype=self.dtype)
        if flat.shape != (self.model_dimension,):
            raise ShapeError(
                f"expected a flat parameter vector of shape ({self.model_dimension},), "
                f"got {flat.shape}"
            )
        if count_cost:
            self.charge_broadcast(int(flat.size), CATEGORY_MODEL)
        alive = self.alive_mask
        if alive is None or alive.all():
            self._param_matrix[...] = flat
        else:
            # Dead workers are unreachable: their rows stay frozen and they
            # pull the current model when they rejoin.
            self._param_matrix[alive] = flat
        if count_cost:
            self._maybe_corrupt(self._receiving_rows())
        if self._compression is not None:
            self._compression.set_reference(flat)

    def broadcast_buffers(self, flat: np.ndarray) -> None:
        """Set every worker's non-trainable buffers to ``flat`` (free of charge)."""
        flat = np.asarray(flat, dtype=self.dtype)
        if flat.shape != (self._buffer_matrix.shape[1],):
            raise ShapeError(
                f"expected a flat buffer vector of shape ({self._buffer_matrix.shape[1]},), "
                f"got {flat.shape}"
            )
        self._buffer_matrix[...] = flat

    # -- aggregation weights (population plane) ----------------------------------

    @property
    def aggregation_weights(self) -> Optional[np.ndarray]:
        """Per-slot aggregation weights (``None`` = exact uniform collectives).

        Set by the population plane when cohorts carry data-size weights (or a
        partial cohort zero-weights its unbound slots).  ``None`` keeps every
        collective on the legacy ``mean(axis=0)`` path, bit-identical to a
        cluster without a population attached.
        """
        return self._aggregation_weights

    def set_aggregation_weights(self, weights: Optional[np.ndarray]) -> None:
        """Install per-slot aggregation weights (``None`` restores exact means)."""
        if weights is None:
            self._aggregation_weights = None
            return
        from repro.distributed.weights import validate_aggregation_weights

        self._aggregation_weights = validate_aggregation_weights(
            weights, self.num_workers
        )

    def normalized_aggregation_weights(
        self, mask: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Weights renormalized over ``mask`` (``None`` when no weights are set).

        Returns a float64 vector summing to one over the masked-in slots, or
        ``None`` when the cluster runs the exact uniform path.  Falls back to
        ``None`` (uniform over the mask) if masking zeroes every weight.
        """
        from repro.distributed.weights import renormalized_weights

        return renormalized_weights(self._aggregation_weights, mask)

    # -- model synchronization ---------------------------------------------------

    def _mean_rows(self, matrix: np.ndarray, alive: Optional[np.ndarray]) -> np.ndarray:
        """Row average honouring liveness and (if set) aggregation weights.

        With ``aggregation_weights is None`` this is byte-for-byte the legacy
        path: plain ``mean(axis=0)``, renormalized over survivors under churn.
        """
        normalized = self.normalized_aggregation_weights(alive)
        if normalized is not None:
            return normalized.astype(matrix.dtype) @ matrix
        if alive is None or alive.all():
            return matrix.mean(axis=0)
        return matrix[alive].mean(axis=0)

    def average_parameters(self) -> np.ndarray:
        """The global model ``w̄`` (average of worker parameters); free of charge.

        This is a *bookkeeping* average used for evaluation — it does not
        correspond to any network traffic in the simulated system.  Under
        worker churn the average renormalizes over the surviving workers:
        dead rows hold frozen, stale models and do not vote.  With population
        aggregation weights installed the average is the weighted mean.
        """
        return self._mean_rows(self._param_matrix, self.alive_mask)

    def average_buffers(self) -> np.ndarray:
        """Average of the workers' non-trainable buffers (batch-norm statistics).

        Renormalized over survivors under churn, like :meth:`average_parameters`.
        """
        return self._mean_rows(self._buffer_matrix, self.alive_mask)

    def synchronize(self, include_buffers: bool = True) -> np.ndarray:
        """Full model synchronization via AllReduce (Algorithm 1, line 9).

        Averages the worker parameters (and, by default, the batch-norm
        buffers) with one row-wise reduction over the parameter matrix,
        broadcasts the average back into every row, charges the corresponding
        AllReduce traffic, and returns the new global parameters.

        With compression installed the exchange is lossy instead of exact:
        every worker uploads its compressed drift from the last shared model,
        the averaged reconstruction becomes the new global model, and the
        fabric is charged the compressed payload (see
        :class:`~repro.compression.state.ClusterCompression`).  Every
        strategy that synchronizes through the cluster — FDA's triggered
        syncs, BSP, Local-SGD — therefore compresses uniformly.
        """
        if self._compression is not None:
            return self._compression.synchronize(self, include_buffers=include_buffers)
        average = self.average_parameters()
        self.charge_allreduce(int(average.size), CATEGORY_MODEL)
        alive = self.alive_mask
        if alive is None or alive.all():
            self._param_matrix[...] = average
        else:
            self._param_matrix[alive] = average
        if include_buffers and self._buffer_matrix.shape[1]:
            buffer_average = self.average_buffers()
            self.charge_allreduce(int(buffer_average.size), CATEGORY_MODEL)
            if alive is None or alive.all():
                self._buffer_matrix[...] = buffer_average
            else:
                self._buffer_matrix[alive] = buffer_average
        self._maybe_corrupt(self._receiving_rows())
        self.synchronization_count += 1
        return average

    def gather_models(
        self, reference: Optional[np.ndarray] = None, category: str = CATEGORY_MODEL
    ) -> np.ndarray:
        """One client→server model upload round, charged through the fabric.

        The server-based strategies (FedOpt, FedProx, SCAFFOLD) aggregate the
        clients' models once per round; this is the single place that prices
        that upload.  Without compression it charges one full-model AllReduce
        and returns the live ``(K, d)`` parameter matrix — exactly the
        pre-compression accounting and aggregation, byte-for-byte.  With
        compression it charges the compressed payload and returns the models
        *as the server reconstructs them*: ``reference`` (default: the last
        broadcast global model) plus each worker's lossy drift.
        """
        if self._compression is None:
            self.charge_allreduce(self.model_dimension, category)
            return self._param_matrix
        return self._compression.gather_models(self, reference=reference, category=category)

    # -- the fault plane ---------------------------------------------------------

    @property
    def alive_mask(self) -> Optional[np.ndarray]:
        """Boolean liveness mask when worker churn is active, else ``None``.

        ``None`` means every worker is structurally alive (no fault plan, or a
        plan without crashes) — the hot paths below use it to skip masking
        entirely, keeping the fault-free trajectory byte-identical.
        """
        if self.faults is None or not self.faults.churn_active:
            return None
        return self.faults.alive

    def _process_faults(self) -> None:
        """Advance churn by one round: crash draws, due rejoins, recoveries.

        Called at the top of every ``step_all``/``epoch_all`` round.  A
        crashed worker's ``(K, d)`` rows are frozen from here on (engines
        exclude it from the active mask); its un-synced local progress is
        lost, modelled by resetting its optimizer state on rejoin.  A
        rejoining worker pays a real point-to-point model download from the
        coordinator before it may step again.
        """
        if self.faults is None:
            return
        crashed, rejoined = self.faults.advance_round(self.timeline.now)
        for worker_id in crashed:
            self.timeline.record_churn("crash", worker_id)
        for worker_id in rejoined:
            self._rejoin_worker(worker_id)
            self.timeline.record_churn("rejoin", worker_id)

    def _rejoin_worker(self, worker_id: int) -> None:
        """Bring a recovered worker back: download the current model, cold-start.

        The worker pulls the survivors' average model over its actual
        coordinator path (charged as a point-to-point transfer on the fabric
        ledgers) and restarts with zeroed optimizer moments and step count —
        whatever momentum it had accumulated before the crash died with it.
        State arrays are zeroed *in place* so the stacked optimizer's row
        bindings (batched engine) stay intact.
        """
        mask = self.faults.alive.copy()
        mask[worker_id] = False
        if mask.any():
            model = self._param_matrix[mask].mean(axis=0)
            self._param_matrix[worker_id] = model
            if self._buffer_matrix.shape[1]:
                self._buffer_matrix[worker_id] = self._buffer_matrix[mask].mean(axis=0)
        charge = self.charge_upload(self.model_dimension, CATEGORY_MODEL, worker_id)
        self.faults.log.note_recovery_cost(worker_id, charge.num_bytes, charge.seconds)
        optimizer = self.workers[worker_id].optimizer
        for attr in ("_velocity", "_m", "_v"):
            value = getattr(optimizer, attr, None)
            if isinstance(value, np.ndarray):
                value[...] = 0.0
        optimizer.step_count = 0

    @property
    def population_mask(self) -> Optional[np.ndarray]:
        """Boolean mask of slots bound to cohort members (``None`` = all bound)."""
        return self._population_mask

    def set_population_mask(self, mask: Optional[np.ndarray]) -> None:
        """Install a partial-cohort participation mask (``None`` = all slots bound)."""
        if mask is None:
            self._population_mask = None
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_workers,):
            raise ShapeError(
                f"population mask must have shape ({self.num_workers},), got {mask.shape}"
            )
        if not mask.any():
            raise ConfigurationError("population mask must keep at least one slot bound")
        self._population_mask = mask

    def _faulted_active(self, active: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Fold cohort binding and liveness into a mask after processing churn."""
        self._process_faults()
        population = self._population_mask
        if population is not None:
            active = population.copy() if active is None else active & population
        alive = self.alive_mask
        if alive is None or alive.all():
            return active
        if active is None:
            return alive.copy()
        return active & alive

    def _maybe_spike(self, round_seconds: float) -> None:
        """Draw and apply this round's transient straggler spike (if enabled)."""
        if self.faults is None or not self.faults.straggler_active:
            return
        extra = self.faults.sample_straggler_spike(self.timeline.now, round_seconds)
        if extra > 0.0:
            self.timeline.stall(extra)

    def _maybe_corrupt(self, rows: np.ndarray) -> None:
        """Maybe corrupt the model payload received by ``rows`` (in place)."""
        if self.faults is not None and self.faults.corruption_active and rows.size:
            self.faults.corrupt_rows(self._param_matrix, rows)

    def _receiving_rows(self) -> np.ndarray:
        """Row indices that receive model broadcasts (alive workers only)."""
        alive = self.alive_mask
        if alive is None:
            return np.arange(self.num_workers, dtype=np.intp)
        return np.flatnonzero(alive)

    # -- training helpers ----------------------------------------------------------

    def step_all(self, active: Optional[np.ndarray] = None) -> float:
        """Run one local mini-batch step on every (participating) worker.

        The step is delegated to the execution engine (one per-worker loop on
        the sequential engine, one vectorized pass on the batched engine).
        ``active`` is an optional boolean mask for partial participation
        (timeline dropout); absent, every worker steps.  Both engines honour
        the mask identically: inactive workers neither compute nor consume
        RNG draws, and on the batched engine their rows of the ``(K, d)``
        matrices stay bit-untouched.  The timeline advances by the slowest
        participating worker's step duration.  Returns the mean loss over the
        workers that stepped.

        With a fault plan attached, churn is processed first (crashes freeze
        rows; due rejoins pay their model download) and the effective mask is
        ``active ∧ alive``; a round in which no live worker participates
        performs no compute and returns a loss of ``0.0``.
        """
        active = self._faulted_active(active)
        if active is not None and not active.any():
            return 0.0
        mean_loss = self._engine.step_all(active=active)
        elapsed = self.timeline.advance_round(1, active=active)
        self._maybe_spike(elapsed)
        return mean_loss

    def epoch_all(self) -> float:
        """Run one local epoch on every (alive) worker; returns the mean loss."""
        active = self._faulted_active(None)
        if active is None:
            mean_loss = self._engine.epoch_all()
            participants = self.workers
        else:
            if not active.any():
                return 0.0
            rows = [int(i) for i in np.flatnonzero(active)]
            losses = [self._engine.epoch_worker(row) for row in rows]
            mean_loss = float(np.mean(losses))
            participants = [self.workers[row] for row in rows]
        elapsed = self.timeline.advance_round(
            max(w.batches_per_epoch for w in participants)
        )
        self._maybe_spike(elapsed)
        return mean_loss

    # -- evaluation -------------------------------------------------------------------

    def evaluate_global(self, dataset: Dataset, batch_size: int = 256) -> Tuple[float, float]:
        """Evaluate the *global* (average) model on ``dataset``.

        The evaluation model receives the average parameters and the average
        batch-norm buffers; worker state is untouched and no communication is
        charged (evaluation is an observer operation of the simulation).
        """
        self._evaluation_model.set_parameters(self.average_parameters())
        if self._evaluation_model.num_buffers:
            self._evaluation_model.set_buffers(self.average_buffers())
        return self._evaluation_model.evaluate(
            dataset.x, dataset.y, loss=self.loss, batch_size=batch_size
        )

    def evaluate_worker(self, worker_index: int, dataset: Dataset, batch_size: int = 256) -> Tuple[float, float]:
        """Evaluate a single worker's local model on ``dataset``."""
        if not 0 <= worker_index < self.num_workers:
            raise CommunicationError(
                f"worker_index must lie in [0, {self.num_workers}), got {worker_index}"
            )
        worker = self.workers[worker_index]
        return worker.model.evaluate(dataset.x, dataset.y, loss=self.loss, batch_size=batch_size)

    def model_variance(self) -> float:
        """The exact model variance Var(w_t) across workers (Equation 2)."""
        average = self._param_matrix.mean(axis=0)
        deviations = self._param_matrix - average
        return float(np.mean(np.sum(deviations * deviations, axis=1)))

    def __repr__(self) -> str:
        return (
            f"SimulatedCluster(K={self.num_workers}, d={self.model_dimension}, "
            f"topology={self.fabric.topology.name!r}, execution={self.execution!r}, "
            f"compression={self.compression_label!r}, "
            f"syncs={self.synchronization_count}, "
            f"bytes={self.total_bytes}, t={self.virtual_time:.1f})"
        )
