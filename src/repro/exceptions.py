"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still distinguishing configuration problems from
runtime training failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied by the caller.

    Raised eagerly, at construction time, so that a misconfigured experiment
    fails before any (potentially long) training work starts.
    """


class ShapeError(ReproError):
    """A tensor had an unexpected shape.

    Raised by :mod:`repro.nn` layers when the input rank or channel count does
    not match what the layer was built for.
    """


class ModelNotBuiltError(ReproError):
    """An operation required a built model but the model has no parameters yet.

    :class:`repro.nn.model.Sequential` builds its layers lazily on the first
    forward pass (or explicitly via ``build``); requesting the flat parameter
    vector before that point raises this error.
    """


class DataError(ReproError):
    """A dataset or partitioning request was invalid.

    For example: asking for more workers than samples, a Non-IID fraction
    outside ``[0, 1]``, or a label that does not exist in the dataset.
    """


class CommunicationError(ReproError):
    """A simulated collective operation was used incorrectly.

    For example: an AllReduce over vectors of mismatched dimensions, or a
    worker index outside the cluster.
    """


class TrainingError(ReproError):
    """Training could not proceed (e.g. loss became non-finite)."""


class ExperimentError(ReproError):
    """An experiment definition or run request was inconsistent."""
