"""repro — a reproduction of "Communication-Efficient Distributed Deep Learning
via Federated Dynamic Averaging" (EDBT 2025).

The package is organised bottom-up:

* :mod:`repro.nn` — a pure-NumPy neural-network substrate (layers, models,
  losses, the paper's architectures in miniature);
* :mod:`repro.optim` — local optimizers (SGD/Nesterov, Adam, AdamW) and the
  FedOpt server optimizers (FedAvg, FedAvgM, FedAdam, ...);
* :mod:`repro.sketch` — AMS sketches with the M2 second-moment estimator;
* :mod:`repro.data` — synthetic datasets and federated partitioning;
* :mod:`repro.distributed` — the simulated cluster, AllReduce, and
  communication-cost accounting;
* :mod:`repro.compression` — collective-level payload compression: row-wise
  ``(K, d)`` kernels, error-feedback memory, and true compressed-byte
  accounting, shared by every strategy;
* :mod:`repro.core` — the FDA algorithm itself (variance monitors, the
  Algorithm-1 trainer, Θ selection);
* :mod:`repro.strategies` — FDA and the baselines behind a uniform interface;
* :mod:`repro.experiments` — the run-until-accuracy-target harness, sweeps,
  and the registry mapping every paper figure/table to a configuration.

Quickstart::

    from repro import (
        FDAStrategy, SynchronousStrategy, TrainingRun, build_cluster,
    )
    from repro.experiments.registry import lenet_mnist_workload

    workload = lenet_mnist_workload(num_workers=5)
    cluster, test_set = build_cluster(workload)
    run = TrainingRun(accuracy_target=0.9, max_steps=300)
    result = run.execute(FDAStrategy(threshold=8.0, variant="linear"),
                         cluster, test_set)
    print(result.summary())
"""

from repro.compression import (
    CompressionConfig,
    Compressor,
    QuantizationCompressor,
    TopKCompressor,
    get_compression,
    make_compressor,
)
from repro.core import (
    ExactMonitor,
    FDATrainer,
    LinearMonitor,
    SketchMonitor,
    DynamicThetaController,
    StragglerProfile,
    Timeline,
    fit_theta_slope,
    make_monitor,
    model_variance,
    theta_guideline,
    variance_from_drifts,
)
from repro.distributed import (
    CommunicationCostModel,
    CommunicationTracker,
    Fabric,
    GossipTopology,
    HierarchicalTopology,
    NetworkModel,
    RingTopology,
    SimulatedCluster,
    StarTopology,
    Topology,
    Worker,
    get_network,
    get_topology,
)
from repro.experiments import (
    RunResult,
    TrainingRun,
    WorkloadConfig,
    build_cluster,
    make_optimizer,
)
from repro.sketch import AmsSketch
from repro.strategies import (
    FDAStrategy,
    FedOptStrategy,
    LocalSGDStrategy,
    SynchronousStrategy,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "FDATrainer",
    "SketchMonitor",
    "LinearMonitor",
    "ExactMonitor",
    "make_monitor",
    "model_variance",
    "variance_from_drifts",
    "theta_guideline",
    "fit_theta_slope",
    "DynamicThetaController",
    # distributed
    "SimulatedCluster",
    "Worker",
    "CommunicationTracker",
    "CommunicationCostModel",
    "NetworkModel",
    "get_network",
    # the communication fabric
    "Fabric",
    "Topology",
    "StarTopology",
    "RingTopology",
    "HierarchicalTopology",
    "GossipTopology",
    "get_topology",
    # virtual time
    "Timeline",
    "StragglerProfile",
    # compression
    "CompressionConfig",
    "Compressor",
    "QuantizationCompressor",
    "TopKCompressor",
    "get_compression",
    "make_compressor",
    # sketches
    "AmsSketch",
    # strategies
    "FDAStrategy",
    "SynchronousStrategy",
    "LocalSGDStrategy",
    "FedOptStrategy",
    # experiments
    "WorkloadConfig",
    "build_cluster",
    "make_optimizer",
    "TrainingRun",
    "RunResult",
]
