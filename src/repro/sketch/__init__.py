"""AMS sketches for communication-efficient second-moment estimation.

SketchFDA transmits an AMS sketch of each worker's model drift instead of the
drift itself.  The sketch is a linear transformation, so the AllReduce of the
workers' sketches equals the sketch of the average drift, and its ``M2``
estimator recovers the squared L2 norm of that average drift within a
``(1 ± ε)`` factor with probability ``1 − δ``.
"""

from repro.sketch.hashing import FourWiseHash
from repro.sketch.ams import AmsSketch, estimate_l2_squared

__all__ = ["FourWiseHash", "AmsSketch", "estimate_l2_squared"]
