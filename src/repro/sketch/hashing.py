"""Four-wise independent hashing for AMS sketches.

The AMS estimator requires, per sketch row, a bucket hash ``h: [d] → [width]``
and a sign hash ``s: [d] → {−1, +1}`` drawn from a 4-wise independent family.
We use degree-3 polynomials over the Mersenne prime ``p = 2^31 − 1`` evaluated
with Horner's rule; keeping every intermediate product below ``2^62`` lets the
whole evaluation stay vectorized in ``uint64`` NumPy arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

MERSENNE_PRIME = np.uint64((1 << 31) - 1)


class FourWiseHash:
    """A family of 4-wise independent hash functions over ``[0, p)``.

    One instance holds ``rows`` independent degree-3 polynomials; evaluating
    the instance on an index array returns a ``(rows, len(indices))`` matrix of
    hash values in ``[0, p)``.
    """

    def __init__(self, rows: int, seed: int = 0) -> None:
        if rows <= 0:
            raise ConfigurationError(f"rows must be positive, got {rows}")
        rng = np.random.default_rng(seed)
        prime = int(MERSENNE_PRIME)
        # Degree-3 polynomial coefficients: rows x 4, leading coefficient non-zero.
        self.coefficients = rng.integers(1, prime, size=(rows, 4), dtype=np.uint64)
        self.rows = int(rows)

    def __call__(self, indices: np.ndarray) -> np.ndarray:
        """Evaluate every polynomial at ``indices`` (mod p)."""
        indices = np.asarray(indices, dtype=np.uint64) % MERSENNE_PRIME
        values = np.zeros((self.rows, indices.shape[0]), dtype=np.uint64)
        for row in range(self.rows):
            a3, a2, a1, a0 = self.coefficients[row]
            acc = np.full(indices.shape, a3, dtype=np.uint64)
            for coefficient in (a2, a1, a0):
                acc = (acc * indices) % MERSENNE_PRIME
                acc = (acc + coefficient) % MERSENNE_PRIME
            values[row] = acc
        return values

    def buckets(self, indices: np.ndarray, width: int) -> np.ndarray:
        """Map indices to sketch columns in ``[0, width)``."""
        if width <= 0:
            raise ConfigurationError(f"width must be positive, got {width}")
        return (self(indices) % np.uint64(width)).astype(np.int64)

    def signs(self, indices: np.ndarray) -> np.ndarray:
        """Map indices to ±1 signs."""
        return np.where((self(indices) & np.uint64(1)) == 0, 1.0, -1.0)
