"""The AMS sketch (Alon–Matias–Szegedy, "fast AMS" / count-sketch layout).

An AMS sketch of a vector ``v ∈ R^d`` is an ``l × m`` matrix (``l`` rows =
depth, ``m`` columns = width).  Row ``i`` scatters every coordinate ``c`` into
bucket ``h_i(c)`` with sign ``s_i(c)``:

    sk(v)[i, h_i(c)] += s_i(c) · v[c]

The squared L2 norm of ``v`` is estimated by the median over rows of the
squared row norms (the ``M2`` estimator used in the paper, Section 3.1):

    M2(sk(v)) = median_i ‖sk(v)[i]‖²

With ``m = O(1/ε²)`` and ``l = O(log 1/δ)`` the estimate lies within
``(1 ± ε)‖v‖²`` with probability at least ``1 − δ``.  Because the transform is
linear for a fixed hash family, the average of the workers' sketches equals
the sketch of the average drift — the property Theorem 3.1 relies on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import CommunicationError, ConfigurationError, ShapeError
from repro.sketch.hashing import FourWiseHash

#: Sketch geometry recommended by the paper (Section 3.3): epsilon ~ 6%, delta ~ 5%.
DEFAULT_DEPTH = 5
DEFAULT_WIDTH = 250


def estimate_l2_squared(sketch_matrix: np.ndarray) -> float:
    """The ``M2`` estimator: median over rows of the squared row norms."""
    sketch_matrix = np.asarray(sketch_matrix, dtype=np.float64)
    if sketch_matrix.ndim != 2:
        raise ShapeError(f"a sketch must be a 2-D matrix, got shape {sketch_matrix.shape}")
    row_norms = np.sum(sketch_matrix * sketch_matrix, axis=1)
    return float(np.median(row_norms))


class AmsSketch:
    """AMS sketch operator bound to a fixed hash family (and therefore linear).

    All workers participating in SketchFDA must share the same ``seed`` (and
    geometry) so their sketches live in the same basis; the
    :class:`~repro.core.monitor.SketchMonitor` takes care of this.
    """

    def __init__(
        self,
        depth: int = DEFAULT_DEPTH,
        width: int = DEFAULT_WIDTH,
        seed: int = 0,
        dimension: Optional[int] = None,
    ) -> None:
        if depth <= 0:
            raise ConfigurationError(f"depth must be positive, got {depth}")
        if width <= 0:
            raise ConfigurationError(f"width must be positive, got {width}")
        self.depth = int(depth)
        self.width = int(width)
        self.seed = int(seed)
        self._bucket_hash = FourWiseHash(self.depth, seed=seed * 2 + 1)
        self._sign_hash = FourWiseHash(self.depth, seed=seed * 2 + 2)
        self._dimension: Optional[int] = None
        self._buckets: Optional[np.ndarray] = None
        self._signs: Optional[np.ndarray] = None
        if dimension is not None:
            self._prepare(dimension)

    # -- hash table preparation ----------------------------------------------

    def _prepare(self, dimension: int) -> None:
        """Precompute bucket indices and signs for vectors of length ``dimension``."""
        if dimension <= 0:
            raise ConfigurationError(f"dimension must be positive, got {dimension}")
        indices = np.arange(dimension, dtype=np.uint64)
        self._buckets = self._bucket_hash.buckets(indices, self.width)
        self._signs = self._sign_hash.signs(indices)
        self._dimension = int(dimension)

    @property
    def dimension(self) -> Optional[int]:
        """The vector length the hash tables are currently prepared for."""
        return self._dimension

    @property
    def shape(self) -> tuple:
        """Sketch matrix shape ``(depth, width)``."""
        return (self.depth, self.width)

    @property
    def size_bytes(self) -> int:
        """Size of one sketch in bytes, assuming float32 transmission (paper: l*m*4)."""
        return self.depth * self.width * 4

    @property
    def epsilon(self) -> float:
        """Nominal relative error of the M2 estimate (ε ≈ sqrt(8/width))."""
        return float(np.sqrt(8.0 / self.width))

    @property
    def delta(self) -> float:
        """Nominal failure probability of the M2 estimate (δ ≈ 2^(−depth/2))."""
        return float(2.0 ** (-self.depth / 2.0))

    # -- sketching -------------------------------------------------------------

    def sketch(self, vector: np.ndarray) -> np.ndarray:
        """Return the ``(depth, width)`` AMS sketch of ``vector``."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise ShapeError(f"can only sketch 1-D vectors, got shape {vector.shape}")
        if self._dimension != vector.shape[0]:
            self._prepare(vector.shape[0])
        result = np.zeros((self.depth, self.width), dtype=np.float64)
        for row in range(self.depth):
            weighted = self._signs[row] * vector
            result[row] = np.bincount(
                self._buckets[row], weights=weighted, minlength=self.width
            )
        return result

    def sketch_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Sketch every row of a ``(K, d)`` matrix at once; returns ``(K, depth, width)``.

        The batched form of :meth:`sketch` used by the batched execution
        engine: for each depth row, the ``K`` per-worker scatters become one
        flat ``bincount`` over worker-offset bucket indices (worker ``k``'s
        coordinates land in ``[k·width, (k+1)·width)``).  Row ``k`` of the
        result equals ``sketch(matrix[k])`` up to summation order inside a
        bucket (``bincount`` accumulates coordinates in index order either
        way, so in practice the values coincide bitwise).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ShapeError(f"can only sketch a (K, d) matrix, got shape {matrix.shape}")
        num_rows, dimension = matrix.shape
        if self._dimension != dimension:
            self._prepare(dimension)
        worker_offsets = np.arange(num_rows, dtype=np.int64)[:, None] * self.width
        result = np.empty((num_rows, self.depth, self.width), dtype=np.float64)
        for row in range(self.depth):
            weighted = self._signs[row] * matrix
            # Flat bincount target of every (worker, coordinate) pair; built
            # per call — a transient (K, d) index array is far cheaper than
            # holding depth copies of it on the operator.
            offsets = worker_offsets + self._buckets[row][None, :]
            counts = np.bincount(
                offsets.reshape(-1),
                weights=weighted.reshape(-1),
                minlength=num_rows * self.width,
            )
            result[:, row, :] = counts.reshape(num_rows, self.width)
        return result

    def estimate_l2_squared(self, sketch_matrix: np.ndarray) -> float:
        """Estimate ``‖v‖²`` from a sketch produced by this operator (or a linear mix)."""
        sketch_matrix = np.asarray(sketch_matrix, dtype=np.float64)
        if sketch_matrix.shape != (self.depth, self.width):
            raise CommunicationError(
                f"sketch of shape {sketch_matrix.shape} does not match this operator's "
                f"geometry {(self.depth, self.width)}"
            )
        return estimate_l2_squared(sketch_matrix)

    def estimate_dot(self, sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
        """Estimate the inner product ⟨a, b⟩ from two sketches (median of row dot products)."""
        sketch_a = np.asarray(sketch_a, dtype=np.float64)
        sketch_b = np.asarray(sketch_b, dtype=np.float64)
        if sketch_a.shape != (self.depth, self.width) or sketch_b.shape != (self.depth, self.width):
            raise CommunicationError(
                "both sketches must match this operator's geometry "
                f"{(self.depth, self.width)}"
            )
        return float(np.median(np.sum(sketch_a * sketch_b, axis=1)))

    def compatible_with(self, other: "AmsSketch") -> bool:
        """True when two operators share geometry and hash seeds (sketches can be mixed)."""
        return (
            self.depth == other.depth
            and self.width == other.width
            and self.seed == other.seed
        )

    def __repr__(self) -> str:
        return (
            f"AmsSketch(depth={self.depth}, width={self.width}, seed={self.seed}, "
            f"epsilon~{self.epsilon:.3f}, delta~{self.delta:.3f})"
        )
