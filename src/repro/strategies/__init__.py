"""Distributed training strategies.

A strategy drives a :class:`~repro.distributed.cluster.SimulatedCluster`
through its synchronization protocol.  The paper compares five algorithms —
SketchFDA, LinearFDA, Synchronous (BSP), FedAdam and FedAvgM — and this
subpackage implements all of them plus Local-SGD with a fixed period,
FedProx/SCAFFOLD drift control, and thin aliases over the collective-level
compression subsystem (:mod:`repro.compression`) — the orthogonal technique
discussed in Section 2, which every strategy here picks up uniformly when
the cluster carries a compression config.
"""

from repro.strategies.base import Strategy, StrategyRound
from repro.strategies.synchronous import SynchronousStrategy
from repro.strategies.local_sgd import (
    LocalSGDStrategy,
    decreasing_tau,
    fixed_tau,
    increasing_tau,
    post_local_sgd_tau,
)
from repro.strategies.fedopt import FedOptStrategy
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.drift_control import FedProxStrategy, ScaffoldStrategy
from repro.strategies.compression import (
    CompressedSynchronizer,
    CompressedSynchronousStrategy,
    CompressionConfig,
    Compressor,
    QuantizationCompressor,
    RandomKCompressor,
    SignCompressor,
    TopKCompressor,
)

__all__ = [
    "Strategy",
    "StrategyRound",
    "SynchronousStrategy",
    "LocalSGDStrategy",
    "fixed_tau",
    "increasing_tau",
    "decreasing_tau",
    "post_local_sgd_tau",
    "FedOptStrategy",
    "FDAStrategy",
    "FedProxStrategy",
    "ScaffoldStrategy",
    "Compressor",
    "CompressionConfig",
    "QuantizationCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "SignCompressor",
    "CompressedSynchronizer",
    "CompressedSynchronousStrategy",
]
