"""FDA as a strategy: SketchFDA and LinearFDA.

Thin adapter that exposes the :class:`~repro.core.fda.FDATrainer` through the
uniform :class:`~repro.strategies.base.Strategy` interface used by the
experiment harness.  One round is one FDA step (local step + state AllReduce +
conditional synchronization).
"""

from __future__ import annotations

from typing import Optional

from repro.compression import Compressor
from repro.core.fda import FDATrainer
from repro.core.monitor import VarianceMonitor, make_monitor
from repro.core.theta import DynamicThetaController
from repro.distributed.cluster import SimulatedCluster
from repro.exceptions import ConfigurationError
from repro.strategies.base import Strategy


class FDAStrategy(Strategy):
    """Federated Dynamic Averaging with a chosen variance monitor.

    ``variant`` selects the monitor: ``"linear"`` (LinearFDA), ``"sketch"``
    (SketchFDA) or ``"exact"`` (the ablation monitor).  ``threshold`` is the
    paper's Θ.  An optional :class:`DynamicThetaController` enables the
    future-work bandwidth-targeting extension, and an optional ``compressor``
    installs collective-level compression on the attached cluster so every
    triggered synchronization exchanges compressed model deltas instead of
    full-precision parameters (Section 2: FDA is orthogonal to compression).
    A cluster whose workload already configured compression
    (``WorkloadConfig.compression``) needs no ``compressor`` here — FDA's
    syncs go through ``cluster.synchronize`` and compress automatically.
    Note one deliberate change from the pre-subsystem wrapper: compressed
    triggered syncs now also average (and charge) non-trainable buffers,
    exactly like uncompressed FDA with ``sync_buffers=True`` — the legacy
    plug-in synchronizer silently skipped batch-norm statistics.

    Partial participation comes from the cluster's timeline: the underlying
    :class:`FDATrainer` samples the per-step mask and only active workers
    compute and report states.  This works on either execution engine — the
    batched engine runs the active rows as one masked vectorized pass.
    """

    name = "FDA"

    def __init__(
        self,
        threshold: float,
        variant: str = "linear",
        sketch_depth: int = 5,
        sketch_width: int = 250,
        seed: int = 0,
        theta_controller: Optional[DynamicThetaController] = None,
        monitor: Optional[VarianceMonitor] = None,
        compressor: Optional[Compressor] = None,
    ) -> None:
        super().__init__()
        if threshold < 0:
            raise ConfigurationError(f"threshold (Theta) must be non-negative, got {threshold}")
        self.threshold = float(threshold)
        self.variant = variant
        self.sketch_depth = int(sketch_depth)
        self.sketch_width = int(sketch_width)
        self.seed = int(seed)
        self.theta_controller = theta_controller
        self._explicit_monitor = monitor
        self.compressor = compressor
        self._trainer: Optional[FDATrainer] = None
        self.name = {"linear": "LinearFDA", "sketch": "SketchFDA", "exact": "ExactFDA"}.get(
            variant, f"FDA[{variant}]"
        )
        if compressor is not None:
            self.name = f"{self.name}+{compressor.name}"

    def _setup(self, cluster: SimulatedCluster) -> None:
        monitor = self._explicit_monitor or make_monitor(
            self.variant,
            cluster.model_dimension,
            sketch_depth=self.sketch_depth,
            sketch_width=self.sketch_width,
            seed=self.seed,
        )
        if self.compressor is not None:
            # Strategy-level compressor: install it as the cluster's
            # collective-level compression; the trainer's default
            # cluster.synchronize path then exchanges compressed drifts.
            cluster.enable_compression(self.compressor)
        self._trainer = FDATrainer(
            cluster,
            monitor,
            self.threshold,
            theta_controller=self.theta_controller,
        )

    @property
    def trainer(self) -> FDATrainer:
        """The underlying FDA trainer (available after :meth:`attach`)."""
        if self._trainer is None:
            raise ConfigurationError("FDAStrategy is not attached to a cluster yet")
        return self._trainer

    @property
    def steps_per_round(self) -> int:
        return 1

    def _run_round(self, cluster: SimulatedCluster) -> float:
        del cluster  # the trainer already holds the cluster
        result = self._trainer.step()
        return result.mean_loss

    def checkpoint_state(self) -> dict:
        """Protocol state for bit-exact restore: references, counters, monitor.

        Captures everything :class:`FDATrainer` mutates while training — the
        sync references ``w_{t0}``/``w_{t-1}``, the step/sync counters, the
        (possibly dynamically adjusted) threshold, churn-retained stale
        states — plus the linear monitor's analysis direction ξ, which
        rotates on every synchronization.  The per-step ``history`` list is
        deliberately not captured: it is diagnostic output, not protocol
        state, and the run harness keeps its own log.
        """
        import numpy as np

        from repro.core.monitor import LinearMonitor
        from repro.core.state import state_to_dict

        state = super().checkpoint_state()
        trainer = self.trainer
        payload = {
            "step_count": int(trainer.step_count),
            "synchronization_count": int(trainer.synchronization_count),
            "threshold": float(trainer.threshold),
            "last_estimate": trainer.last_estimate,
            "reference": np.array(trainer._reference),
            "previous_reference": np.array(trainer._previous_reference),
        }
        if trainer._stale_states is not None:
            payload["stale_states"] = [
                state_to_dict(s) if s is not None else None
                for s in trainer._stale_states
            ]
        if isinstance(trainer.monitor, LinearMonitor):
            payload["monitor_direction"] = np.array(trainer.monitor.direction)
        if trainer.theta_controller is not None:
            payload["theta_controller"] = {
                "recent_bytes": [float(b) for b in trainer.theta_controller._recent_bytes],
                "adjustment_count": int(trainer.theta_controller.adjustment_count),
            }
        state["trainer"] = payload
        return state

    def restore_state(self, state: dict) -> None:
        import numpy as np

        from repro.core.monitor import LinearMonitor
        from repro.core.state import state_from_dict

        super().restore_state(state)
        trainer = self.trainer
        payload = state["trainer"]
        trainer.step_count = int(payload["step_count"])
        trainer.synchronization_count = int(payload["synchronization_count"])
        trainer.threshold = float(payload["threshold"])
        last = payload.get("last_estimate")
        trainer.last_estimate = None if last is None else float(last)
        trainer._reference = np.asarray(payload["reference"], dtype=trainer.cluster.dtype)
        trainer._previous_reference = np.asarray(
            payload["previous_reference"], dtype=trainer.cluster.dtype
        )
        if "stale_states" in payload:
            trainer._stale_states = [
                state_from_dict(s) if s is not None else None
                for s in payload["stale_states"]
            ]
        if "monitor_direction" in payload and isinstance(trainer.monitor, LinearMonitor):
            trainer.monitor.direction = np.asarray(
                payload["monitor_direction"], dtype=np.float64
            )
        if "theta_controller" in payload and trainer.theta_controller is not None:
            controller_state = payload["theta_controller"]
            trainer.theta_controller._recent_bytes = list(controller_state["recent_bytes"])
            trainer.theta_controller.adjustment_count = int(
                controller_state["adjustment_count"]
            )

    @property
    def synchronization_count(self) -> int:
        """Number of model synchronizations triggered so far."""
        return self.trainer.synchronization_count

    @property
    def current_threshold(self) -> float:
        """The Θ currently in force (may differ from the initial one with dynamic Θ)."""
        return self.trainer.threshold
