"""The strategy interface.

A strategy owns the *protocol* (when to communicate and what), while the
cluster owns the *mechanics* (local steps, AllReduce, byte accounting).  The
experiment harness only needs two things from a strategy: run one protocol
round, and know how many in-parallel steps a round advances, so it can place
evaluation points consistently across algorithms with very different natural
round lengths (one step for Synchronous/FDA, a full local epoch for FedOpt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.distributed.cluster import SimulatedCluster
from repro.exceptions import ConfigurationError, ExperimentError


@dataclass(frozen=True)
class StrategyRound:
    """Observables of one protocol round."""

    mean_loss: float
    steps_advanced: int
    synchronized: bool
    communication_bytes: int
    virtual_seconds: float = 0.0


class Strategy:
    """Base class for all distributed training strategies."""

    #: Name used in experiment reports and figures.
    name = "strategy"

    #: Fabric topologies this protocol can run on.  Peer-to-peer collectives
    #: (AllReduce averaging) work on any layout; server-based protocols that
    #: need a central aggregator declare the subset they support and
    #: :meth:`attach` rejects a cluster whose fabric uses anything else.
    supported_topologies = ("star", "ring", "hierarchical", "gossip")

    def __init__(self) -> None:
        self._cluster: Optional[SimulatedCluster] = None
        self.rounds_completed = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, cluster: SimulatedCluster) -> "Strategy":
        """Bind the strategy to a cluster and perform protocol initialization."""
        topology_name = cluster.fabric.topology.name
        if topology_name not in self.supported_topologies:
            raise ConfigurationError(
                f"strategy {self.name!r} does not support the {topology_name!r} topology; "
                f"supported: {sorted(self.supported_topologies)}"
            )
        self._cluster = cluster
        # Every algorithm in the paper starts all workers from the same model.
        cluster.broadcast_parameters(cluster.workers[0].get_parameters())
        self._setup(cluster)
        return self

    @property
    def cluster(self) -> SimulatedCluster:
        """The attached cluster (raises if :meth:`attach` has not been called)."""
        if self._cluster is None:
            raise ExperimentError(
                f"strategy {self.name!r} is not attached to a cluster; call attach() first"
            )
        return self._cluster

    # -- protocol ----------------------------------------------------------------

    @property
    def steps_per_round(self) -> int:
        """In-parallel learning steps advanced by one :meth:`run_round` call."""
        raise NotImplementedError

    def run_round(self) -> StrategyRound:
        """Run one protocol round; subclasses implement :meth:`_run_round`."""
        cluster = self.cluster
        bytes_before = cluster.total_bytes
        steps_before = cluster.parallel_steps
        syncs_before = cluster.synchronization_count
        time_before = cluster.virtual_time
        mean_loss = self._run_round(cluster)
        self.rounds_completed += 1
        return StrategyRound(
            mean_loss=float(mean_loss),
            steps_advanced=cluster.parallel_steps - steps_before,
            synchronized=cluster.synchronization_count > syncs_before,
            communication_bytes=cluster.total_bytes - bytes_before,
            virtual_seconds=cluster.virtual_time - time_before,
        )

    def run_steps(self, num_steps: int) -> float:
        """Run whole rounds until at least ``num_steps`` steps have been advanced."""
        if num_steps < 0:
            raise ConfigurationError(f"num_steps must be non-negative, got {num_steps}")
        advanced = 0
        last_loss = 0.0
        while advanced < num_steps:
            result = self.run_round()
            advanced += result.steps_advanced
            last_loss = result.mean_loss
        return last_loss

    def finalize(self) -> None:
        """Hook called once at the end of training (default: no-op).

        Strategies whose workers may have diverged from the evaluated global
        model (e.g. FDA mid-round) can consolidate here.
        """

    # -- checkpointing --------------------------------------------------------------

    def checkpoint_state(self) -> dict:
        """JSON-safe protocol state for a :class:`~repro.faults.checkpoint.ClusterCheckpoint`.

        The base implementation captures the round counter; strategies with
        protocol-level mutable state (FDA's references and monitor direction,
        for instance) extend the dict.  Restoring the returned dict via
        :meth:`restore_state` on a freshly attached strategy must reproduce
        the protocol bit-exactly.
        """
        return {"rounds_completed": int(self.rounds_completed)}

    def restore_state(self, state: dict) -> None:
        """Restore protocol state captured by :meth:`checkpoint_state`."""
        self.rounds_completed = int(state["rounds_completed"])

    # -- fingerprinting -------------------------------------------------------------

    def spec(self) -> dict:
        """Canonical configuration of a *fresh* strategy instance.

        Used by the sweep executor to fingerprint the strategy into a run
        key: the class plus every public attribute (thresholds, variants,
        seeds, controllers — nested objects are canonicalized downstream).
        Mutable training state (``rounds_completed``, ``_``-prefixed
        attributes) is excluded; call this on an unattached instance.
        """
        config = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and key != "rounds_completed"
        }
        config["class"] = type(self).__name__
        config.setdefault("name", self.name)
        return config

    # -- subclass hooks -------------------------------------------------------------

    def _setup(self, cluster: SimulatedCluster) -> None:
        """Protocol-specific initialization after workers share the initial model."""

    def _run_round(self, cluster: SimulatedCluster) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rounds={self.rounds_completed})"
