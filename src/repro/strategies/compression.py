"""Thin strategy-level aliases over the :mod:`repro.compression` subsystem.

Compression used to live here as a strategy wrapper: two kernels plus a
``CompressedSynchronizer`` that only ``CompressedSynchronousStrategy`` (and
FDA, via a plug-in synchronizer) could reach.  It is now a first-class
collective-level subsystem — vectorized ``(K, d)`` kernels, error-feedback
memory, and fabric byte accounting all live in :mod:`repro.compression` and
are installed on the cluster itself (``SimulatedCluster(compression=...)`` /
``cluster.enable_compression``), so *every* strategy compresses uniformly.

This module keeps the original public names working:

* the kernel classes (:class:`Compressor`, :class:`QuantizationCompressor`,
  :class:`TopKCompressor`) and :class:`CompressedPayload` are re-exported;
* :class:`CompressedSynchronizer` installs a kernel on a cluster and
  delegates to the unified compressed ``cluster.synchronize`` path;
* :class:`CompressedSynchronousStrategy` is BSP on a cluster with
  compression enabled at ``attach`` — nothing more.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression import (
    CompressedPayload,
    CompressionConfig,
    Compressor,
    QuantizationCompressor,
    RandomKCompressor,
    SignCompressor,
    TopKCompressor,
)
from repro.distributed.cluster import SimulatedCluster
from repro.strategies.synchronous import SynchronousStrategy

__all__ = [
    "CompressedPayload",
    "CompressionConfig",
    "Compressor",
    "QuantizationCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "SignCompressor",
    "CompressedSynchronizer",
    "CompressedSynchronousStrategy",
]


class CompressedSynchronizer:
    """Model synchronization through compressed drift exchange (legacy alias).

    Installs ``compressor`` as the cluster's collective-level compression and
    forwards :meth:`synchronize` to the cluster's own compressed path, which
    performs exactly the historical exchange: workers transmit the compressed
    difference from the last shared global model, the averaged reconstruction
    is added to it and installed everywhere, and the traffic charged is the
    compressed payload instead of the full model dimension.
    """

    def __init__(self, cluster: SimulatedCluster, compressor: Compressor) -> None:
        self.cluster = cluster
        self.compressor = compressor
        self.state = cluster.enable_compression(compressor)
        # The historical synchronizer took its first reference at construction.
        self.state.set_reference(cluster.workers[0].get_parameters())

    def synchronize(self) -> np.ndarray:
        """Perform one compressed synchronization and return the new global model."""
        return self.cluster.synchronize(include_buffers=False)


class CompressedSynchronousStrategy(SynchronousStrategy):
    """BSP training whose per-step synchronization uses a compressor.

    A thin alias: ``_setup`` enables the given kernel on the attached cluster
    and the inherited BSP round (one local step, one ``cluster.synchronize``)
    does the rest through the unified compressed collective path.

    One deliberate behavior change from the pre-subsystem wrapper: like plain
    :class:`SynchronousStrategy`, synchronizations now also average (and
    charge) non-trainable buffers on models that have them — the historical
    wrapper silently skipped batch-norm statistics, leaving them divergent
    across workers.  Use :class:`CompressedSynchronizer` directly for the
    exact legacy no-buffer exchange.
    """

    name = "CompressedSynchronous"

    def __init__(self, compressor: Optional[Compressor] = None) -> None:
        super().__init__()
        self.compressor = compressor or QuantizationCompressor(8)
        self.name = f"Synchronous+{self.compressor.name}"

    def _setup(self, cluster: SimulatedCluster) -> None:
        cluster.enable_compression(self.compressor)
