"""Compression of synchronization traffic (quantization and sparsification).

Section 2 of the paper points out that FDA is orthogonal to message-size
reduction: any compression that works for BSP/Local-SGD also works for FDA
because FDA only changes *when* models are exchanged, not *what* is exchanged.
This module provides the two standard compressors (uniform quantization and
top-k sparsification), a :class:`CompressedSynchronizer` that replaces the
full-precision model AllReduce, and a compressed variant of the Synchronous
strategy used by the ablation benchmarks to verify the orthogonality claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributed.cluster import CATEGORY_MODEL, SimulatedCluster
from repro.exceptions import ConfigurationError
from repro.strategies.base import Strategy
from repro.strategies.synchronous import SynchronousStrategy


@dataclass(frozen=True)
class CompressedPayload:
    """A compressed vector plus the number of float32-equivalent elements it costs."""

    vector: np.ndarray
    transmitted_elements: int


class Compressor:
    """Base class: lossy-compress a flat vector and report its transmitted size."""

    name = "compressor"

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        """Return the reconstructed (lossy) vector and its transmission size."""
        raise NotImplementedError

    def transmitted_elements(self, dimension: int) -> int:
        """Float32-equivalent elements transmitted for a vector of length ``dimension``."""
        raise NotImplementedError


class QuantizationCompressor(Compressor):
    """Uniform stochastic-free quantization to ``bits`` bits per element.

    Values are scaled to the symmetric range of the vector's max magnitude and
    rounded to the nearest representable level.  The transmission cost counts
    ``bits/32`` float32-equivalents per element plus one scale value.
    """

    name = "quantization"

    def __init__(self, bits: int = 8) -> None:
        if not 1 <= bits <= 32:
            raise ConfigurationError(f"bits must lie in [1, 32], got {bits}")
        self.bits = int(bits)

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.size == 0:
            return CompressedPayload(vector.copy(), 0)
        scale = float(np.max(np.abs(vector)))
        if scale == 0.0:
            return CompressedPayload(np.zeros_like(vector), self.transmitted_elements(vector.size))
        levels = 2 ** (self.bits - 1) - 1
        quantized = np.round(vector / scale * levels) / levels * scale
        return CompressedPayload(quantized, self.transmitted_elements(vector.size))

    def transmitted_elements(self, dimension: int) -> int:
        if dimension == 0:
            return 0
        payload = int(np.ceil(dimension * self.bits / 32.0))
        return payload + 1  # plus the scale


class TopKCompressor(Compressor):
    """Top-k sparsification: keep the ``fraction`` largest-magnitude entries.

    Each kept entry costs two float32-equivalents (index + value), the rest is
    dropped; this is the classic sparsified-gradient scheme from the
    compression literature the paper cites.
    """

    name = "topk"

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must lie in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.size == 0:
            return CompressedPayload(vector.copy(), 0)
        keep = max(1, int(round(vector.size * self.fraction)))
        threshold_index = np.argpartition(-np.abs(vector), kth=keep - 1)[:keep]
        sparse = np.zeros_like(vector)
        sparse[threshold_index] = vector[threshold_index]
        return CompressedPayload(sparse, self.transmitted_elements(vector.size))

    def transmitted_elements(self, dimension: int) -> int:
        if dimension == 0:
            return 0
        keep = max(1, int(round(dimension * self.fraction)))
        return 2 * keep


class CompressedSynchronizer:
    """Model synchronization through compressed drift exchange.

    Workers transmit the compressed difference between their current model and
    the last synchronized global model; the averaged reconstruction is added
    to that global model and broadcast back.  The traffic charged is the
    compressed payload instead of the full model dimension.
    """

    def __init__(self, cluster: SimulatedCluster, compressor: Compressor) -> None:
        self.cluster = cluster
        self.compressor = compressor
        self._reference = cluster.workers[0].get_parameters()

    def synchronize(self) -> np.ndarray:
        """Perform one compressed synchronization and return the new global model."""
        cluster = self.cluster
        # One vectorized (K, d) drift computation; compressors consume the rows.
        drifts = cluster.drift_matrix(self._reference)
        payloads = [self.compressor.compress(drift) for drift in drifts]
        transmitted = payloads[0].transmitted_elements if payloads else 0
        cluster.charge_allreduce(transmitted, CATEGORY_MODEL)
        average_delta = np.mean(np.stack([p.vector for p in payloads], axis=0), axis=0)
        new_global = self._reference + average_delta
        cluster.broadcast_parameters(new_global)
        cluster.synchronization_count += 1
        self._reference = new_global
        return new_global


class CompressedSynchronousStrategy(SynchronousStrategy):
    """BSP training whose per-step synchronization uses a compressor."""

    name = "CompressedSynchronous"

    def __init__(self, compressor: Optional[Compressor] = None) -> None:
        super().__init__()
        self.compressor = compressor or QuantizationCompressor(8)
        self._synchronizer: Optional[CompressedSynchronizer] = None
        self.name = f"Synchronous+{self.compressor.name}"

    def _setup(self, cluster: SimulatedCluster) -> None:
        self._synchronizer = CompressedSynchronizer(cluster, self.compressor)

    def _run_round(self, cluster: SimulatedCluster) -> float:
        mean_loss = cluster.step_all()
        self._synchronizer.synchronize()
        return mean_loss
