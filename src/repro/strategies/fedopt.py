"""FedOpt strategies: FedAvg, FedAvgM, FedAdam (and the other adaptive variants).

One round consists of ``local_epochs`` full passes over every worker's shard
(the paper uses E = 1, following the FedAdam paper), after which the clients'
parameters are aggregated by a server optimizer and the result is broadcast
back.  The round's communication is the same full-model AllReduce volume as a
synchronization, charged under the model-sync category.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.cluster import CATEGORY_MODEL, SimulatedCluster
from repro.exceptions import ConfigurationError
from repro.optim.server import FedAdam, FedAvgM, ServerOptimizer
from repro.strategies.base import Strategy


class FedOptStrategy(Strategy):
    """Federated optimization with a pluggable server optimizer."""

    name = "FedOpt"

    #: FedOpt needs a central server holding the optimizer state; it runs on
    #: the star directly and on the two-level hierarchy (the root is the
    #: server), but not on serverless ring/gossip layouts.
    supported_topologies = ("star", "hierarchical")

    def __init__(self, server_optimizer: ServerOptimizer, local_epochs: int = 1) -> None:
        super().__init__()
        if local_epochs <= 0:
            raise ConfigurationError(f"local_epochs must be positive, got {local_epochs}")
        self.server_optimizer = server_optimizer
        self.local_epochs = int(local_epochs)
        self._global_parameters = None
        self.name = f"Fed{type(server_optimizer).__name__.replace('Fed', '')}"

    def _setup(self, cluster: SimulatedCluster) -> None:
        self.server_optimizer.reset()
        self._global_parameters = cluster.workers[0].get_parameters()

    @property
    def steps_per_round(self) -> int:
        return self.local_epochs * max(
            worker.batches_per_epoch for worker in self.cluster.workers
        )

    def _run_round(self, cluster: SimulatedCluster) -> float:
        mean_loss = 0.0
        for _ in range(self.local_epochs):
            mean_loss = cluster.epoch_all()

        # Clients upload their models, the server optimizer produces the new
        # global model, and it is broadcast back; in total this moves the same
        # data volume as one full-model AllReduce, routed through the fabric.
        # cluster.gather_models prices that upload (compressed when the
        # cluster has collective-level compression) and hands back the client
        # matrix as the server sees it — the live (K, d) parameter matrix on
        # the exact path, reference + reconstructed drifts under compression.
        client_models = cluster.gather_models(self._global_parameters, CATEGORY_MODEL)
        alive = cluster.alive_mask
        weights = cluster.normalized_aggregation_weights(alive)
        if weights is not None:
            # Population aggregation weights (data-size, or a partial cohort's
            # zero-weighted unbound slots), renormalized over the survivors.
            new_global = self.server_optimizer.aggregate(
                self._global_parameters, client_models, weights=weights
            )
        else:
            if alive is not None and not alive.all():
                # Worker churn: dead clients cannot upload, so the server
                # renormalizes its aggregation over the surviving rows instead
                # of letting frozen, stale models vote.
                client_models = client_models[alive]
            new_global = self.server_optimizer.aggregate(
                self._global_parameters, client_models
            )
        self._global_parameters = new_global
        cluster.broadcast_parameters(new_global)
        if cluster.workers[0].model.num_buffers:
            cluster.broadcast_buffers(cluster.average_buffers())
        cluster.synchronization_count += 1
        return mean_loss

    # -- checkpointing -----------------------------------------------------------

    #: Server-optimizer state arrays captured by checkpointing (FedAvgM's
    #: velocity, the adaptive variants' moment estimates).
    _SERVER_STATE_ATTRS = ("_velocity", "_m", "_v")

    def checkpoint_state(self) -> dict:
        import numpy as np

        state = super().checkpoint_state()
        payload = {
            "global_parameters": np.array(self._global_parameters),
            "server_round_count": int(self.server_optimizer.round_count),
            "server_state": {},
        }
        for attr in self._SERVER_STATE_ATTRS:
            value = getattr(self.server_optimizer, attr, None)
            if value is not None:
                payload["server_state"][attr] = np.array(value)
        state["fedopt"] = payload
        return state

    def restore_state(self, state: dict) -> None:
        import numpy as np

        super().restore_state(state)
        payload = state["fedopt"]
        self._global_parameters = np.asarray(payload["global_parameters"])
        self.server_optimizer.round_count = int(payload["server_round_count"])
        for attr, value in payload["server_state"].items():
            setattr(self.server_optimizer, attr, np.asarray(value))


def fedavgm_strategy(
    learning_rate: float = 0.316, momentum: float = 0.9, local_epochs: int = 1
) -> FedOptStrategy:
    """The paper's FedAvgM baseline (server momentum 0.9, server LR 0.316)."""
    return FedOptStrategy(FedAvgM(learning_rate, momentum), local_epochs)


def fedadam_strategy(
    learning_rate: float = 0.01, local_epochs: int = 1, tau: float = 1e-3
) -> FedOptStrategy:
    """The paper's FedAdam baseline with the defaults of Reddi et al."""
    return FedOptStrategy(FedAdam(learning_rate, tau=tau), local_epochs)
