"""Local-SGD with a fixed synchronization period τ.

Workers run ``tau`` local mini-batch steps between full model AllReduce
operations.  With ``tau`` equal to the number of batches in a local epoch and
plain averaging this is FedAvg; the paper's Section 2 reviews the many
schedule variants (fixed, increasing, decreasing τ), all of which reduce to
choosing the ``tau`` sequence handed to this strategy.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.distributed.cluster import SimulatedCluster
from repro.exceptions import ConfigurationError
from repro.strategies.base import Strategy

TauSchedule = Callable[[int], int]


def fixed_tau(tau: int) -> TauSchedule:
    """A constant synchronization period (classic Local-SGD / FedAvg)."""
    if int(tau) <= 0:
        raise ConfigurationError(f"tau must be a positive integer, got {tau}")
    return lambda round_index: int(tau)


def increasing_tau(initial: int = 1, growth: float = 1.5, maximum: int = 1024) -> TauSchedule:
    """A geometrically increasing period (Haddadpour et al.: fewer rounds for fixed updates)."""
    if initial <= 0:
        raise ConfigurationError(f"initial must be positive, got {initial}")
    if growth < 1.0:
        raise ConfigurationError(f"growth must be >= 1, got {growth}")
    if maximum < initial:
        raise ConfigurationError(f"maximum must be >= initial, got {maximum}")
    return lambda round_index: int(min(maximum, max(1, round(initial * growth**round_index))))


def decreasing_tau(initial: int = 64, decay: float = 0.7, minimum: int = 1) -> TauSchedule:
    """A geometrically decreasing period (Wang & Joshi: better error-runtime trade-off)."""
    if initial <= 0:
        raise ConfigurationError(f"initial must be positive, got {initial}")
    if not 0.0 < decay <= 1.0:
        raise ConfigurationError(f"decay must lie in (0, 1], got {decay}")
    if minimum <= 0 or minimum > initial:
        raise ConfigurationError(f"minimum must lie in [1, initial], got {minimum}")
    return lambda round_index: int(max(minimum, round(initial * decay**round_index)))


def post_local_sgd_tau(switch_round: int, tau_after: int = 16) -> TauSchedule:
    """Post-local SGD (Lin et al.): synchronous warm-up, then Local-SGD with fixed τ."""
    if switch_round < 0:
        raise ConfigurationError(f"switch_round must be non-negative, got {switch_round}")
    if tau_after <= 0:
        raise ConfigurationError(f"tau_after must be positive, got {tau_after}")
    return lambda round_index: 1 if round_index < switch_round else int(tau_after)


class LocalSGDStrategy(Strategy):
    """Synchronize after every ``tau`` local steps (optionally a τ schedule).

    ``tau`` may be an integer (fixed period) or a callable mapping the round
    index to that round's period, which covers the increasing/decreasing
    schedules discussed in the related-work section.  The synchronization is a
    plain AllReduce average, so any fabric topology works.

    Each of the ``tau`` local steps goes through ``cluster.step_all`` and thus
    the cluster's execution engine — ``execution="batched"`` advances the
    participating workers per step in one vectorized pass with unchanged
    protocol semantics.  Partial participation (a timeline with
    ``dropout_rate > 0``) is sampled per local step, matching FDA's cadence;
    dropped workers skip that step but are still averaged at the period
    boundary (FedAvg over possibly stale rows), so the byte ledger is
    independent of who participated.
    """

    name = "LocalSGD"
    supported_topologies = ("star", "ring", "hierarchical", "gossip")

    def __init__(self, tau: Union[int, TauSchedule] = 10) -> None:
        super().__init__()
        if callable(tau):
            self._tau_schedule: Optional[TauSchedule] = tau
            self._fixed_tau = None
        else:
            if int(tau) <= 0:
                raise ConfigurationError(f"tau must be a positive integer, got {tau}")
            self._tau_schedule = None
            self._fixed_tau = int(tau)

    def current_tau(self) -> int:
        """The synchronization period used for the upcoming round."""
        if self._fixed_tau is not None:
            return self._fixed_tau
        tau = int(self._tau_schedule(self.rounds_completed))
        if tau <= 0:
            raise ConfigurationError(
                f"tau schedule returned {tau} for round {self.rounds_completed}; must be >= 1"
            )
        return tau

    @property
    def steps_per_round(self) -> int:
        return self.current_tau()

    def _run_round(self, cluster: SimulatedCluster) -> float:
        tau = self.current_tau()
        mean_loss = 0.0
        for _ in range(tau):
            active = cluster.timeline.sample_participation()
            mean_loss = cluster.step_all(active=active)
        cluster.synchronize()
        return mean_loss
