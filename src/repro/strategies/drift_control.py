"""Drift-control baselines from the paper's related-work section: FedProx and SCAFFOLD.

Both algorithms attack the *client-drift* problem that FDA's variance metric
detects: under heterogeneous data, workers pull toward their own local optima
and the averaged model degrades.  FedProx adds a proximal term
``(μ/2)·‖w − w_global‖²`` to every local objective; SCAFFOLD corrects every
local gradient with control variates ``c − c_k`` so local updates point toward
the global descent direction.  The paper positions FDA as *orthogonal* to
these optimization-side fixes (they keep a fixed synchronization schedule,
FDA changes the schedule); having them in the library lets the ablation
benchmarks quantify that relationship under Non-IID data.

Both strategies follow the FedAvg round structure: ``local_epochs`` passes per
worker, then a full-model aggregation charged like one AllReduce.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import CATEGORY_MODEL, SimulatedCluster
from repro.exceptions import ConfigurationError
from repro.strategies.base import Strategy


class FedProxStrategy(Strategy):
    """FedAvg with a proximal term keeping local models near the global model.

    The proximal coefficient ``mu`` adds ``mu · (w − w_global)`` to every local
    gradient; ``mu = 0`` recovers plain FedAvg.
    """

    name = "FedProx"

    #: Server-based round structure, like FedOpt.
    supported_topologies = ("star", "hierarchical")

    def __init__(self, mu: float = 0.01, local_epochs: int = 1) -> None:
        super().__init__()
        if mu < 0:
            raise ConfigurationError(f"mu must be non-negative, got {mu}")
        if local_epochs <= 0:
            raise ConfigurationError(f"local_epochs must be positive, got {local_epochs}")
        self.mu = float(mu)
        self.local_epochs = int(local_epochs)
        self._global_parameters: Optional[np.ndarray] = None

    def _setup(self, cluster: SimulatedCluster) -> None:
        self._global_parameters = cluster.workers[0].get_parameters()

    @property
    def steps_per_round(self) -> int:
        return self.local_epochs * max(
            worker.batches_per_epoch for worker in self.cluster.workers
        )

    def _run_round(self, cluster: SimulatedCluster) -> float:
        global_parameters = self._global_parameters

        def proximal(params: np.ndarray, grads: np.ndarray) -> np.ndarray:
            return grads + self.mu * (params - global_parameters)

        mean_loss = 0.0
        for _ in range(self.local_epochs):
            losses = [worker.local_epoch(gradient_transform=proximal) for worker in cluster.workers]
            mean_loss = float(np.mean(losses))
        cluster.timeline.advance_round(
            self.local_epochs * max(w.batches_per_epoch for w in cluster.workers)
        )

        # One full-model client upload, priced (and, when the cluster has
        # collective-level compression, lossily reconstructed) by the cluster.
        client_models = cluster.gather_models(global_parameters, CATEGORY_MODEL)
        new_global = client_models.mean(axis=0)
        self._global_parameters = new_global
        cluster.broadcast_parameters(new_global)
        cluster.synchronization_count += 1
        return mean_loss


class ScaffoldStrategy(Strategy):
    """SCAFFOLD (Karimireddy et al.): control variates against client drift.

    Every worker ``k`` keeps a control variate ``c_k`` and the server keeps the
    global variate ``c``; each local gradient is corrected by ``c − c_k``.
    After a round, worker variates are refreshed from the realized local update
    (option II of the SCAFFOLD paper) and the server variate is their average.
    The communication per round is the model plus the control variate, i.e.
    twice the FedAvg volume — exactly the overhead the original paper reports.
    """

    name = "SCAFFOLD"

    #: Server-based round structure, like FedOpt.
    supported_topologies = ("star", "hierarchical")

    def __init__(self, local_epochs: int = 1, local_learning_rate_hint: float = 0.01) -> None:
        super().__init__()
        if local_epochs <= 0:
            raise ConfigurationError(f"local_epochs must be positive, got {local_epochs}")
        if local_learning_rate_hint <= 0:
            raise ConfigurationError(
                f"local_learning_rate_hint must be positive, got {local_learning_rate_hint}"
            )
        self.local_epochs = int(local_epochs)
        self.local_learning_rate_hint = float(local_learning_rate_hint)
        self._global_parameters: Optional[np.ndarray] = None
        self._server_variate: Optional[np.ndarray] = None
        self._worker_variates: Dict[int, np.ndarray] = {}

    def _setup(self, cluster: SimulatedCluster) -> None:
        dimension = cluster.model_dimension
        self._global_parameters = cluster.workers[0].get_parameters()
        self._server_variate = np.zeros(dimension)
        self._worker_variates = {
            worker.worker_id: np.zeros(dimension) for worker in cluster.workers
        }

    @property
    def steps_per_round(self) -> int:
        return self.local_epochs * max(
            worker.batches_per_epoch for worker in self.cluster.workers
        )

    def _run_round(self, cluster: SimulatedCluster) -> float:
        global_parameters = self._global_parameters
        server_variate = self._server_variate
        mean_loss = 0.0
        steps_taken: Dict[int, int] = {}

        for worker in cluster.workers:
            variate = self._worker_variates[worker.worker_id]

            def corrected(params: np.ndarray, grads: np.ndarray, variate=variate) -> np.ndarray:
                return grads + server_variate - variate

            steps_before = worker.steps_performed
            for _ in range(self.local_epochs):
                mean_loss = worker.local_epoch(gradient_transform=corrected)
            steps_taken[worker.worker_id] = worker.steps_performed - steps_before

        # Refresh control variates (SCAFFOLD option II) and aggregate the models.
        new_variates = {}
        for worker in cluster.workers:
            steps = max(steps_taken[worker.worker_id], 1)
            local_update = global_parameters - worker.parameters_view()
            new_variates[worker.worker_id] = (
                self._worker_variates[worker.worker_id]
                - server_variate
                + local_update / (steps * self.local_learning_rate_hint)
            )

        cluster.timeline.advance_round(
            self.local_epochs * max(w.batches_per_epoch for w in cluster.workers)
        )
        # Model + control variate move across the network each round.  The
        # model half goes through cluster.gather_models (compressed when the
        # cluster carries collective-level compression); the control variates
        # stay full-precision — they are the drift correctors themselves, and
        # compressing them is a different algorithm — so without compression
        # the round charges exactly the historical 2·d volume.
        if cluster.compression is None:
            cluster.charge_allreduce(2 * cluster.model_dimension, CATEGORY_MODEL)
            new_global = cluster.average_parameters()
        else:
            client_models = cluster.gather_models(global_parameters, CATEGORY_MODEL)
            new_global = client_models.mean(axis=0)
            cluster.charge_allreduce(cluster.model_dimension, CATEGORY_MODEL)
        self._worker_variates = new_variates
        self._server_variate = np.mean(np.stack(list(new_variates.values()), axis=0), axis=0)
        self._global_parameters = new_global
        cluster.broadcast_parameters(new_global)
        cluster.synchronization_count += 1
        return mean_loss
