"""The Synchronous (bulk-synchronous parallel) baseline.

Every worker performs one mini-batch step and the models are synchronized via
AllReduce after *every* step.  The paper notes this is the special case of
Algorithm 1 with Θ = 0: convergence is fast in steps but the communication
cost is enormous, which is exactly where it lands in every figure (bottom
right: low computation, very high communication).
"""

from __future__ import annotations

from repro.distributed.cluster import SimulatedCluster
from repro.strategies.base import Strategy


class SynchronousStrategy(Strategy):
    """BSP training: one local step, then a full model AllReduce, every round.

    The local step goes through ``cluster.step_all`` and therefore through the
    cluster's execution engine: with ``execution="batched"`` all participating
    worker steps of a round run as one vectorized pass (identical protocol,
    identical byte accounting).

    Partial participation (a timeline with ``dropout_rate > 0``) is sampled
    per round: dropped workers skip the local step but still contribute their
    (stale) model to the AllReduce — BSP's synchronization is unconditional,
    so the quorum change affects compute only, never the byte ledger.  With
    the default timeline no mask is drawn and behaviour is bit-identical to
    the mask-free protocol.
    """

    name = "Synchronous"
    supported_topologies = ("star", "ring", "hierarchical", "gossip")

    @property
    def steps_per_round(self) -> int:
        return 1

    def _run_round(self, cluster: SimulatedCluster) -> float:
        active = cluster.timeline.sample_participation()
        mean_loss = cluster.step_all(active=active)
        cluster.synchronize()
        return mean_loss
