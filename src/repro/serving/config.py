"""Serving-plane configuration.

:class:`ServingConfig` bundles the open-loop load knobs — the arrival
process, the coordinator's ingress-queue discipline, the staleness-aware
aggregation rule, and the per-update service time — into one frozen
dataclass.  Frozen matters: the sweep executor's content-addressed cache
fingerprints workloads through :func:`repro.experiments.cache.canonical_value`,
which walks frozen dataclasses field-wise, so every serving knob participates
in the run fingerprint automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.exceptions import ConfigurationError

#: Arrival-process kinds.  ``"closed"`` is the degenerate mode: no exogenous
#: arrivals — every update is consumed the instant it is produced, which is
#: exactly the pre-serving :class:`~repro.core.async_fda.AsynchronousFDATrainer`
#: loop (the parity suite pins this bit-exactly).
ARRIVAL_KINDS = ("poisson", "deterministic", "trace", "closed")

#: Ingress-queue overflow policies: refuse the newcomer (``"drop"``), hold it
#: in an unbounded anteroom until a slot frees (``"block"``, client-side
#: back-pressure), or evict the oldest queued update to admit the newcomer
#: (``"shed"``).
QUEUE_POLICIES = ("drop", "block", "shed")

#: Protocols the served coordinator can run: triggered-sync FDA or the
#: lockstep BSP baseline (a round fires once every worker has delivered an
#: update since the last synchronization).
PROTOCOLS = ("fda", "bsp")


@dataclass(frozen=True)
class ServingConfig:
    """Open-loop serving knobs for one run.

    ``arrival_rate`` is per-worker arrivals per virtual second (the aggregate
    offered load is ``K * arrival_rate``).  ``service_seconds`` is the
    coordinator's aggregation time per update; the service rate ``1 /
    service_seconds`` against the aggregate arrival rate decides which side
    of the saturation knee the run sits on.
    """

    arrival: str = "poisson"
    arrival_rate: float = 1.0
    trace_path: Optional[str] = None
    queue_capacity: Optional[int] = None
    queue_policy: str = "drop"
    staleness_rule: str = "uniform"
    max_staleness: int = 4
    poly_alpha: float = 0.5
    service_seconds: float = 0.0
    protocol: str = "fda"
    arrival_seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"arrival must be one of {ARRIVAL_KINDS}, got {self.arrival!r}"
            )
        if self.arrival in ("poisson", "deterministic") and self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if self.arrival == "trace" and not self.trace_path:
            raise ConfigurationError("trace arrivals require trace_path")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1 or None (unbounded), got {self.queue_capacity}"
            )
        if self.queue_policy not in QUEUE_POLICIES:
            raise ConfigurationError(
                f"queue_policy must be one of {QUEUE_POLICIES}, got {self.queue_policy!r}"
            )
        # The rule names live in repro.serving.aggregation; imported lazily to
        # keep the config module dependency-free.
        from repro.serving.aggregation import STALENESS_RULES

        if self.staleness_rule not in STALENESS_RULES:
            raise ConfigurationError(
                f"staleness_rule must be one of {STALENESS_RULES}, "
                f"got {self.staleness_rule!r}"
            )
        if self.max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be non-negative, got {self.max_staleness}"
            )
        if self.poly_alpha < 0:
            raise ConfigurationError(
                f"poly_alpha must be non-negative, got {self.poly_alpha}"
            )
        if self.service_seconds < 0:
            raise ConfigurationError(
                f"service_seconds must be non-negative, got {self.service_seconds}"
            )
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"protocol must be one of {PROTOCOLS}, got {self.protocol!r}"
            )
        if self.arrival == "closed":
            # The degenerate mode must reproduce the async trainer bit-exactly,
            # which rules out anything that could reorder or refuse updates.
            if self.service_seconds != 0.0:
                raise ConfigurationError(
                    "closed (degenerate) mode requires instant service "
                    f"(service_seconds=0), got {self.service_seconds}"
                )
            if self.queue_capacity is not None:
                raise ConfigurationError(
                    "closed (degenerate) mode requires an unbounded queue"
                )
            if self.protocol != "fda":
                raise ConfigurationError(
                    "closed (degenerate) mode reproduces the asynchronous FDA "
                    f"trainer; protocol must be 'fda', got {self.protocol!r}"
                )

    def with_rate(self, arrival_rate: float) -> "ServingConfig":
        """A copy at a different per-worker arrival rate (saturation sweeps)."""
        return replace(self, arrival_rate=arrival_rate)

    def describe(self) -> str:
        """Compact label for run tables and benchmark rows."""
        parts = [self.protocol, self.arrival]
        if self.arrival in ("poisson", "deterministic"):
            parts.append(f"rate{self.arrival_rate:g}")
        capacity = "inf" if self.queue_capacity is None else str(self.queue_capacity)
        parts.append(f"q{capacity}-{self.queue_policy}")
        parts.append(self.staleness_rule)
        if self.service_seconds:
            parts.append(f"svc{self.service_seconds:g}")
        return "-".join(parts)
