"""Staleness-aware aggregation rules for served updates.

An update's *staleness* is the number of global synchronizations that
happened between the instant its state was computed and the instant the
coordinator aggregates it.  Each rule maps staleness to a non-negative
weight; a zero weight rejects the update outright.  The weights compose with
the PR-9 weighted-aggregation seam: the harness assembles one weight per
worker, renormalizes through
:func:`repro.distributed.weights.renormalized_weights`, and feeds the result
to :func:`repro.core.state.average_states` — the ``"uniform"`` rule passes
``None`` weights so the exact legacy ``np.mean`` path (and with it the
degenerate-mode bit-exactness) is preserved.

Rules:

* ``"uniform"`` — staleness ignored, every update weighs 1 (the legacy mean);
* ``"staleness-weighted"`` — weight ``1 / (1 + s)``, gently discounting
  stale contributions;
* ``"max-staleness"`` — weight 1 up to the configured bound, 0 beyond it
  (hard rejection);
* ``"polynomial"`` — FedAsync-style decay ``(1 + s) ** -alpha``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["STALENESS_RULES", "staleness_weight", "staleness_weights"]

STALENESS_RULES = ("uniform", "staleness-weighted", "max-staleness", "polynomial")


def staleness_weight(
    rule: str,
    staleness: int,
    *,
    max_staleness: int = 4,
    poly_alpha: float = 0.5,
) -> float:
    """Aggregation weight of one update with the given staleness (0 rejects)."""
    if staleness < 0:
        raise ConfigurationError(f"staleness must be non-negative, got {staleness}")
    if rule == "uniform":
        return 1.0
    if rule == "staleness-weighted":
        return 1.0 / (1.0 + staleness)
    if rule == "max-staleness":
        return 1.0 if staleness <= max_staleness else 0.0
    if rule == "polynomial":
        return float((1.0 + staleness) ** -poly_alpha)
    raise ConfigurationError(
        f"unknown staleness rule {rule!r}; expected one of {STALENESS_RULES}"
    )


def staleness_weights(
    rule: str,
    stalenesses: Sequence[int],
    *,
    max_staleness: int = 4,
    poly_alpha: float = 0.5,
) -> np.ndarray:
    """Vectorized :func:`staleness_weight` over one staleness per worker."""
    return np.array(
        [
            staleness_weight(
                rule, s, max_staleness=max_staleness, poly_alpha=poly_alpha
            )
            for s in stalenesses
        ],
        dtype=np.float64,
    )
