"""The coordinator's bounded ingress queue.

Updates arriving from clients land here before the coordinator aggregates
them.  The queue is a single-server FIFO with a configurable capacity and one
of three overflow policies:

* ``"drop"`` — a full queue refuses the newcomer (it is lost);
* ``"block"`` — the newcomer waits in an unbounded *anteroom* (client-side
  back-pressure: the client holds the update until a slot frees) and is
  promoted FIFO when the queue drains; its enqueue timestamp stays the
  original arrival instant, so blocking time counts toward latency;
* ``"shed"`` — the *oldest* queued update is evicted to admit the newcomer
  (favouring fresh updates under overload).

Everything is plain-Python deques, so the queue sustains hundreds of
thousands of in-flight updates without numpy round-trips.  The conservation
invariant — every offered update is eventually accounted as aggregated,
dropped, or still in flight — is checked property-style in
``tests/test_serving.py`` under arbitrary interleavings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.exceptions import ConfigurationError, ExperimentError

__all__ = ["PendingUpdate", "IngressQueue"]


@dataclass
class PendingUpdate:
    """One client update waiting for (or undergoing) aggregation.

    ``version`` is the coordinator's synchronization count when the update's
    state was computed; staleness at aggregation time is the number of model
    synchronizations the update missed while queued.
    """

    worker_id: int
    enqueue_time: float
    version: int
    seq: int
    state: object = None
    payload: dict = field(default_factory=dict)


class IngressQueue:
    """Bounded FIFO ingress queue with drop/block/shed overflow policies.

    Counters satisfy, at every instant::

        offered == dequeued + dropped + shed + in_flight

    where ``in_flight = depth + blocked`` (updates in the main queue plus the
    block-policy anteroom).  ``depth_samples`` records ``(virtual_time,
    depth)`` at every state change, giving queue depth over time for the
    metrics plane.
    """

    def __init__(self, capacity: Optional[int] = None, policy: str = "drop") -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1 or None (unbounded), got {capacity}"
            )
        if policy not in ("drop", "block", "shed"):
            raise ConfigurationError(
                f"policy must be 'drop', 'block' or 'shed', got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._queue: Deque[PendingUpdate] = deque()
        self._anteroom: Deque[PendingUpdate] = deque()
        self.offered = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.shed = 0
        self.max_depth = 0
        self.depth_samples: List[Tuple[float, int]] = []

    # -- state -----------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Updates in the main queue right now."""
        return len(self._queue)

    @property
    def blocked(self) -> int:
        """Updates waiting in the block-policy anteroom."""
        return len(self._anteroom)

    @property
    def in_flight(self) -> int:
        """Updates offered but neither aggregated nor lost yet."""
        return len(self._queue) + len(self._anteroom)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def _full(self) -> bool:
        return self.capacity is not None and len(self._queue) >= self.capacity

    def _sample(self, now: float) -> None:
        depth = len(self._queue)
        self.max_depth = max(self.max_depth, depth)
        self.depth_samples.append((float(now), depth))

    # -- operations ------------------------------------------------------------

    def offer(self, update: PendingUpdate, now: float) -> str:
        """Present one update to the queue; returns its fate.

        ``"enqueued"`` — admitted to the main queue; ``"blocked"`` — parked
        in the anteroom (block policy); ``"dropped"`` — refused (drop policy);
        ``"shed"`` — admitted by evicting the oldest queued update.
        """
        self.offered += 1
        if not self._full():
            self._queue.append(update)
            self.enqueued += 1
            self._sample(now)
            return "enqueued"
        if self.policy == "drop":
            self.dropped += 1
            self._sample(now)
            return "dropped"
        if self.policy == "block":
            self._anteroom.append(update)
            self._sample(now)
            return "blocked"
        # shed: the oldest queued update makes room for the newcomer.
        self._queue.popleft()
        self.shed += 1
        self._queue.append(update)
        self.enqueued += 1
        self._sample(now)
        return "shed"

    def pop(self, now: float) -> PendingUpdate:
        """Dequeue the oldest update for service; promotes from the anteroom."""
        if not self._queue:
            raise ExperimentError("cannot pop from an empty ingress queue")
        update = self._queue.popleft()
        self.dequeued += 1
        if self._anteroom and not self._full():
            promoted = self._anteroom.popleft()
            self._queue.append(promoted)
            self.enqueued += 1
        self._sample(now)
        return update

    # -- invariants ------------------------------------------------------------

    @property
    def lost(self) -> int:
        """Updates that will never be aggregated (drop-refused plus shed)."""
        return self.dropped + self.shed

    def conservation_holds(self) -> bool:
        """The ledger invariant: offered == dequeued + lost + in_flight."""
        return self.offered == self.dequeued + self.lost + self.in_flight

    def __repr__(self) -> str:
        capacity = "inf" if self.capacity is None else self.capacity
        return (
            f"IngressQueue(cap={capacity}, policy={self.policy}, "
            f"depth={self.depth}, blocked={self.blocked}, "
            f"offered={self.offered}, lost={self.lost})"
        )
