"""The served coordinator: open-loop load over the event-mode timeline.

:class:`ServedFDATrainer` runs the asynchronous coordinator as a *served
system*: client updates arrive via an exogenous
:class:`~repro.serving.arrivals.ArrivalProcess`, queue at the coordinator's
bounded :class:`~repro.serving.queueing.IngressQueue`, are serviced one at a
time (``service_seconds`` per aggregation), and are folded into the global
model under a staleness-aware rule.  Every serviced update records its
enqueue→aggregate virtual-time latency into a
:class:`~repro.serving.metrics.LatencyTracker`, which is where the p50/p95/p99
numbers in ``BENCH_serving.json`` come from.

Two protocols share the machinery:

* ``"fda"`` — triggered sync: the coordinator keeps the most recent state per
  worker, averages them under the staleness weights (through the PR-9
  weighted-aggregation seam), and synchronizes when the variance estimate
  crosses Θ;
* ``"bsp"`` — the lockstep baseline: a round fires unconditionally once every
  worker has delivered at least one update since the last synchronization,
  and workers upload full models rather than tiny FDA states.

Degenerate mode (``arrival="closed"``): no arrival process, unbounded queue,
instant service.  The trainer then *composes* an
:class:`~repro.core.async_fda.AsynchronousFDATrainer` and delegates every
completion to it verbatim, making bit-exactness with the pre-serving
trajectory true by construction — the parity suite pins it on both engines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.async_fda import AsynchronousFDATrainer
from repro.core.monitor import VarianceMonitor, make_monitor
from repro.core.state import average_states
from repro.core.timeline import StragglerProfile, Timeline
from repro.distributed.cluster import CATEGORY_MODEL, CATEGORY_STATE, SimulatedCluster
from repro.distributed.weights import renormalized_weights
from repro.exceptions import ConfigurationError, ExperimentError
from repro.serving.aggregation import staleness_weight
from repro.serving.arrivals import build_arrival_process
from repro.serving.config import ServingConfig
from repro.serving.metrics import LatencyTracker
from repro.serving.queueing import IngressQueue, PendingUpdate

__all__ = ["ServedFDATrainer", "ServingReport", "serve_workload"]

#: Event priorities at equal virtual times: free the server first, then admit
#: freshly uploaded updates, then process new arrivals.
_PRIORITY_SERVICE = 0
_PRIORITY_ENQUEUE = 1
_PRIORITY_ARRIVAL = 2


@dataclass
class ServingReport:
    """Summary of one served run (one row of the serving benchmark)."""

    protocol: str
    arrival: str
    arrival_rate: float
    queue_policy: str
    queue_capacity: Optional[int]
    staleness_rule: str
    service_seconds: float
    updates_served: int
    updates_offered: int
    updates_dropped: int
    updates_shed: int
    updates_blocked_peak: int
    stale_rejected: int
    sync_count: int
    virtual_seconds: float
    throughput: float
    max_queue_depth: int
    total_bytes: int
    latency: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        row = {
            "protocol": self.protocol,
            "arrival": self.arrival,
            "arrival_rate": self.arrival_rate,
            "queue_policy": self.queue_policy,
            "queue_capacity": self.queue_capacity,
            "staleness_rule": self.staleness_rule,
            "service_seconds": self.service_seconds,
            "updates_served": self.updates_served,
            "updates_offered": self.updates_offered,
            "updates_dropped": self.updates_dropped,
            "updates_shed": self.updates_shed,
            "stale_rejected": self.stale_rejected,
            "sync_count": self.sync_count,
            "virtual_seconds": self.virtual_seconds,
            "throughput": self.throughput,
            "max_queue_depth": self.max_queue_depth,
            "total_bytes": self.total_bytes,
        }
        row.update({f"latency_{key}": value for key, value in self.latency.items()})
        return row


class ServedFDATrainer:
    """Open-loop served coordinator over a :class:`SimulatedCluster`.

    Timeline precedence matches :class:`AsynchronousFDATrainer`: an explicit
    ``timeline`` wins, else an explicit ``profile`` builds one, else the
    cluster's own timeline is used — so workload-configured straggler
    profiles flow through unchanged.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        monitor: VarianceMonitor,
        threshold: float,
        config: ServingConfig,
        profile: Optional[StragglerProfile] = None,
        seed: int = 0,
        timeline: Optional[Timeline] = None,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError(
                f"threshold (Theta) must be non-negative, got {threshold}"
            )
        self.cluster = cluster
        self.monitor = monitor
        self.threshold = float(threshold)
        self.config = config
        self.latency = LatencyTracker()
        self.queue = IngressQueue(config.queue_capacity, config.queue_policy)
        self.stale_rejected = 0
        self.updates_served = 0
        self.blocked_peak = 0
        self._inner: Optional[AsynchronousFDATrainer] = None

        if config.arrival == "closed":
            # Degenerate mode: delegate the entire protocol to the existing
            # asynchronous trainer — zero queueing, instant service, latency
            # identically zero.  Bit-exactness by construction.
            self._inner = AsynchronousFDATrainer(
                cluster, monitor, threshold, profile=profile, seed=seed,
                timeline=timeline,
            )
            self.timeline = self._inner.timeline
            return

        if timeline is not None:
            if timeline.num_workers != cluster.num_workers:
                raise ConfigurationError(
                    f"timeline models {timeline.num_workers} workers, "
                    f"cluster has {cluster.num_workers}"
                )
            self.timeline = timeline
        elif profile is not None:
            self.timeline = Timeline(cluster.num_workers, profile=profile, seed=seed)
        else:
            self.timeline = cluster.timeline
        cluster.timeline = self.timeline

        initial = cluster.workers[0].get_parameters()
        cluster.broadcast_parameters(initial)
        self._reference = initial
        self._previous_reference = initial
        self.synchronization_count = 0
        self._latest: Dict[int, Tuple[object, float]] = {}
        self._contributed: Set[int] = set()
        self._arrivals = build_arrival_process(config, cluster.num_workers)
        self._events: List[Tuple[float, int, int, str, object]] = []
        self._event_seq = 0
        self._busy = False
        self._update_seq = 0
        for worker_id in range(cluster.num_workers):
            first = self._arrivals.next_arrival(worker_id, 0.0)
            if first is not None:
                self._push(first, _PRIORITY_ARRIVAL, "arrival", worker_id)

    # -- shared accessors --------------------------------------------------------

    @property
    def sync_count(self) -> int:
        if self._inner is not None:
            return self._inner.synchronization_count
        return self.synchronization_count

    @property
    def virtual_time(self) -> float:
        return self.timeline.now

    @property
    def state_elements(self) -> int:
        return self.monitor.state_num_elements(self.cluster.model_dimension)

    # -- event plumbing ----------------------------------------------------------

    def _push(self, time: float, priority: int, kind: str, payload: object) -> None:
        heapq.heappush(
            self._events, (float(time), priority, self._event_seq, kind, payload)
        )
        self._event_seq += 1

    # -- degenerate delegation ---------------------------------------------------

    def _serve_closed(self) -> bool:
        if self.timeline.next_completion_time() is None:
            return False
        self._inner.process_next_completion()
        # Closed-loop bookkeeping: every completion is one update consumed
        # the instant it was produced — zero queueing latency by definition.
        self.queue.offered += 1
        self.queue.enqueued += 1
        self.queue.dequeued += 1
        self.latency.record(0.0)
        self.updates_served += 1
        return True

    # -- open-loop protocol ------------------------------------------------------

    def _handle_arrival(self, worker_id: int, event_time: float) -> None:
        self.timeline.advance_to(event_time)
        # Open loop: the next arrival is a function of this arrival's time
        # only, never of coordinator backlog.
        next_time = self._arrivals.next_arrival(worker_id, event_time)
        if next_time is not None:
            self._push(next_time, _PRIORITY_ARRIVAL, "arrival", worker_id)
        # The client performs one local step and ships the result.
        self.cluster.engine.step_worker(worker_id)
        worker = self.cluster.workers[worker_id]
        if self.config.protocol == "fda":
            state = self.monitor.local_state(worker.drift_from(self._reference))
            elements, category = self.state_elements, CATEGORY_STATE
        else:
            # BSP workers upload their full model, not a tiny FDA state.
            state = None
            elements, category = self.cluster.model_dimension, CATEGORY_MODEL
        charge = self.cluster.charge_upload(elements, category, worker_id)
        update = PendingUpdate(
            worker_id=worker_id,
            enqueue_time=event_time + charge.seconds,
            version=self.synchronization_count,
            seq=self._update_seq,
            state=state,
        )
        self._update_seq += 1
        self._push(update.enqueue_time, _PRIORITY_ENQUEUE, "enqueue", update)

    def _handle_enqueue(self, update: PendingUpdate, event_time: float) -> None:
        self.timeline.advance_to(event_time)
        self.queue.offer(update, self.timeline.now)
        self.blocked_peak = max(self.blocked_peak, self.queue.blocked)
        if not self._busy and self.queue:
            self._start_service()

    def _start_service(self) -> None:
        update = self.queue.pop(self.timeline.now)
        self._busy = True
        completion = self.timeline.now + self.config.service_seconds
        self._push(completion, _PRIORITY_SERVICE, "service", update)

    def _handle_service(self, update: PendingUpdate, event_time: float) -> bool:
        self.timeline.advance_to(event_time)
        self._busy = False
        # Latency is enqueue→aggregate, recorded before any sync this update
        # triggers (the sync barrier inflates *later* updates' latencies).
        self.latency.record(self.timeline.now - update.enqueue_time)
        self.updates_served += 1
        staleness = self.synchronization_count - update.version
        weight = staleness_weight(
            self.config.staleness_rule,
            staleness,
            max_staleness=self.config.max_staleness,
            poly_alpha=self.config.poly_alpha,
        )
        if weight <= 0.0:
            self.stale_rejected += 1
        elif self.config.protocol == "fda":
            self._latest[update.worker_id] = (update.state, weight)
            if len(self._latest) == self.cluster.num_workers:
                self._maybe_synchronize_fda()
        else:
            self._contributed.add(update.worker_id)
            if len(self._contributed) == self.cluster.num_workers:
                self._synchronize()
                self._contributed.clear()
        if self.queue:
            self._start_service()
        return True

    def _maybe_synchronize_fda(self) -> None:
        ordered = [self._latest[w] for w in range(self.cluster.num_workers)]
        states = [state for state, _ in ordered]
        if self.config.staleness_rule == "uniform":
            # None weights keep the exact np.mean path bit-for-bit.
            normalized = None
        else:
            normalized = renormalized_weights(
                np.array([weight for _, weight in ordered], dtype=np.float64)
            )
        averaged = average_states(states, normalized)
        estimate = float(self.monitor.estimate(averaged))
        if estimate > self.threshold:
            self._synchronize()
            self._latest.clear()

    def _synchronize(self) -> None:
        # The sync barrier charges the fabric and advances the shared clock;
        # arrivals keep landing at their exogenous times, so the backlog the
        # barrier creates is exactly the saturation effect the bench plots.
        new_global = self.cluster.synchronize()
        if self.config.protocol == "fda":
            self.monitor.on_synchronization(new_global, self._previous_reference)
        self._previous_reference = self._reference
        self._reference = new_global
        self.synchronization_count += 1

    def _serve_open(self) -> bool:
        served_before = self.updates_served
        while self._events and self.updates_served == served_before:
            time, _, _, kind, payload = heapq.heappop(self._events)
            if kind == "arrival":
                self._handle_arrival(payload, time)
            elif kind == "enqueue":
                self._handle_enqueue(payload, time)
            elif kind == "service":
                self._handle_service(payload, time)
            else:  # pragma: no cover - defensive
                raise ExperimentError(f"unknown serving event kind {kind!r}")
        return self.updates_served > served_before

    # -- driving -----------------------------------------------------------------

    def serve_updates(self, num_updates: int) -> int:
        """Run until ``num_updates`` more updates have been aggregated.

        Returns how many were actually served — fewer only when the load is
        finite (a trace ran dry) and the queue drained.
        """
        if num_updates < 0:
            raise ConfigurationError(
                f"num_updates must be non-negative, got {num_updates}"
            )
        served = 0
        step = self._serve_closed if self._inner is not None else self._serve_open
        while served < num_updates and step():
            served += 1
        return served

    # -- reporting ---------------------------------------------------------------

    def report(self) -> ServingReport:
        elapsed = self.timeline.now
        throughput = self.updates_served / elapsed if elapsed > 0 else 0.0
        return ServingReport(
            protocol=self.config.protocol,
            arrival=self.config.arrival,
            arrival_rate=float(self.config.arrival_rate),
            queue_policy=self.config.queue_policy,
            queue_capacity=self.config.queue_capacity,
            staleness_rule=self.config.staleness_rule,
            service_seconds=float(self.config.service_seconds),
            updates_served=self.updates_served,
            updates_offered=self.queue.offered,
            updates_dropped=self.queue.dropped,
            updates_shed=self.queue.shed,
            updates_blocked_peak=self.blocked_peak,
            stale_rejected=self.stale_rejected,
            sync_count=self.sync_count,
            virtual_seconds=float(self.timeline.now),
            throughput=float(throughput),
            max_queue_depth=self.queue.max_depth,
            total_bytes=int(self.cluster.total_bytes),
            latency=self.latency.summary(),
        )

    def __repr__(self) -> str:
        return (
            f"ServedFDATrainer({self.config.describe()}, t={self.timeline.now:.1f}, "
            f"served={self.updates_served}, syncs={self.sync_count})"
        )


def serve_workload(
    workload,
    threshold: float,
    num_updates: int,
    variant: str = "linear",
    serving: Optional[ServingConfig] = None,
) -> ServingReport:
    """Build a workload's cluster, serve ``num_updates`` through it, report.

    ``serving`` defaults to ``workload.serving`` (set via
    :meth:`~repro.experiments.setup.WorkloadConfig.with_serving`); passing an
    explicit config overrides it.  This is the entry point the ``cli serve``
    command and the serving benchmark's run table lower onto.
    """
    from repro.experiments.setup import build_cluster

    config = serving if serving is not None else getattr(workload, "serving", None)
    if config is None:
        raise ConfigurationError(
            "workload has no serving config; use with_serving() or pass one"
        )
    cluster, _ = build_cluster(workload)
    monitor = make_monitor(variant, cluster.model_dimension, seed=workload.seed)
    trainer = ServedFDATrainer(
        cluster, monitor, threshold, config, seed=workload.seed
    )
    trainer.serve_updates(num_updates)
    return trainer.report()
