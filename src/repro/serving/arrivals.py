"""Open-loop arrival processes for the serving plane.

An :class:`ArrivalProcess` answers one question: given that worker ``k``'s
previous update arrived at virtual time ``t``, when does its next update
arrive?  The processes are *open loop*: the answer depends only on the
process's own state (its private RNG stream, its trace cursor), never on how
backlogged the coordinator is — clients keep sending at their own pace even
when the queue is saturated, which is precisely what makes the p99 knee
visible.

Reproducibility contract: every stochastic draw comes from a private stream
``RngFactory(seed).named(f"arrival-{k}")`` — a pure function of
``(seed, worker)`` — so arrival sequences never perturb (and are never
perturbed by) data sampling, initialization, or timeline jitter streams.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "build_arrival_process",
    "write_arrival_trace",
]


class ArrivalProcess:
    """Base class: per-worker next-arrival-time generator."""

    def next_arrival(self, worker_id: int, after: float) -> Optional[float]:
        """Virtual time of ``worker_id``'s next arrival strictly after ``after``.

        Returns ``None`` when the process has no further arrivals for that
        worker (only finite traces ever exhaust).
        """
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Poisson process: i.i.d. exponential inter-arrival times per worker.

    Each worker draws from its own named stream, so the arrival sequence of
    worker ``k`` is a pure function of ``(seed, k, rate)`` — adding or
    removing workers never shifts the others' arrivals.
    """

    def __init__(self, rate: float, num_workers: int, seed: int = 0) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        self.rate = float(rate)
        factory = RngFactory(seed)
        self._rngs = [factory.named(f"arrival-{k}") for k in range(num_workers)]

    def next_arrival(self, worker_id: int, after: float) -> float:
        return float(after) + float(self._rngs[worker_id].exponential(1.0 / self.rate))


class DeterministicArrivals(ArrivalProcess):
    """Fixed-interval arrivals: one update every ``1 / rate`` seconds."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def next_arrival(self, worker_id: int, after: float) -> float:
        return float(after) + 1.0 / self.rate


class TraceArrivals(ArrivalProcess):
    """Trace-driven arrivals replayed from recorded ``(worker, time)`` events.

    The trace is a JSONL file of ``{"worker": int, "time": float}`` records
    (see :func:`write_arrival_trace`); per-worker times are replayed in
    sorted order.  A recorded time at or before ``after`` is delivered at
    the first representable instant after it — the client sent the update,
    the simulation just had not caught up yet.
    """

    def __init__(self, times_by_worker: Dict[int, Sequence[float]]) -> None:
        self._times: Dict[int, List[float]] = {
            int(worker): sorted(float(t) for t in times)
            for worker, times in times_by_worker.items()
        }
        for worker, times in self._times.items():
            if any(t < 0 for t in times):
                raise ConfigurationError(
                    f"trace times must be non-negative (worker {worker})"
                )
        self._cursor: Dict[int, int] = {worker: 0 for worker in self._times}

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceArrivals":
        times: Dict[int, List[float]] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                times.setdefault(int(record["worker"]), []).append(float(record["time"]))
        if not times:
            raise ConfigurationError(f"arrival trace {path!r} contains no events")
        return cls(times)

    def next_arrival(self, worker_id: int, after: float) -> Optional[float]:
        times = self._times.get(worker_id)
        if times is None:
            return None
        cursor = self._cursor[worker_id]
        if cursor >= len(times):
            return None
        self._cursor[worker_id] = cursor + 1
        recorded = times[cursor]
        if recorded > after:
            return recorded
        return float(np.nextafter(after, np.inf))


def write_arrival_trace(path: str, events: Sequence[tuple]) -> None:
    """Record ``(worker, time)`` events as the JSONL format traces replay."""
    with open(path, "w", encoding="utf-8") as handle:
        for worker, time in events:
            handle.write(json.dumps({"worker": int(worker), "time": float(time)}) + "\n")


def build_arrival_process(config, num_workers: int) -> Optional[ArrivalProcess]:
    """Arrival process for a :class:`~repro.serving.config.ServingConfig`.

    Returns ``None`` for the degenerate ``"closed"`` mode, where there is no
    exogenous arrival process at all.
    """
    if config.arrival == "closed":
        return None
    if config.arrival == "poisson":
        return PoissonArrivals(config.arrival_rate, num_workers, seed=config.arrival_seed)
    if config.arrival == "deterministic":
        return DeterministicArrivals(config.arrival_rate)
    if config.arrival == "trace":
        return TraceArrivals.from_jsonl(config.trace_path)
    raise ConfigurationError(f"unknown arrival kind {config.arrival!r}")
