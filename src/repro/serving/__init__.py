"""Plane 8: the open-loop serving harness.

Turns the closed-loop coordinator simulation into a *served system*:
stochastic client-update arrivals (:mod:`~repro.serving.arrivals`), a bounded
coordinator ingress queue (:mod:`~repro.serving.queueing`), staleness-aware
aggregation rules (:mod:`~repro.serving.aggregation`), streaming latency
percentiles (:mod:`~repro.serving.metrics`), and the served coordinator that
ties them onto the event-mode timeline (:mod:`~repro.serving.harness`).
"""

from repro.serving.aggregation import STALENESS_RULES, staleness_weight, staleness_weights
from repro.serving.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
    build_arrival_process,
    write_arrival_trace,
)
from repro.serving.config import ARRIVAL_KINDS, PROTOCOLS, QUEUE_POLICIES, ServingConfig
from repro.serving.harness import ServedFDATrainer, ServingReport, serve_workload
from repro.serving.metrics import (
    P2_RANK_ERROR_BOUND,
    LatencyTracker,
    P2Quantile,
    PercentileLedger,
)
from repro.serving.queueing import IngressQueue, PendingUpdate

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "DeterministicArrivals",
    "IngressQueue",
    "LatencyTracker",
    "P2Quantile",
    "P2_RANK_ERROR_BOUND",
    "PROTOCOLS",
    "PendingUpdate",
    "PercentileLedger",
    "PoissonArrivals",
    "QUEUE_POLICIES",
    "STALENESS_RULES",
    "ServedFDATrainer",
    "ServingConfig",
    "ServingReport",
    "TraceArrivals",
    "build_arrival_process",
    "serve_workload",
    "staleness_weight",
    "staleness_weights",
    "write_arrival_trace",
]
