"""Streaming latency percentiles for the serving plane.

Two trackers run side by side:

* :class:`PercentileLedger` — the exact answer: every observation is kept
  and percentiles come from ``np.percentile`` (linear interpolation).  O(n)
  memory, fine for runs up to millions of updates.
* :class:`P2Quantile` — the P² streaming estimator (Jain & Chlamtac, CACM
  1985): five markers per tracked quantile, O(1) memory and O(1) per
  observation, exact below five observations.

The estimator's accuracy contract is a *rank* bound, not a value bound: P²
carries no worst-case value-error guarantee (a heavy tail can stretch any
value gap), but on the latency distributions this plane produces the
empirical CDF evaluated at the P² estimate stays within
:data:`P2_RANK_ERROR_BOUND` of the target quantile once ``n >= 100``.  The
property suite (``tests/test_serving.py``) enforces exactly that bound
against the exact ledger.

:class:`LatencyTracker` bundles one ledger with P² estimators for p50/p95/p99
and cross-checks them in one ``summary()`` dict.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "P2_RANK_ERROR_BOUND",
    "PercentileLedger",
    "P2Quantile",
    "LatencyTracker",
]

#: Documented accuracy contract of :class:`P2Quantile` versus the exact
#: ledger: |empirical CDF(estimate) - q| <= this bound for n >= 100
#: observations (see module docstring; enforced by the property suite).
P2_RANK_ERROR_BOUND = 0.1

#: Quantiles every latency tracker follows (p50 / p95 / p99).
TRACKED_QUANTILES = (0.50, 0.95, 0.99)


class PercentileLedger:
    """Exact percentile tracking: keep everything, sort on demand."""

    def __init__(self) -> None:
        self._values: List[float] = []

    def record(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def percentile(self, q: float) -> float:
        """Exact ``q``-quantile (``q`` in [0, 1]) of everything recorded."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
        if not self._values:
            raise ConfigurationError("no observations recorded yet")
        return float(np.percentile(self._values, 100.0 * q))

    def cdf_at(self, value: float) -> float:
        """Empirical CDF: fraction of observations <= ``value``."""
        if not self._values:
            raise ConfigurationError("no observations recorded yet")
        values = np.asarray(self._values)
        return float(np.count_nonzero(values <= value) / values.size)


class P2Quantile:
    """One quantile via the P² algorithm: five markers, O(1) per observation.

    Below five observations the estimate falls back to the exact
    interpolated quantile of what has been seen.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must lie in (0, 1), got {q}")
        self.q = float(q)
        self._initial: List[float] = []
        # Marker heights, integer positions, and desired positions (1-based,
        # per the paper); live only after the first five observations.
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self._heights:
            self._update(value)
            return
        self._initial.append(value)
        if len(self._initial) == 5:
            self._initial.sort()
            self._heights = list(self._initial)
            self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
            q = self.q
            self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]

    def _update(self, value: float) -> None:
        h, n, d = self._heights, self._positions, self._desired
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if value < h[i]:
                    cell = i - 1
                    break
            else:
                cell = 3
        for i in range(cell + 1, 5):
            n[i] += 1.0
        for i in range(5):
            d[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in range(1, 4):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current estimate (exact below five observations)."""
        if self._heights:
            return float(self._heights[2])
        if not self._initial:
            raise ConfigurationError("no observations recorded yet")
        return float(np.percentile(self._initial, 100.0 * self.q))


class LatencyTracker:
    """Exact ledger plus P² estimators for the tracked quantiles."""

    def __init__(self, quantiles: Sequence[float] = TRACKED_QUANTILES) -> None:
        self.ledger = PercentileLedger()
        self.estimators: Dict[float, P2Quantile] = {
            float(q): P2Quantile(q) for q in quantiles
        }

    def record(self, latency: float) -> None:
        self.ledger.record(latency)
        for estimator in self.estimators.values():
            estimator.add(latency)

    @property
    def count(self) -> int:
        return self.ledger.count

    def summary(self) -> Dict[str, float]:
        """Exact p50/p95/p99 plus the P² estimates and basic moments."""
        if not self.ledger.count:
            return {"count": 0}
        values = self.ledger.values()
        summary: Dict[str, float] = {
            "count": int(values.size),
            "mean": float(values.mean()),
            "max": float(values.max()),
        }
        for q, estimator in self.estimators.items():
            key = f"p{int(round(q * 100))}"
            summary[key] = self.ledger.percentile(q)
            summary[f"{key}_est"] = estimator.value()
        return summary
