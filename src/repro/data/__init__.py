"""Datasets, synthetic data generators, and federated partitioning.

The paper trains on MNIST, CIFAR-10 and CIFAR-100.  This environment has no
network access, so :mod:`repro.data.synthetic` generates procedurally defined
image-classification problems that stand in for them (documented in
DESIGN.md).  Partitioning across workers follows the paper's three schemes:
IID, "Non-IID: X%" (a sorted fraction) and "Non-IID: Label Y" (label
exclusivity).
"""

from repro.data.datasets import Dataset, train_test_split
from repro.data.synthetic import (
    gaussian_blobs,
    synthetic_cifar,
    synthetic_digits,
    synthetic_features,
)
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    noniid_label_partition,
    noniid_sorted_fraction_partition,
    partition_dataset,
    partition_statistics,
)
from repro.data.loaders import BatchSampler, EpochIterator, StackedSampler
from repro.data.features import PretrainedFeatureExtractor

__all__ = [
    "Dataset",
    "train_test_split",
    "synthetic_digits",
    "synthetic_cifar",
    "synthetic_features",
    "gaussian_blobs",
    "iid_partition",
    "noniid_sorted_fraction_partition",
    "noniid_label_partition",
    "dirichlet_partition",
    "partition_dataset",
    "partition_statistics",
    "BatchSampler",
    "EpochIterator",
    "StackedSampler",
    "PretrainedFeatureExtractor",
]
