"""Batch sampling for local training.

Each worker samples mini-batches of size ``b`` from its own partition
(Algorithm 1, line 4).  :class:`BatchSampler` provides with-replacement
sampling driven by a worker-private random generator, and
:class:`EpochIterator` provides classic shuffled epoch iteration for the
FedOpt baselines that train whole local epochs between rounds.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_rng


class BatchSampler:
    """Samples random mini-batches (with replacement) from one worker's data."""

    def __init__(self, dataset: Dataset, batch_size: int, seed=None) -> None:
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        if len(dataset) == 0:
            raise DataError("cannot sample batches from an empty dataset")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self._rng = as_rng(seed)

    def sample(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return one mini-batch ``(x, y)``."""
        indices = self._rng.integers(0, len(self.dataset), size=self.batch_size)
        return self.dataset.x[indices], self.dataset.y[indices]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.sample()


class StackedSampler:
    """Draws all ``K`` workers' mini-batches as one stacked ``(K, B, ...)`` array.

    Wraps the workers' own :class:`BatchSampler` instances, so each worker's
    with-replacement index stream is drawn from *its* private generator in
    exactly the order the sequential engine would — a cluster can switch
    between sequential and batched execution (or compare the two) without
    perturbing which samples any worker sees.  The per-worker batches are
    stacked into one ``(K, B, *sample_shape)`` feature array and one
    ``(K, B)`` label array per call, which is the input layout of
    :class:`repro.nn.batched.BatchedModel`.

    All wrapped samplers must agree on the batch size and per-sample shape
    (they index different shards of the same dataset family).
    """

    def __init__(self, samplers: Sequence[BatchSampler]) -> None:
        if not samplers:
            raise DataError("StackedSampler needs at least one per-worker sampler")
        batch_sizes = {sampler.batch_size for sampler in samplers}
        if len(batch_sizes) != 1:
            raise DataError(
                f"all workers must share one batch size, got {sorted(batch_sizes)}"
            )
        sample_shapes = {sampler.dataset.x.shape[1:] for sampler in samplers}
        if len(sample_shapes) != 1:
            raise DataError(
                f"all workers must share one per-sample shape, got {sorted(sample_shapes)}"
            )
        self.samplers: List[BatchSampler] = list(samplers)
        self.batch_size = batch_sizes.pop()

    @classmethod
    def for_datasets(
        cls, datasets: Sequence[Dataset], batch_size: int, seeds: Sequence
    ) -> "StackedSampler":
        """Build a stacked sampler from per-worker shards and per-worker seeds."""
        if len(datasets) != len(seeds):
            raise DataError(
                f"need one seed per dataset, got {len(datasets)} datasets and {len(seeds)} seeds"
            )
        return cls([
            BatchSampler(dataset, batch_size, seed=seed)
            for dataset, seed in zip(datasets, seeds)
        ])

    @property
    def num_workers(self) -> int:
        return len(self.samplers)

    def sample(self, rows=None) -> Tuple[np.ndarray, np.ndarray]:
        """One stacked mini-batch: ``(x, y)`` of shapes ``(A, B, ...)`` / ``(A, B)``.

        ``rows`` — an optional integer index array — restricts the draw to
        those workers (partial participation): only their samplers consume a
        draw, in ascending worker order, exactly as a sequential loop over the
        active workers would, so every worker's private RNG stream stays
        aligned across engines.  ``None`` draws from all ``K`` workers.
        """
        samplers = (
            self.samplers
            if rows is None
            else [self.samplers[int(k)] for k in rows]
        )
        batches = [sampler.sample() for sampler in samplers]
        x = np.stack([batch_x for batch_x, _ in batches], axis=0)
        y = np.stack([batch_y for _, batch_y in batches], axis=0)
        return x, y

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.sample()


class EpochIterator:
    """Iterates a dataset in shuffled, non-overlapping batches (one epoch)."""

    def __init__(self, dataset: Dataset, batch_size: int, seed=None, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        if len(dataset) == 0:
            raise DataError("cannot iterate an empty dataset")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)
        self._rng = as_rng(seed)

    @property
    def batches_per_epoch(self) -> int:
        """Number of batches yielded by one full pass."""
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return max(1, full)

    def epoch(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield one epoch of shuffled batches."""
        order = self._rng.permutation(len(self.dataset))
        end = len(order)
        if self.drop_last:
            end = (len(order) // self.batch_size) * self.batch_size
            end = max(end, self.batch_size) if len(order) >= self.batch_size else len(order)
        for start in range(0, end, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and indices.shape[0] < self.batch_size:
                break
            yield self.dataset.x[indices], self.dataset.y[indices]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        return self.epoch()
