"""The :class:`Dataset` container.

A dataset is simply a pair of aligned arrays (``x``: samples, ``y``: integer
labels) plus the number of classes.  All generators and partitioners in this
subpackage produce and consume this type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DataError
from repro.utils.rng import as_rng


@dataclass
class Dataset:
    """An in-memory supervised dataset with integer class labels."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.shape[0] != self.y.shape[0]:
            raise DataError(
                f"x and y must have the same number of samples, got {self.x.shape[0]} "
                f"and {self.y.shape[0]}"
            )
        if self.y.ndim != 1:
            raise DataError(f"y must be a 1-D array of labels, got shape {self.y.shape}")
        if self.num_classes <= 0:
            raise DataError(f"num_classes must be positive, got {self.num_classes}")
        if self.y.size and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise DataError(
                f"labels must lie in [0, {self.num_classes}), got range "
                f"[{self.y.min()}, {self.y.max()}]"
            )

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Per-sample shape (no batch dimension)."""
        return tuple(self.x.shape[1:])

    def subset(self, indices: Sequence[int], name: str = None) -> "Dataset":
        """A new dataset restricted to ``indices`` (copies, does not alias)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise DataError(
                f"indices out of range [0, {len(self)}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return Dataset(
            self.x[indices].copy(),
            self.y[indices].copy(),
            self.num_classes,
            name=name or f"{self.name}[{indices.size}]",
        )

    def shuffled(self, seed=None) -> "Dataset":
        """A copy of the dataset with shuffled sample order."""
        rng = as_rng(seed)
        order = rng.permutation(len(self))
        return self.subset(order, name=self.name)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, length ``num_classes``."""
        return np.bincount(self.y, minlength=self.num_classes)

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, samples={len(self)}, "
            f"shape={self.sample_shape}, classes={self.num_classes})"
        )


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed=None
) -> Tuple[Dataset, Dataset]:
    """Split a dataset into train and test parts with shuffling."""
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    rng = as_rng(seed)
    order = rng.permutation(len(dataset))
    test_size = max(1, int(round(len(dataset) * test_fraction)))
    if test_size >= len(dataset):
        raise DataError(
            f"test_fraction {test_fraction} leaves no training samples for a dataset "
            f"of size {len(dataset)}"
        )
    test_indices = order[:test_size]
    train_indices = order[test_size:]
    return (
        dataset.subset(train_indices, name=f"{dataset.name}-train"),
        dataset.subset(test_indices, name=f"{dataset.name}-test"),
    )
