"""Frozen feature extractor for the transfer-learning scenario.

The paper's Figure 13 fine-tunes an ImageNet-pretrained ConvNeXtLarge on
CIFAR-100.  Without the pretrained weights (no network access) we substitute
the backbone with a *frozen* random nonlinear projection: the classes remain
linearly entangled enough that fine-tuning a multi-layer head with AdamW is a
non-trivial optimization problem, which is the property the experiment needs
(see DESIGN.md, substitution 5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_rng


class PretrainedFeatureExtractor:
    """A frozen multi-layer random projection acting as a pretrained backbone.

    The extractor flattens its input, applies ``len(hidden_dims)`` frozen
    affine+tanh layers, and returns the final representation.  It never
    trains; only the head built by :func:`repro.nn.architectures.transfer_head`
    receives gradients, exactly as in a feature-extraction / fine-tuning
    pipeline.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int] = (64, 48),
        seed: int = 0,
    ) -> None:
        if input_dim <= 0:
            raise DataError(f"input_dim must be positive, got {input_dim}")
        if not hidden_dims:
            raise DataError("hidden_dims must contain at least one layer size")
        rng = as_rng(seed)
        self.input_dim = int(input_dim)
        self.hidden_dims = tuple(int(d) for d in hidden_dims)
        self._weights = []
        self._biases = []
        previous = self.input_dim
        for width in self.hidden_dims:
            if width <= 0:
                raise DataError(f"hidden layer widths must be positive, got {width}")
            scale = 1.0 / np.sqrt(previous)
            self._weights.append(rng.normal(scale=scale, size=(previous, width)))
            self._biases.append(rng.normal(scale=0.1, size=width))
            previous = width

    @property
    def output_dim(self) -> int:
        """Dimension of the extracted feature vectors."""
        return self.hidden_dims[-1]

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Extract features for a batch of samples (any shape; flattened first)."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(x.shape[0], -1)
        if flat.shape[1] != self.input_dim:
            raise DataError(
                f"expected flattened inputs of dimension {self.input_dim}, got {flat.shape[1]}"
            )
        hidden = flat
        for weight, bias in zip(self._weights, self._biases):
            hidden = np.tanh(hidden @ weight + bias)
        return hidden

    def transform_dataset(self, dataset: Dataset, name: str = None) -> Dataset:
        """Return a new dataset of extracted features with the same labels."""
        features = self.transform(dataset.x)
        return Dataset(
            features,
            dataset.y.copy(),
            dataset.num_classes,
            name=name or f"{dataset.name}-features",
        )
