"""Synthetic stand-ins for the paper's datasets.

The environment has no network access, so MNIST, CIFAR-10 and CIFAR-100 are
replaced by procedurally generated class-conditional image/feature problems:

* :func:`synthetic_digits` — MNIST substitute: per-class stroke-like
  prototypes on a small grayscale grid, with per-sample jitter and noise.
* :func:`synthetic_cifar` — CIFAR substitute: per-class smooth colored
  textures (low-frequency random fields), harder than the digits problem.
* :func:`synthetic_features` — CIFAR-100-after-a-pretrained-backbone
  substitute used for the transfer-learning scenario: class-conditional
  Gaussian clusters in a feature space with a controllable margin.
* :func:`gaussian_blobs` — a tiny generic problem used by the test-suite.

Each generator is fully deterministic given its ``seed`` and returns a
:class:`~repro.data.datasets.Dataset`, so training runs are reproducible and
every worker partition is derived from the same underlying data.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_rng


def _check_common(num_samples: int, num_classes: int, noise: float) -> None:
    if num_samples <= 0:
        raise DataError(f"num_samples must be positive, got {num_samples}")
    if num_classes <= 1:
        raise DataError(f"num_classes must be at least 2, got {num_classes}")
    if noise < 0:
        raise DataError(f"noise must be non-negative, got {noise}")


def _balanced_labels(num_samples: int, num_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Labels with (approximately) equal counts per class, in random order."""
    per_class = int(np.ceil(num_samples / num_classes))
    labels = np.tile(np.arange(num_classes), per_class)[:num_samples]
    rng.shuffle(labels)
    return labels


def _smooth_field(rng: np.random.Generator, size: int, smoothness: int = 3) -> np.ndarray:
    """A smooth random 2-D field in [-1, 1], built by upsampling low-res noise."""
    low = rng.normal(size=(smoothness, smoothness))
    # Bilinear upsampling to (size, size).
    coords = np.linspace(0, smoothness - 1, size)
    x0 = np.clip(np.floor(coords).astype(int), 0, smoothness - 2)
    frac = coords - x0
    rows = low[x0, :] * (1 - frac)[:, None] + low[x0 + 1, :] * frac[:, None]
    field = rows[:, x0] * (1 - frac)[None, :] + rows[:, x0 + 1] * frac[None, :]
    peak = np.max(np.abs(field))
    return field / (peak if peak > 0 else 1.0)


def synthetic_digits(
    num_samples: int = 2000,
    image_size: int = 14,
    num_classes: int = 10,
    noise: float = 0.25,
    jitter: int = 1,
    seed: Optional[int] = 0,
    name: str = "synthetic-digits",
) -> Dataset:
    """MNIST substitute: grayscale images with per-class stroke prototypes.

    Every class has a fixed prototype composed of a few bright strokes on the
    grid; a sample is the prototype shifted by up to ``jitter`` pixels plus
    Gaussian pixel noise.  With default settings a small CNN reaches > 95 %
    accuracy in a few hundred steps, similar in spirit to LeNet-5 on MNIST.
    """
    _check_common(num_samples, num_classes, noise)
    if image_size < 6:
        raise DataError(f"image_size must be at least 6, got {image_size}")
    rng = as_rng(seed)
    prototypes = np.zeros((num_classes, image_size, image_size))
    for class_index in range(num_classes):
        class_rng = np.random.default_rng([0 if seed is None else int(seed), 101, class_index])
        canvas = np.zeros((image_size, image_size))
        for _ in range(3):
            if class_rng.random() < 0.5:
                row = class_rng.integers(1, image_size - 1)
                start = class_rng.integers(0, image_size // 2)
                end = class_rng.integers(image_size // 2, image_size)
                canvas[row, start:end] = 1.0
            else:
                col = class_rng.integers(1, image_size - 1)
                start = class_rng.integers(0, image_size // 2)
                end = class_rng.integers(image_size // 2, image_size)
                canvas[start:end, col] = 1.0
        prototypes[class_index] = canvas

    labels = _balanced_labels(num_samples, num_classes, rng)
    images = np.zeros((num_samples, image_size, image_size, 1))
    for sample_index, label in enumerate(labels):
        canvas = prototypes[label]
        if jitter:
            shift_r = rng.integers(-jitter, jitter + 1)
            shift_c = rng.integers(-jitter, jitter + 1)
            canvas = np.roll(np.roll(canvas, shift_r, axis=0), shift_c, axis=1)
        sample = canvas + rng.normal(scale=noise, size=canvas.shape)
        images[sample_index, :, :, 0] = sample
    return Dataset(images, labels, num_classes, name=name)


def synthetic_cifar(
    num_samples: int = 2000,
    image_size: int = 12,
    channels: int = 3,
    num_classes: int = 10,
    noise: float = 0.35,
    seed: Optional[int] = 0,
    name: str = "synthetic-cifar",
) -> Dataset:
    """CIFAR substitute: small colored images with per-class smooth textures.

    Each class is a fixed low-frequency color texture; samples add Gaussian
    noise and a random global brightness shift.  The problem is noticeably
    harder than :func:`synthetic_digits`, mirroring the MNIST → CIFAR-10 jump
    in the paper.
    """
    _check_common(num_samples, num_classes, noise)
    if image_size < 6:
        raise DataError(f"image_size must be at least 6, got {image_size}")
    if channels <= 0:
        raise DataError(f"channels must be positive, got {channels}")
    rng = as_rng(seed)
    prototypes = np.zeros((num_classes, image_size, image_size, channels))
    for class_index in range(num_classes):
        class_rng = np.random.default_rng([0 if seed is None else int(seed), 202, class_index])
        for channel in range(channels):
            prototypes[class_index, :, :, channel] = _smooth_field(class_rng, image_size)

    labels = _balanced_labels(num_samples, num_classes, rng)
    images = np.zeros((num_samples, image_size, image_size, channels))
    for sample_index, label in enumerate(labels):
        brightness = rng.normal(scale=0.2)
        sample = prototypes[label] + brightness
        sample = sample + rng.normal(scale=noise, size=sample.shape)
        images[sample_index] = sample
    return Dataset(images, labels, num_classes, name=name)


def synthetic_features(
    num_samples: int = 3000,
    feature_dim: int = 32,
    num_classes: int = 20,
    class_separation: float = 3.0,
    noise: float = 1.0,
    seed: Optional[int] = 0,
    name: str = "synthetic-features",
) -> Dataset:
    """Feature-space substitute for CIFAR-100 after a pre-trained backbone.

    The transfer-learning experiment (Figure 13) fine-tunes a large model on
    extracted features.  Here classes are Gaussian clusters whose means are
    random directions scaled by ``class_separation``; lowering the separation
    or raising ``noise`` makes the fine-tuning task harder.
    """
    _check_common(num_samples, num_classes, noise)
    if feature_dim <= 1:
        raise DataError(f"feature_dim must be at least 2, got {feature_dim}")
    if class_separation <= 0:
        raise DataError(f"class_separation must be positive, got {class_separation}")
    rng = as_rng(seed)
    directions = rng.normal(size=(num_classes, feature_dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    means = directions * class_separation

    labels = _balanced_labels(num_samples, num_classes, rng)
    features = means[labels] + rng.normal(scale=noise, size=(num_samples, feature_dim))
    return Dataset(features, labels, num_classes, name=name)


def gaussian_blobs(
    num_samples: int = 600,
    feature_dim: int = 8,
    num_classes: int = 3,
    separation: float = 4.0,
    noise: float = 1.0,
    seed: Optional[int] = 0,
    name: str = "gaussian-blobs",
) -> Dataset:
    """A tiny, easily separable problem used throughout the test-suite."""
    return synthetic_features(
        num_samples=num_samples,
        feature_dim=feature_dim,
        num_classes=num_classes,
        class_separation=separation,
        noise=noise,
        seed=seed,
        name=name,
    )


def synthetic_mnist_pair(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 14,
    num_classes: int = 10,
    noise: float = 0.25,
    seed: Optional[int] = 0,
) -> Tuple[Dataset, Dataset]:
    """Convenience: a train/test pair of :func:`synthetic_digits` samples.

    The class prototypes are a function of ``seed``, so the pair must come
    from a *single* generated dataset that is then split — otherwise train and
    test would describe entirely different classification tasks.
    """
    full = synthetic_digits(
        num_train + num_test, image_size, num_classes, noise, seed=seed,
        name="synthetic-mnist",
    )
    from repro.data.datasets import train_test_split

    return train_test_split(full, test_fraction=num_test / (num_train + num_test), seed=seed)


def synthetic_cifar_pair(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 12,
    num_classes: int = 10,
    noise: float = 0.35,
    seed: Optional[int] = 0,
) -> Tuple[Dataset, Dataset]:
    """Convenience: a train/test pair of :func:`synthetic_cifar` samples.

    See :func:`synthetic_mnist_pair` for why both splits are drawn from one
    generated dataset.
    """
    full = synthetic_cifar(
        num_train + num_test, image_size, 3, num_classes, noise, seed=seed,
        name="synthetic-cifar",
    )
    from repro.data.datasets import train_test_split

    return train_test_split(full, test_fraction=num_test / (num_train + num_test), seed=seed)
