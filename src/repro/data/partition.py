"""Partitioning a dataset across federated workers.

The paper evaluates three data-distribution scenarios (Section 4.1):

1. **IID** — samples are shuffled and split approximately equally.
2. **Non-IID: X %** — a fraction ``X`` of the dataset is sorted by label and
   allocated to workers sequentially (so some workers see mostly one or two
   labels); the remaining ``1 − X`` is distributed IID.
3. **Non-IID: Label Y** — every sample of label ``Y`` goes to a small group of
   workers; everything else is IID.

A Dirichlet partitioner is also provided as the standard additional
heterogeneity knob used in the broader FL literature.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_rng


def _check_workers(num_samples: int, num_workers: int) -> None:
    if num_workers <= 0:
        raise DataError(f"num_workers must be positive, got {num_workers}")
    if num_samples < num_workers:
        raise DataError(
            f"cannot split {num_samples} samples across {num_workers} workers "
            "(fewer samples than workers)"
        )


def iid_partition(labels: np.ndarray, num_workers: int, seed=None) -> List[np.ndarray]:
    """Shuffle all indices and deal them out approximately equally."""
    labels = np.asarray(labels)
    _check_workers(labels.shape[0], num_workers)
    rng = as_rng(seed)
    order = rng.permutation(labels.shape[0])
    return [np.sort(chunk) for chunk in np.array_split(order, num_workers)]


def noniid_sorted_fraction_partition(
    labels: np.ndarray, num_workers: int, fraction: float, seed=None
) -> List[np.ndarray]:
    """The paper's "Non-IID: X %" scheme.

    ``fraction`` of the dataset is sorted by label and dealt out to workers in
    contiguous runs (concentrating labels), the rest is distributed IID.
    """
    labels = np.asarray(labels)
    _check_workers(labels.shape[0], num_workers)
    if not 0.0 <= fraction <= 1.0:
        raise DataError(f"fraction must lie in [0, 1], got {fraction}")
    rng = as_rng(seed)
    order = rng.permutation(labels.shape[0])
    num_sorted = int(round(labels.shape[0] * fraction))
    sorted_part = order[:num_sorted]
    iid_part = order[num_sorted:]

    # Sort the heterogeneous part by label and split into contiguous runs.
    sorted_part = sorted_part[np.argsort(labels[sorted_part], kind="stable")]
    sorted_chunks = np.array_split(sorted_part, num_workers)
    iid_chunks = np.array_split(iid_part, num_workers)

    partitions = []
    for worker in range(num_workers):
        combined = np.concatenate([sorted_chunks[worker], iid_chunks[worker]])
        partitions.append(np.sort(combined))
    return partitions


def noniid_label_partition(
    labels: np.ndarray,
    num_workers: int,
    label: int,
    num_holders: Optional[int] = None,
    seed=None,
) -> List[np.ndarray]:
    """The paper's "Non-IID: Label Y" scheme.

    All samples of class ``label`` go to ``num_holders`` workers (default:
    roughly 10 % of the workers, at least one); the remaining samples are
    distributed IID across all workers.
    """
    labels = np.asarray(labels)
    _check_workers(labels.shape[0], num_workers)
    if label < 0 or label not in set(np.unique(labels)):
        raise DataError(f"label {label} does not occur in the dataset")
    if num_holders is None:
        num_holders = max(1, num_workers // 10)
    if not 1 <= num_holders <= num_workers:
        raise DataError(
            f"num_holders must lie in [1, {num_workers}], got {num_holders}"
        )
    rng = as_rng(seed)
    label_indices = np.flatnonzero(labels == label)
    other_indices = np.flatnonzero(labels != label)
    rng.shuffle(label_indices)
    rng.shuffle(other_indices)

    holders = rng.choice(num_workers, size=num_holders, replace=False)
    label_chunks = np.array_split(label_indices, num_holders)
    other_chunks = np.array_split(other_indices, num_workers)

    partitions: List[np.ndarray] = [other_chunks[worker] for worker in range(num_workers)]
    for holder_position, worker in enumerate(holders):
        partitions[worker] = np.concatenate([partitions[worker], label_chunks[holder_position]])
    return [np.sort(part) for part in partitions]


def dirichlet_partition(
    labels: np.ndarray, num_workers: int, alpha: float = 0.5, seed=None
) -> List[np.ndarray]:
    """Dirichlet(α) label-distribution partition (smaller α = more heterogeneous)."""
    labels = np.asarray(labels)
    _check_workers(labels.shape[0], num_workers)
    if alpha <= 0:
        raise DataError(f"alpha must be positive, got {alpha}")
    rng = as_rng(seed)
    num_classes = int(labels.max()) + 1
    buckets: List[List[int]] = [[] for _ in range(num_workers)]
    for class_index in range(num_classes):
        class_indices = np.flatnonzero(labels == class_index)
        rng.shuffle(class_indices)
        proportions = rng.dirichlet(np.full(num_workers, alpha))
        # Convert proportions to split points over this class's samples.
        cuts = (np.cumsum(proportions)[:-1] * class_indices.shape[0]).astype(int)
        for worker, chunk in enumerate(np.split(class_indices, cuts)):
            buckets[worker].extend(chunk.tolist())
    partitions = []
    for worker in range(num_workers):
        if not buckets[worker]:
            # Guarantee every worker holds at least one sample by stealing from
            # the largest bucket (keeps downstream batch sampling well-defined).
            largest = max(range(num_workers), key=lambda w: len(buckets[w]))
            buckets[worker].append(buckets[largest].pop())
        partitions.append(np.sort(np.asarray(buckets[worker], dtype=np.int64)))
    return partitions


def partition_dataset(
    dataset: Dataset,
    num_workers: int,
    scheme: str = "iid",
    seed=None,
    fraction: float = 0.6,
    label: int = 0,
    num_holders: Optional[int] = None,
    alpha: float = 0.5,
) -> List[Dataset]:
    """Partition ``dataset`` into one :class:`Dataset` per worker.

    ``scheme`` is one of ``"iid"``, ``"noniid-fraction"``, ``"noniid-label"``
    or ``"dirichlet"``; the remaining keyword arguments parameterize the
    chosen scheme (and are ignored by the others).
    """
    if scheme == "iid":
        parts = iid_partition(dataset.y, num_workers, seed)
    elif scheme == "noniid-fraction":
        parts = noniid_sorted_fraction_partition(dataset.y, num_workers, fraction, seed)
    elif scheme == "noniid-label":
        parts = noniid_label_partition(dataset.y, num_workers, label, num_holders, seed)
    elif scheme == "dirichlet":
        parts = dirichlet_partition(dataset.y, num_workers, alpha, seed)
    else:
        raise DataError(
            f"unknown partition scheme {scheme!r}; expected one of "
            "'iid', 'noniid-fraction', 'noniid-label', 'dirichlet'"
        )
    return [
        dataset.subset(indices, name=f"{dataset.name}-worker{worker}")
        for worker, indices in enumerate(parts)
    ]


def partition_statistics(partitions: Sequence[Dataset]) -> Dict[str, object]:
    """Summary statistics of a partition: sizes and per-worker label skew."""
    if not partitions:
        raise DataError("partition_statistics requires at least one partition")
    sizes = np.array([len(part) for part in partitions])
    num_classes = partitions[0].num_classes
    label_fractions = np.zeros((len(partitions), num_classes))
    for worker, part in enumerate(partitions):
        counts = part.class_counts()
        label_fractions[worker] = counts / max(1, counts.sum())
    # Earth-mover-free heterogeneity proxy: mean total-variation distance from
    # the global label distribution.
    global_fraction = label_fractions.mean(axis=0)
    heterogeneity = float(
        0.5 * np.abs(label_fractions - global_fraction).sum(axis=1).mean()
    )
    return {
        "num_workers": len(partitions),
        "sizes": sizes.tolist(),
        "min_size": int(sizes.min()),
        "max_size": int(sizes.max()),
        "heterogeneity": heterogeneity,
    }
