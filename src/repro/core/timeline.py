"""The unified virtual-time engine.

Historically only :class:`~repro.core.async_fda.AsynchronousFDATrainer` owned
a clock, so synchronous FDA, BSP, and the FedOpt baselines could not report
wall-clock numbers at all — yet the paper's headline claim (Figure 12 and the
FL-vs-HPC discussion) is precisely about *time*.  :class:`Timeline` extracts
that clock into one engine shared by every trainer and strategy:

* **lockstep mode** (synchronous protocols): one round advances the clock by
  the *slowest participating worker's* compute time — heterogeneous per-worker
  step durations, optional per-step jitter, and optional per-round dropout
  come from the same :class:`StragglerProfile` the asynchronous trainer uses;
* **event mode** (asynchronous protocols): a completion queue orders worker
  step-finishes in virtual time, exactly the machinery that used to live
  inside the async trainer;
* **communication time**: the cluster's :class:`~repro.distributed.topology.Fabric`
  reports each collective's virtual seconds here, so compute and communication
  accumulate on one comparable clock.

With the default profile (uniform unit step time, no jitter, no stragglers,
no dropout) and no network model, the timeline is a pure observer: byte
counts and parameter trajectories are bit-identical to the pre-timeline code.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ExperimentError
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class StragglerProfile:
    """Per-worker step-duration model.

    Worker ``k``'s step duration is drawn once as
    ``base * (1 + slowdown_k)`` where ``slowdown_k`` is 0 for regular workers
    and ``straggler_factor − 1`` for the chosen stragglers; optional jitter
    adds per-step log-normal noise.
    """

    base_step_seconds: float = 1.0
    straggler_fraction: float = 0.0
    straggler_factor: float = 4.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_step_seconds <= 0:
            raise ConfigurationError(
                f"base_step_seconds must be positive, got {self.base_step_seconds}"
            )
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ConfigurationError(
                f"straggler_fraction must lie in [0, 1], got {self.straggler_fraction}"
            )
        if self.straggler_factor < 1.0:
            raise ConfigurationError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative, got {self.jitter}")

    def step_durations(self, num_workers: int, seed=None) -> np.ndarray:
        """Base step duration per worker (before per-step jitter)."""
        rng = as_rng(seed)
        durations = np.full(num_workers, self.base_step_seconds, dtype=np.float64)
        num_stragglers = int(round(num_workers * self.straggler_fraction))
        if num_stragglers:
            stragglers = rng.choice(num_workers, size=num_stragglers, replace=False)
            durations[stragglers] *= self.straggler_factor
        return durations


#: Alias emphasising that the profile models *compute* heterogeneity.
ComputeProfile = StragglerProfile


class Timeline:
    """One virtual clock for compute and communication.

    ``dropout_rate`` enables partial participation: each lockstep round, every
    worker independently sits out with that probability (at least one worker
    always participates).  Dropped workers neither compute nor gate the
    round's duration — the protocol layer decides what their absence means for
    the collectives.
    """

    def __init__(
        self,
        num_workers: int,
        profile: Optional[StragglerProfile] = None,
        seed=0,
        dropout_rate: float = 0.0,
    ) -> None:
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        if not 0.0 <= dropout_rate < 1.0:
            raise ConfigurationError(
                f"dropout_rate must lie in [0, 1), got {dropout_rate}"
            )
        self.num_workers = int(num_workers)
        self.profile = profile or StragglerProfile()
        self.dropout_rate = float(dropout_rate)
        self._rng = as_rng(seed)
        self._durations = self.profile.step_durations(self.num_workers, seed=self._rng)
        self.now = 0.0
        self.compute_seconds = 0.0
        self.comm_seconds = 0.0
        self.rounds_advanced = 0
        # Churn ledger: (time, "crash" | "rejoin", worker_id) events recorded
        # by the fault-injection plane, in virtual-time order.
        self.churn_events: List[Tuple[float, str, int]] = []
        # Event mode: a heap of (completion_time, worker_id, seq) step
        # completions.  The tie-break is part of the contract, not an accident
        # of heap layout: equal completion times pop in ascending worker id,
        # and two completions of the *same* worker at the same instant pop in
        # scheduling (FIFO) order via the monotone sequence number.
        self._queue: List[Tuple[float, int, int]] = []
        self._event_seq = 0

    # -- durations -------------------------------------------------------------

    @property
    def step_durations(self) -> np.ndarray:
        """Per-worker base step durations (a copy; jitter is drawn per step)."""
        return self._durations.copy()

    def step_duration(self, worker_id: int) -> float:
        """One step's duration for ``worker_id``, with fresh jitter if enabled."""
        duration = float(self._durations[worker_id])
        if self.profile.jitter:
            duration *= float(np.exp(self._rng.normal(scale=self.profile.jitter)))
        return duration

    # -- participation ---------------------------------------------------------

    @property
    def perturbed(self) -> bool:
        """Whether this timeline can alter protocol behaviour (dropout enabled)."""
        return self.dropout_rate > 0.0

    def sample_participation(self) -> Optional[np.ndarray]:
        """Boolean participation mask for one round, or ``None`` when everyone runs.

        With ``dropout_rate == 0`` no randomness is consumed, keeping default
        trajectories bit-identical to the pre-timeline code.  The mask flows
        into ``cluster.step_all(active=...)``, which both execution engines
        honour (the batched engine steps only the active rows of its stacked
        matrices); protocols sample once per lockstep step — FDA, BSP, and
        Local-SGD all draw from this one stream, so engine choice can never
        shift which workers participate.
        """
        if not self.dropout_rate:
            return None
        mask = self._rng.random(self.num_workers) >= self.dropout_rate
        if not mask.any():
            mask[int(self._rng.integers(self.num_workers))] = True
        return mask

    # -- lockstep mode ----------------------------------------------------------

    def advance_round(self, steps: int = 1, active: Optional[np.ndarray] = None) -> float:
        """Advance the clock by ``steps`` lockstep compute steps.

        The round lasts as long as the slowest *participating* worker: with a
        jitter-free profile that is ``steps * max(durations[active])``; with
        jitter each step draws fresh per-worker noise.  Returns the elapsed
        virtual seconds.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        if steps == 0:
            return 0.0
        durations = self._durations if active is None else self._durations[active]
        if durations.size == 0:
            return 0.0
        if self.profile.jitter:
            noise = np.exp(
                self._rng.normal(scale=self.profile.jitter, size=(steps, durations.size))
            )
            elapsed = float((durations * noise).max(axis=1).sum())
        else:
            elapsed = float(steps) * float(durations.max())
        self.now += elapsed
        self.compute_seconds += elapsed
        self.rounds_advanced += 1
        return elapsed

    # -- event mode -------------------------------------------------------------

    def schedule_step(self, worker_id: int, start_time: Optional[float] = None) -> float:
        """Schedule ``worker_id``'s next step completion; returns its time.

        Completions with equal times are guaranteed to pop in ascending
        worker id (and, within one worker, in scheduling order) — protocol
        trajectories must not depend on how the heap happens to lay out ties.
        """
        if not 0 <= worker_id < self.num_workers:
            raise ConfigurationError(
                f"worker_id must lie in [0, {self.num_workers}), got {worker_id}"
            )
        start = self.now if start_time is None else float(start_time)
        completion = start + self.step_duration(worker_id)
        heapq.heappush(self._queue, (completion, worker_id, self._event_seq))
        self._event_seq += 1
        return completion

    def next_completion_time(self) -> Optional[float]:
        """The virtual time of the earliest pending completion (or ``None``)."""
        return self._queue[0][0] if self._queue else None

    def pop_completion(self) -> Tuple[float, int]:
        """Advance the clock to the next completion and return ``(time, worker)``."""
        if not self._queue:
            raise ExperimentError("no pending step completions in the timeline")
        completion_time, worker_id, _ = heapq.heappop(self._queue)
        elapsed = completion_time - self.now
        self.now = completion_time
        self.compute_seconds += max(elapsed, 0.0)
        return completion_time, worker_id

    def delay_pending(self, seconds: float) -> None:
        """Push every pending completion ``seconds`` into the future (a barrier)."""
        if seconds <= 0:
            return
        self._queue = [(time + seconds, worker, seq) for time, worker, seq in self._queue]
        heapq.heapify(self._queue)

    # -- communication & bookkeeping --------------------------------------------

    def add_communication(self, seconds: float) -> None:
        """Account virtual seconds spent communicating (reported by the fabric).

        In event mode the collective acts as a barrier: pending completions are
        delayed by the same amount.
        """
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        if seconds == 0.0:
            return
        self.now += seconds
        self.comm_seconds += seconds
        if self._queue:
            self.delay_pending(seconds)

    def note_communication(self, seconds: float) -> None:
        """Record communication seconds in the ledger without moving the clock.

        Used for point-to-point traffic whose delay is paid by a single sender
        (the asynchronous state uploads): the caller folds the delay into that
        worker's next completion, and this keeps the compute/communication
        split consistent with the fabric's own ledger.
        """
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        self.comm_seconds += seconds

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (idle wait); never backwards."""
        if time > self.now:
            self.now = float(time)

    # -- churn ------------------------------------------------------------------

    def record_churn(self, kind: str, worker_id: int) -> None:
        """Append one crash/rejoin event to the churn ledger at the current time."""
        if kind not in ("crash", "rejoin"):
            raise ConfigurationError(f"unknown churn event kind {kind!r}")
        self.churn_events.append((self.now, kind, int(worker_id)))

    def stall(self, seconds: float) -> None:
        """Stretch the current round's compute critical path by ``seconds``.

        Used for transient straggler spikes injected by the faults plane: the
        spiked worker gates the lockstep barrier, so everyone waits.
        """
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        if seconds == 0.0:
            return
        self.now += seconds
        self.compute_seconds += seconds
        if self._queue:
            self.delay_pending(seconds)

    def __repr__(self) -> str:
        return (
            f"Timeline(K={self.num_workers}, t={self.now:.2f}, "
            f"compute={self.compute_seconds:.2f}s, comm={self.comm_seconds:.2f}s)"
        )
