"""Algorithm 1 of the paper: the Federated Dynamic Averaging trainer.

Each FDA step performs, on every worker in parallel:

1. one local optimization step on a fresh mini-batch,
2. computation of the local drift ``u_t^{(k)} = w_t^{(k)} − w_{t0}`` (the
   difference from the model shared at the last synchronization),
3. construction of the variant-specific local state,
4. an AllReduce of the (small) local states,
5. evaluation of the variance over-estimate ``H(S̄_t)``; if it exceeds the
   threshold Θ the models are synchronized with a (large) AllReduce,
   re-establishing the Round Invariant ``Var(w_t) ≤ Θ``.

The trainer charges both collectives to the cluster's communication tracker
under separate categories so the experiment harness can report the paper's
communication metric exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.monitor import VarianceMonitor
from repro.core.state import average_states
from repro.core.theta import DynamicThetaController
from repro.distributed.cluster import CATEGORY_STATE, SimulatedCluster
from repro.exceptions import ConfigurationError

#: A synchronizer takes no arguments and returns the new global parameter vector.
Synchronizer = Callable[[], np.ndarray]


@dataclass(frozen=True)
class FdaStepResult:
    """Everything observable about one FDA step."""

    step: int
    mean_loss: float
    variance_estimate: float
    threshold: float
    synchronized: bool
    communication_bytes: int
    parallel_steps: int
    virtual_time: float = 0.0
    active_workers: int = 0


class FDATrainer:
    """Drives a :class:`SimulatedCluster` with the FDA protocol (Algorithm 1)."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        monitor: VarianceMonitor,
        threshold: float,
        sync_buffers: bool = True,
        theta_controller: Optional[DynamicThetaController] = None,
        synchronizer: Optional[Synchronizer] = None,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError(f"threshold (Theta) must be non-negative, got {threshold}")
        self.cluster = cluster
        self.monitor = monitor
        self.threshold = float(threshold)
        self.sync_buffers = bool(sync_buffers)
        self.theta_controller = theta_controller
        # The synchronizer performs the actual model exchange when the variance
        # estimate exceeds Theta.  The default is cluster.synchronize — exact
        # AllReduce, or the compressed drift exchange when the cluster carries
        # collective-level compression (Section 2: FDA is orthogonal to
        # compression); a custom callable can still be plugged in instead.
        self._synchronizer = synchronizer
        self.step_count = 0
        self.synchronization_count = 0
        self.last_estimate: Optional[float] = None
        self.history: List[FdaStepResult] = []
        # Reusable (K, d) scratch for the per-step drift matrix; its rows only
        # live within one step (states are averaged before the next step).
        self._drift_scratch = np.empty(
            (cluster.num_workers, cluster.model_dimension), dtype=cluster.dtype
        )
        # Last-known local state per worker, kept only under worker churn: a
        # dead worker cannot report, so the variance estimate substitutes its
        # most recent (stale) state until it rejoins.  ``None`` rows mean the
        # worker never reported (it died before its first state).
        self._stale_states: Optional[List[Optional[object]]] = None
        # All workers start from a common global model w_0 (Algorithm 1, line 1).
        initial = cluster.workers[0].get_parameters()
        cluster.broadcast_parameters(initial)
        self._reference = initial            # w_{t0}: model after most recent sync
        self._previous_reference = initial   # w_{t−1}: model after 2nd most recent sync

    # -- properties --------------------------------------------------------------

    @property
    def reference_parameters(self) -> np.ndarray:
        """The shared model after the most recent synchronization (``w_{t0}``)."""
        return self._reference.copy()

    @property
    def state_elements_per_step(self) -> int:
        """Float32 elements AllReduced per step for the local states."""
        return self.monitor.state_num_elements(self.cluster.model_dimension)

    # -- the protocol -------------------------------------------------------------

    def step(self) -> FdaStepResult:
        """Run one FDA step across all workers and return its observables."""
        bytes_before = self.cluster.total_bytes
        # Partial participation (timeline dropout): inactive workers neither
        # compute nor report a state this step.  With the default timeline the
        # mask is None and every worker runs — the paper's lockstep protocol.
        # Either engine honours the mask: the sequential engine loops over the
        # active workers, the batched engine executes only the active rows of
        # its (K, d) matrices (inactive rows stay bit-untouched).
        active = self.cluster.timeline.sample_participation()
        population = self.cluster.population_mask
        if population is not None:
            # Partial cohorts (population plane): unbound slots hold stale
            # client state and neither step nor report a local drift state.
            active = population.copy() if active is None else active & population
        mean_loss = self.cluster.step_all(active=active)

        # Local states from the drifts relative to the last synchronization
        # point; one vectorized (K, d) subtraction, monitors consume the rows.
        drifts = self.cluster.drift_matrix(self._reference, out=self._drift_scratch)
        alive = self.cluster.alive_mask
        if alive is not None:
            # Worker churn: dead workers cannot report a local state, so the
            # estimate substitutes their last-known (stale) state — the
            # monitor still sees one state per ever-reporting worker, keeping
            # the variance over-estimate property (stale drifts only make the
            # estimate more conservative).
            states, num_active = self._states_under_churn(drifts, active, alive)
        elif active is None:
            # The monitor consumes the whole drift matrix and batches what it
            # can without changing bits (e.g. the flat-bincount sketch of all
            # rows); its contract makes every state bit-identical to a
            # per-row local_state call, so this one path serves both engines
            # — sync decisions, byte ledgers, and the golden trajectories are
            # unaffected by the engine choice.
            states = self.monitor.local_states(drifts)
            num_active = self.cluster.num_workers
        else:
            states = [
                self.monitor.local_state(drift)
                for drift, is_active in zip(drifts, active)
                if is_active
            ]
            num_active = len(states)
        if states:
            # AllReduce of the local states (charged as small "fda-state"
            # traffic, routed through the fabric's topology and network).
            self.cluster.charge_allreduce(self.state_elements_per_step, CATEGORY_STATE)
            averaged = average_states(states)
            estimate = self.monitor.estimate(averaged)
        else:
            # Only reachable under churn: every contributor is dead and none
            # ever reported.  No state traffic, no sync decision this step.
            estimate = self.last_estimate if self.last_estimate is not None else 0.0
        self.last_estimate = float(estimate)

        synchronized = bool(states) and estimate > self.threshold
        if synchronized:
            self._complete_synchronization()

        if self.theta_controller is not None:
            self.threshold = self.theta_controller.update(
                self.threshold,
                step_bytes=self.cluster.total_bytes - bytes_before,
                synchronized=synchronized,
            )

        self.step_count += 1
        result = FdaStepResult(
            step=self.step_count,
            mean_loss=float(mean_loss),
            variance_estimate=float(estimate),
            threshold=float(self.threshold),
            synchronized=bool(synchronized),
            communication_bytes=int(self.cluster.total_bytes - bytes_before),
            parallel_steps=self.cluster.parallel_steps,
            virtual_time=float(self.cluster.virtual_time),
            active_workers=num_active,
        )
        self.history.append(result)
        return result

    def _states_under_churn(self, drifts, active, alive):
        """Per-worker states with stale substitution for dead workers.

        Alive (and participation-active) workers report fresh states computed
        from *copies* of their drift rows — the rows live in a reusable
        scratch buffer, and exact-variant states keep zero-copy views, so
        retained states must own their memory.  Dead workers contribute their
        most recent retained state; workers that died before ever reporting
        contribute nothing.  Returns ``(states, num_fresh)``.
        """
        if self._stale_states is None:
            self._stale_states = [None] * self.cluster.num_workers
        num_fresh = 0
        states = []
        for worker_id in range(self.cluster.num_workers):
            if alive[worker_id] and (active is None or active[worker_id]):
                state = self.monitor.local_state(np.array(drifts[worker_id]))
                self._stale_states[worker_id] = state
                states.append(state)
                num_fresh += 1
            elif not alive[worker_id] and self._stale_states[worker_id] is not None:
                states.append(self._stale_states[worker_id])
        return states, num_fresh

    def run_steps(self, num_steps: int) -> List[FdaStepResult]:
        """Run ``num_steps`` FDA steps and return their results."""
        if num_steps < 0:
            raise ConfigurationError(f"num_steps must be non-negative, got {num_steps}")
        return [self.step() for _ in range(num_steps)]

    def _synchronize(self) -> np.ndarray:
        """Run the configured synchronizer (exact AllReduce by default)."""
        if self._synchronizer is not None:
            return self._synchronizer()
        return self.cluster.synchronize(include_buffers=self.sync_buffers)

    def _complete_synchronization(self) -> np.ndarray:
        """Exchange models and rotate the protocol bookkeeping.

        The single place that performs the monitor notification, reference
        rotation (``w_{t-1} ← w_{t0} ← w̄``), and counter update — shared by
        the in-protocol trigger (:meth:`step`) and the explicit
        :meth:`force_synchronization`.
        """
        new_global = self._synchronize()
        self.monitor.on_synchronization(new_global, self._previous_reference)
        self._previous_reference = self._reference
        self._reference = new_global
        self.synchronization_count += 1
        return new_global

    def force_synchronization(self) -> np.ndarray:
        """Synchronize immediately regardless of the variance estimate.

        Used by callers that want a final consolidation before evaluating the
        global model (e.g. at the very end of training).
        """
        return self._complete_synchronization()

    @property
    def synchronization_rate(self) -> float:
        """Fraction of steps that triggered a synchronization so far."""
        if self.step_count == 0:
            return 0.0
        return self.synchronization_count / self.step_count

    def __repr__(self) -> str:
        return (
            f"FDATrainer(variant={self.monitor.name!r}, theta={self.threshold}, "
            f"steps={self.step_count}, syncs={self.synchronization_count})"
        )
