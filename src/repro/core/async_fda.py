"""Asynchronous FDA (Section 3.3 of the paper).

The synchronous FDA protocol assumes all workers advance in lockstep, which a
single straggler can stall.  The paper sketches an asynchronous variant: one
node acts as a *coordinator*, each worker sends its small local state to the
coordinator whenever it finishes a local step, and the coordinator evaluates
the variance over-estimate on the **most recent state from every worker**.
When the estimate exceeds Θ the coordinator orders a synchronization; because
local states are tiny, the benefit is not bandwidth but tolerance to stragglers
— fast workers keep learning while slow workers catch up.

:class:`AsynchronousFDATrainer` simulates that protocol on the shared
:class:`~repro.core.timeline.Timeline` engine: every worker has its own step
duration (drawn from a configurable straggler profile), worker step
completions are processed in virtual-time order from the timeline's event
queue, state uploads and synchronizations are charged through the cluster's
communication fabric, and the accounting matches the synchronous trainer so
results are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.monitor import VarianceMonitor
from repro.core.state import LocalState, average_states
from repro.core.timeline import StragglerProfile, Timeline
from repro.distributed.cluster import CATEGORY_STATE, SimulatedCluster
from repro.exceptions import ConfigurationError

__all__ = ["AsyncEvent", "AsynchronousFDATrainer", "StragglerProfile"]


@dataclass(frozen=True)
class AsyncEvent:
    """One processed worker-step completion in the virtual timeline."""

    time: float
    worker_id: int
    step_index: int
    variance_estimate: float
    synchronized: bool


class AsynchronousFDATrainer:
    """Coordinator-based asynchronous FDA over a :class:`SimulatedCluster`.

    The trainer drives the cluster's timeline.  Precedence: an explicit
    ``timeline`` argument is installed on the cluster; otherwise an explicit
    ``profile`` builds a fresh :class:`~repro.core.timeline.Timeline` from it
    and ``seed``; otherwise the cluster's own timeline is used as-is — so a
    straggler/dropout timeline configured via
    ``WorkloadConfig.with_timeline``/``build_cluster`` is honoured.  Either
    way, communication charged by the fabric and compute completions advance
    the same clock.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        monitor: VarianceMonitor,
        threshold: float,
        profile: Optional[StragglerProfile] = None,
        seed: int = 0,
        timeline: Optional[Timeline] = None,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError(f"threshold (Theta) must be non-negative, got {threshold}")
        self.cluster = cluster
        self.monitor = monitor
        self.threshold = float(threshold)
        if timeline is not None:
            if timeline.num_workers != cluster.num_workers:
                raise ConfigurationError(
                    f"timeline models {timeline.num_workers} workers, "
                    f"cluster has {cluster.num_workers}"
                )
            self.timeline = timeline
        elif profile is not None:
            self.timeline = Timeline(cluster.num_workers, profile=profile, seed=seed)
        else:
            self.timeline = cluster.timeline
        cluster.timeline = self.timeline
        self.profile = self.timeline.profile
        self.synchronization_count = 0
        self.events: List[AsyncEvent] = []
        self._latest_states: Dict[int, LocalState] = {}
        initial = cluster.workers[0].get_parameters()
        cluster.broadcast_parameters(initial)
        self._reference = initial
        self._previous_reference = initial
        for worker_id in range(cluster.num_workers):
            self.timeline.schedule_step(worker_id, start_time=0.0)

    # -- internals -------------------------------------------------------------

    @property
    def virtual_time(self) -> float:
        """The current virtual clock (delegates to the shared timeline)."""
        return self.timeline.now

    @property
    def state_elements(self) -> int:
        """Float32 elements uploaded to the coordinator per completed worker step."""
        return self.monitor.state_num_elements(self.cluster.model_dimension)

    # -- the protocol ------------------------------------------------------------

    def process_next_completion(self) -> AsyncEvent:
        """Advance virtual time to the next worker-step completion and handle it.

        The step is routed through the cluster's execution engine via
        ``engine.step_worker``: the sequential engine runs the worker's own
        Python-loop step, the batched engine runs the same step as a
        single-row slice of its stacked kernels (one-row GEMMs, the worker's
        own sampler/dropout RNG streams, its own optimizer-state row).  The
        per-worker arithmetic is identical, so asynchronous trajectories are
        engine-independent.
        """
        _, worker_id = self.timeline.pop_completion()
        worker = self.cluster.workers[worker_id]
        self.cluster.engine.step_worker(worker_id)

        # The worker uploads its local state to the coordinator — point-to-point
        # traffic routed through the fabric (one hop on the star; more on
        # multi-hop topologies).  The drift is one row-wise subtraction off the
        # worker's parameter-plane view (its row of the cluster's matrix).
        state = self.monitor.local_state(worker.drift_from(self._reference))
        self._latest_states[worker_id] = state
        upload = self.cluster.charge_upload(self.state_elements, CATEGORY_STATE, worker_id)

        synchronized = False
        estimate = float("nan")
        if len(self._latest_states) == self.cluster.num_workers:
            averaged = average_states(
                [self._latest_states[w] for w in range(self.cluster.num_workers)]
            )
            estimate = float(self.monitor.estimate(averaged))
            if estimate > self.threshold:
                # The synchronization is a barrier: the fabric's virtual
                # seconds (if a network model is configured) delay every
                # pending completion via the shared timeline.
                new_global = self.cluster.synchronize()
                self.monitor.on_synchronization(new_global, self._previous_reference)
                self._previous_reference = self._reference
                self._reference = new_global
                self._latest_states.clear()
                self.synchronization_count += 1
                synchronized = True

        # The sender also pays its own upload latency before starting the next
        # local step (zero without a network model).
        self.timeline.schedule_step(
            worker_id, start_time=self.timeline.now + upload.seconds
        )
        event = AsyncEvent(
            time=self.timeline.now,
            worker_id=worker_id,
            step_index=worker.steps_performed,
            variance_estimate=estimate,
            synchronized=synchronized,
        )
        self.events.append(event)
        return event

    def run_for(self, virtual_seconds: float) -> List[AsyncEvent]:
        """Process completions until the virtual clock passes ``virtual_seconds``."""
        if virtual_seconds <= 0:
            raise ConfigurationError(
                f"virtual_seconds must be positive, got {virtual_seconds}"
            )
        deadline = self.timeline.now + virtual_seconds
        processed: List[AsyncEvent] = []
        while True:
            next_time = self.timeline.next_completion_time()
            if next_time is None or next_time > deadline:
                break
            processed.append(self.process_next_completion())
        self.timeline.advance_to(deadline)
        return processed

    def run_events(self, num_events: int) -> List[AsyncEvent]:
        """Process exactly ``num_events`` worker-step completions."""
        if num_events < 0:
            raise ConfigurationError(f"num_events must be non-negative, got {num_events}")
        return [self.process_next_completion() for _ in range(num_events)]

    # -- reporting ----------------------------------------------------------------

    def steps_by_worker(self) -> Sequence[int]:
        """Steps completed by each worker (unequal in the presence of stragglers)."""
        return [worker.steps_performed for worker in self.cluster.workers]

    @property
    def total_steps(self) -> int:
        """Total step completions processed so far (across all workers)."""
        return int(sum(self.steps_by_worker()))

    def __repr__(self) -> str:
        return (
            f"AsynchronousFDATrainer(theta={self.threshold}, t={self.virtual_time:.1f}, "
            f"events={len(self.events)}, syncs={self.synchronization_count})"
        )
