"""Asynchronous FDA (Section 3.3 of the paper).

The synchronous FDA protocol assumes all workers advance in lockstep, which a
single straggler can stall.  The paper sketches an asynchronous variant: one
node acts as a *coordinator*, each worker sends its small local state to the
coordinator whenever it finishes a local step, and the coordinator evaluates
the variance over-estimate on the **most recent state from every worker**.
When the estimate exceeds Θ the coordinator orders a synchronization; because
local states are tiny, the benefit is not bandwidth but tolerance to stragglers
— fast workers keep learning while slow workers catch up.

:class:`AsynchronousFDATrainer` simulates that protocol with a virtual clock:
every worker has its own step duration (drawn from a configurable straggler
profile), worker step completions are processed in virtual-time order, and the
communication/step accounting matches the synchronous trainer so results are
directly comparable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.monitor import VarianceMonitor
from repro.core.state import LocalState, average_states
from repro.distributed.cluster import CATEGORY_STATE, SimulatedCluster
from repro.exceptions import ConfigurationError
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class AsyncEvent:
    """One processed worker-step completion in the virtual timeline."""

    time: float
    worker_id: int
    step_index: int
    variance_estimate: float
    synchronized: bool


@dataclass(frozen=True)
class StragglerProfile:
    """Per-worker step-duration model.

    Worker ``k``'s step duration is drawn once as
    ``base * (1 + slowdown_k)`` where ``slowdown_k`` is 0 for regular workers
    and ``straggler_factor − 1`` for the chosen stragglers; optional jitter
    adds per-step log-normal noise.
    """

    base_step_seconds: float = 1.0
    straggler_fraction: float = 0.0
    straggler_factor: float = 4.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_step_seconds <= 0:
            raise ConfigurationError(
                f"base_step_seconds must be positive, got {self.base_step_seconds}"
            )
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ConfigurationError(
                f"straggler_fraction must lie in [0, 1], got {self.straggler_fraction}"
            )
        if self.straggler_factor < 1.0:
            raise ConfigurationError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative, got {self.jitter}")

    def step_durations(self, num_workers: int, seed=None) -> np.ndarray:
        """Base step duration per worker (before per-step jitter)."""
        rng = as_rng(seed)
        durations = np.full(num_workers, self.base_step_seconds, dtype=np.float64)
        num_stragglers = int(round(num_workers * self.straggler_fraction))
        if num_stragglers:
            stragglers = rng.choice(num_workers, size=num_stragglers, replace=False)
            durations[stragglers] *= self.straggler_factor
        return durations


class AsynchronousFDATrainer:
    """Coordinator-based asynchronous FDA over a :class:`SimulatedCluster`."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        monitor: VarianceMonitor,
        threshold: float,
        profile: Optional[StragglerProfile] = None,
        seed: int = 0,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError(f"threshold (Theta) must be non-negative, got {threshold}")
        self.cluster = cluster
        self.monitor = monitor
        self.threshold = float(threshold)
        self.profile = profile or StragglerProfile()
        self._rng = as_rng(seed)
        self.virtual_time = 0.0
        self.synchronization_count = 0
        self.events: List[AsyncEvent] = []
        self._latest_states: Dict[int, LocalState] = {}
        initial = cluster.workers[0].get_parameters()
        cluster.broadcast_parameters(initial)
        self._reference = initial
        self._previous_reference = initial
        self._durations = self.profile.step_durations(cluster.num_workers, seed=self._rng)
        # Event queue of (completion_time, tiebreak, worker_id).
        self._queue: List = []
        for worker_id in range(cluster.num_workers):
            heapq.heappush(self._queue, (self._next_duration(worker_id), worker_id, worker_id))

    # -- internals -------------------------------------------------------------

    def _next_duration(self, worker_id: int) -> float:
        duration = float(self._durations[worker_id])
        if self.profile.jitter:
            duration *= float(np.exp(self._rng.normal(scale=self.profile.jitter)))
        return duration

    @property
    def state_elements(self) -> int:
        """Float32 elements uploaded to the coordinator per completed worker step."""
        return self.monitor.state_num_elements(self.cluster.model_dimension)

    # -- the protocol ------------------------------------------------------------

    def process_next_completion(self) -> AsyncEvent:
        """Advance virtual time to the next worker-step completion and handle it."""
        completion_time, _, worker_id = heapq.heappop(self._queue)
        self.virtual_time = completion_time
        worker = self.cluster.workers[worker_id]
        worker.local_step()

        # The worker uploads its local state to the coordinator (point-to-point,
        # one state's worth of traffic rather than a full AllReduce).  The
        # drift is one row-wise subtraction off the worker's parameter-plane
        # view (its row of the cluster's parameter matrix).
        state = self.monitor.local_state(worker.drift_from(self._reference))
        self._latest_states[worker_id] = state
        self.cluster.tracker.record_broadcast(self.state_elements, 2, CATEGORY_STATE)

        synchronized = False
        estimate = float("nan")
        if len(self._latest_states) == self.cluster.num_workers:
            averaged = average_states(
                [self._latest_states[w] for w in range(self.cluster.num_workers)]
            )
            estimate = float(self.monitor.estimate(averaged))
            if estimate > self.threshold:
                new_global = self.cluster.synchronize()
                self.monitor.on_synchronization(new_global, self._previous_reference)
                self._previous_reference = self._reference
                self._reference = new_global
                self._latest_states.clear()
                self.synchronization_count += 1
                synchronized = True

        heapq.heappush(
            self._queue,
            (self.virtual_time + self._next_duration(worker_id), worker_id, worker_id),
        )
        event = AsyncEvent(
            time=self.virtual_time,
            worker_id=worker_id,
            step_index=worker.steps_performed,
            variance_estimate=estimate,
            synchronized=synchronized,
        )
        self.events.append(event)
        return event

    def run_for(self, virtual_seconds: float) -> List[AsyncEvent]:
        """Process completions until the virtual clock passes ``virtual_seconds``."""
        if virtual_seconds <= 0:
            raise ConfigurationError(
                f"virtual_seconds must be positive, got {virtual_seconds}"
            )
        deadline = self.virtual_time + virtual_seconds
        processed: List[AsyncEvent] = []
        while self._queue and self._queue[0][0] <= deadline:
            processed.append(self.process_next_completion())
        self.virtual_time = max(self.virtual_time, deadline)
        return processed

    def run_events(self, num_events: int) -> List[AsyncEvent]:
        """Process exactly ``num_events`` worker-step completions."""
        if num_events < 0:
            raise ConfigurationError(f"num_events must be non-negative, got {num_events}")
        return [self.process_next_completion() for _ in range(num_events)]

    # -- reporting ----------------------------------------------------------------

    def steps_by_worker(self) -> Sequence[int]:
        """Steps completed by each worker (unequal in the presence of stragglers)."""
        return [worker.steps_performed for worker in self.cluster.workers]

    @property
    def total_steps(self) -> int:
        """Total step completions processed so far (across all workers)."""
        return int(sum(self.steps_by_worker()))

    def __repr__(self) -> str:
        return (
            f"AsynchronousFDATrainer(theta={self.threshold}, t={self.virtual_time:.1f}, "
            f"events={len(self.events)}, syncs={self.synchronization_count})"
        )
