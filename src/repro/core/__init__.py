"""The paper's primary contribution: Federated Dynamic Averaging (FDA).

``repro.core`` contains the drift/variance algebra (Section 3), the local
states and variance monitors that define the SketchFDA and LinearFDA variants
(Sections 3.1 and 3.2), the :class:`FDATrainer` implementing Algorithm 1, and
the Θ-selection utilities corresponding to Figure 12 plus the dynamic-Θ
controller sketched in the paper's future-work section.
"""

from repro.core.variance import (
    drift_matrix,
    model_variance,
    variance_from_drifts,
)
from repro.core.state import (
    ExactState,
    LinearState,
    LocalState,
    SketchState,
    average_states,
)
from repro.core.monitor import (
    ExactMonitor,
    LinearMonitor,
    SketchMonitor,
    VarianceMonitor,
    make_monitor,
)
from repro.core.fda import FDATrainer, FdaStepResult
from repro.core.timeline import ComputeProfile, StragglerProfile, Timeline
from repro.core.async_fda import (
    AsyncEvent,
    AsynchronousFDATrainer,
)
from repro.core.theta import (
    DynamicThetaController,
    ThetaGuideline,
    fit_theta_slope,
    theta_guideline,
)

__all__ = [
    "model_variance",
    "variance_from_drifts",
    "drift_matrix",
    "LocalState",
    "SketchState",
    "LinearState",
    "ExactState",
    "average_states",
    "VarianceMonitor",
    "SketchMonitor",
    "LinearMonitor",
    "ExactMonitor",
    "make_monitor",
    "FDATrainer",
    "FdaStepResult",
    "AsynchronousFDATrainer",
    "AsyncEvent",
    "StragglerProfile",
    "ComputeProfile",
    "Timeline",
    "theta_guideline",
    "ThetaGuideline",
    "fit_theta_slope",
    "DynamicThetaController",
]
