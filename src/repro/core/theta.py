"""Selecting and adapting the variance threshold Θ.

Section 4.3 / Figure 12 of the paper reports that the useful range of Θ grows
linearly with the model dimension ``d`` and gives three empirically fitted
slopes (FL, balanced, HPC).  :func:`theta_guideline` exposes those guidelines,
:func:`fit_theta_slope` re-fits the linear relationship from (d, best-Θ)
pairs (used by the Figure-12 benchmark), and :func:`calibrate_theta` derives a
workload-specific Θ by probing the drift magnitude of a short synchronous run
(the practical recipe for this scaled-down reproduction, whose drift
magnitudes differ from full-size TensorFlow models).

The paper's future-work section sketches adapting Θ online to meet a target
bandwidth budget; :class:`DynamicThetaController` implements that controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: Slopes of the Θ ≈ c·d guidelines reported in Figure 12 of the paper.
PAPER_THETA_SLOPES: Dict[str, float] = {
    "fl": 4.91e-5,
    "balanced": 3.89e-5,
    "hpc": 2.74e-5,
}


@dataclass(frozen=True)
class ThetaGuideline:
    """A linear Θ-versus-d guideline: Θ(d) = slope · d."""

    name: str
    slope: float

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ConfigurationError(f"slope must be positive, got {self.slope}")

    def theta(self, model_dimension: int) -> float:
        """Recommended Θ for a model with ``model_dimension`` parameters."""
        if model_dimension <= 0:
            raise ConfigurationError(
                f"model_dimension must be positive, got {model_dimension}"
            )
        return self.slope * model_dimension


def theta_guideline(model_dimension: int, setting: str = "balanced") -> float:
    """The paper's empirical Θ guideline for a given deployment setting.

    ``setting`` is ``"fl"`` (slow shared channel, favour less communication),
    ``"balanced"``, or ``"hpc"`` (fast interconnect, favour less computation).
    """
    try:
        slope = PAPER_THETA_SLOPES[setting]
    except KeyError:
        raise ConfigurationError(
            f"unknown setting {setting!r}; known: {sorted(PAPER_THETA_SLOPES)}"
        ) from None
    return ThetaGuideline(setting, slope).theta(model_dimension)


def fit_theta_slope(
    model_dimensions: Sequence[int], best_thetas: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares fit of Θ = slope · d through the origin.

    Returns ``(slope, r_squared)``.  Used by the Figure-12 benchmark to verify
    that the best Θ found per learning task grows linearly with the model
    dimension, as the paper reports.
    """
    dims = np.asarray(model_dimensions, dtype=np.float64)
    thetas = np.asarray(best_thetas, dtype=np.float64)
    if dims.shape != thetas.shape or dims.ndim != 1:
        raise ConfigurationError(
            "model_dimensions and best_thetas must be 1-D sequences of equal length"
        )
    if dims.size < 2:
        raise ConfigurationError("at least two (dimension, theta) pairs are required")
    if np.any(dims <= 0):
        raise ConfigurationError("model dimensions must be positive")
    slope = float(np.dot(dims, thetas) / np.dot(dims, dims))
    predictions = slope * dims
    residual = float(np.sum((thetas - predictions) ** 2))
    total = float(np.sum((thetas - thetas.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return slope, r_squared


def calibrate_theta(
    drift_sq_norms: Sequence[float],
    target_sync_interval: int = 20,
) -> float:
    """Derive a workload-specific Θ from observed per-step drift magnitudes.

    ``drift_sq_norms`` are the mean squared drift norms observed over a few
    steps of plain synchronous training (so each entry is roughly the variance
    accumulated by one local step).  Scaling the per-step magnitude by the
    desired number of local steps between synchronizations gives a Θ in the
    right order of magnitude — the practical analogue of the paper's
    exploratory Θ-range search.
    """
    values = np.asarray(list(drift_sq_norms), dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("drift_sq_norms must contain at least one value")
    if np.any(values < 0):
        raise ConfigurationError("drift_sq_norms must be non-negative")
    if target_sync_interval <= 0:
        raise ConfigurationError(
            f"target_sync_interval must be positive, got {target_sync_interval}"
        )
    return float(np.median(values) * target_sync_interval)


class DynamicThetaController:
    """Adapts Θ online to track a target bandwidth budget (paper's future work).

    The controller watches the average bytes transmitted per step over a
    sliding window.  If the consumption exceeds the budget, Θ is increased
    (fewer synchronizations, less bandwidth); if consumption is below the
    budget, Θ is decreased (more synchronizations, faster convergence).  The
    multiplicative adjustment keeps Θ within ``[min_theta, max_theta]``.
    """

    def __init__(
        self,
        target_bytes_per_step: float,
        window: int = 20,
        adjustment: float = 1.1,
        min_theta: float = 1e-12,
        max_theta: float = 1e12,
    ) -> None:
        if target_bytes_per_step <= 0:
            raise ConfigurationError(
                f"target_bytes_per_step must be positive, got {target_bytes_per_step}"
            )
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        if adjustment <= 1.0:
            raise ConfigurationError(f"adjustment must be > 1, got {adjustment}")
        if min_theta <= 0 or max_theta <= min_theta:
            raise ConfigurationError(
                f"need 0 < min_theta < max_theta, got {min_theta}, {max_theta}"
            )
        self.target_bytes_per_step = float(target_bytes_per_step)
        self.window = int(window)
        self.adjustment = float(adjustment)
        self.min_theta = float(min_theta)
        self.max_theta = float(max_theta)
        self._recent_bytes = []
        self.adjustment_count = 0

    def update(self, current_theta: float, step_bytes: float, synchronized: bool) -> float:
        """Observe one step's traffic and return the (possibly adjusted) Θ."""
        del synchronized  # the byte count already reflects whether a sync happened
        self._recent_bytes.append(float(step_bytes))
        if len(self._recent_bytes) < self.window:
            return current_theta
        average = float(np.mean(self._recent_bytes))
        self._recent_bytes = []
        self.adjustment_count += 1
        if average > self.target_bytes_per_step:
            adjusted = current_theta * self.adjustment
        else:
            adjusted = current_theta / self.adjustment
        return float(np.clip(adjusted, self.min_theta, self.max_theta))

    def __repr__(self) -> str:
        return (
            f"DynamicThetaController(target={self.target_bytes_per_step}, "
            f"window={self.window}, adjustment={self.adjustment})"
        )
