"""Variance monitors: the two FDA variants' estimation machinery.

A monitor turns a worker's drift vector into the local state it transmits and
turns the AllReduce-averaged state back into the variance over-estimate
``H(S̄_t)`` from Theorems 3.1 and 3.2:

* :class:`SketchMonitor` — SketchFDA.  The averaged AMS sketches equal the
  sketch of the average drift (linearity), and the M2 estimator recovers
  ‖ū_t‖² within (1 ± ε); dividing by (1 + ε) makes ``H ≥ Var`` hold with
  probability ≥ 1 − δ.
* :class:`LinearMonitor` — LinearFDA.  By Cauchy–Schwarz, |⟨ξ, ū⟩|² ≤ ‖ū‖², so
  subtracting the squared averaged projection always over-estimates the
  variance.  The heuristic ξ is the normalized global drift direction at the
  previous synchronization, which all workers can compute locally.
* :class:`ExactMonitor` — ablation baseline that transmits the full drift and
  therefore computes the exact variance.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.state import ExactState, LinearState, LocalState, SketchState
from repro.exceptions import CommunicationError, ConfigurationError
from repro.sketch.ams import AmsSketch
from repro.utils.rng import as_rng


class VarianceMonitor:
    """Base class: local-state construction plus the H estimation function."""

    #: Human-readable variant name used in experiment reports.
    name = "monitor"

    def local_state(self, drift: np.ndarray) -> LocalState:
        """Build the state a worker transmits for its current drift ``u_t^{(k)}``."""
        raise NotImplementedError

    def local_states(self, drifts: np.ndarray) -> List[LocalState]:
        """All workers' states from the stacked ``(K, d)`` drift matrix.

        The batched execution engine's entry point: subclasses override to
        batch the expensive part (one flat-``bincount`` sketch of all rows
        for SketchFDA) instead of ``K`` independent evaluations.  The default
        falls back to :meth:`local_state` per row, so custom monitors keep
        working unvectorized.

        Contract: row ``k`` of the result must be **bit-identical** to
        ``local_state(drifts[k])``.  The FDA sync decision is a threshold
        comparison on these values, and the engines promise exactly equal
        communication ledgers — so overrides must reduce each row with the
        same operations the scalar path uses (e.g. per-row ``np.dot``, whose
        BLAS reduction order differs bitwise from an ``einsum`` over the
        matrix), batching only computations that are order-identical.
        """
        return [self.local_state(drift) for drift in drifts]

    def estimate(self, average_state: LocalState) -> float:
        """The variance over-estimate ``H(S̄_t)`` from the averaged state."""
        raise NotImplementedError

    def state_num_elements(self, model_dimension: int) -> int:
        """Number of float32 elements per transmitted state (cost accounting)."""
        raise NotImplementedError

    def on_synchronization(self, new_global: np.ndarray, previous_global: np.ndarray) -> None:
        """Hook called by the trainer right after a synchronization.

        ``new_global`` is the model all workers now share, ``previous_global``
        the shared model after the previous synchronization.  The default is a
        no-op; LinearFDA uses it to refresh its heuristic direction ξ.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SketchMonitor(VarianceMonitor):
    """SketchFDA: AMS-sketch-based variance estimation (Theorem 3.1)."""

    name = "sketch"

    def __init__(
        self,
        depth: int = 5,
        width: int = 250,
        seed: int = 0,
        sketch: Optional[AmsSketch] = None,
    ) -> None:
        self.sketch_operator = sketch if sketch is not None else AmsSketch(depth, width, seed)

    @property
    def epsilon(self) -> float:
        """The ε used in the 1/(1+ε) correction of the H function."""
        return self.sketch_operator.epsilon

    def local_state(self, drift: np.ndarray) -> SketchState:
        # Dtype-preserving: a float32 plane's drift is reduced in float32 (the
        # scalar results are Python floats either way); the sketch counters
        # themselves always accumulate in float64 (see repro.sketch.ams).
        drift = np.asarray(drift)
        return SketchState(
            float(np.dot(drift, drift)),
            self.sketch_operator.sketch(drift),
        )

    def local_states(self, drifts: np.ndarray) -> List[SketchState]:
        """All workers' sketch states with one batched sketch of the matrix.

        The sketch — the expensive part — is built for all rows at once
        (``sketch_rows``, bit-identical to per-row sketching because
        ``bincount`` accumulates coordinates in index order either way); the
        squared norms stay per-row ``np.dot`` so each state is bit-identical
        to :meth:`local_state` (see the base-class contract).
        """
        drifts = np.asarray(drifts)
        sketches = self.sketch_operator.sketch_rows(drifts)
        return [
            SketchState(float(np.dot(drift, drift)), sketch)
            for drift, sketch in zip(drifts, sketches)
        ]

    def estimate(self, average_state: LocalState) -> float:
        if not isinstance(average_state, SketchState):
            raise CommunicationError(
                f"SketchMonitor received a {type(average_state).__name__}; expected SketchState"
            )
        norm_estimate = self.sketch_operator.estimate_l2_squared(average_state.sketch)
        return average_state.drift_sq_norm - norm_estimate / (1.0 + self.epsilon)

    def state_num_elements(self, model_dimension: int) -> int:
        del model_dimension
        return 1 + self.sketch_operator.depth * self.sketch_operator.width

    def __repr__(self) -> str:
        return (
            f"SketchMonitor(depth={self.sketch_operator.depth}, "
            f"width={self.sketch_operator.width})"
        )


class LinearMonitor(VarianceMonitor):
    """LinearFDA: scalar-projection variance estimation (Theorem 3.2)."""

    name = "linear"

    def __init__(self, dimension: int, seed: int = 0, initial_direction: Optional[np.ndarray] = None) -> None:
        if dimension <= 0:
            raise ConfigurationError(f"dimension must be positive, got {dimension}")
        self.dimension = int(dimension)
        if initial_direction is not None:
            self.direction = self._normalize(np.asarray(initial_direction, dtype=np.float64))
        else:
            rng = as_rng(seed)
            self.direction = self._normalize(rng.normal(size=self.dimension))

    def _normalize(self, vector: np.ndarray) -> np.ndarray:
        if vector.shape != (self.dimension,):
            raise ConfigurationError(
                f"direction must have shape ({self.dimension},), got {vector.shape}"
            )
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            # A zero ξ is still valid (the projection term vanishes and H reduces
            # to the mean squared drift, a looser but correct over-estimate).
            return np.zeros(self.dimension)
        return vector / norm

    def local_state(self, drift: np.ndarray) -> LinearState:
        # ξ stays float64 (reference-path analysis vector); the projection of
        # a float32 drift promotes to float64 inside the dot reduction.
        drift = np.asarray(drift)
        return LinearState(
            float(np.dot(drift, drift)),
            float(np.dot(self.direction, drift)),
        )

    # LinearFDA's per-row state is two BLAS dot products; a matrix einsum /
    # matrix-vector product would be marginally tidier but reduces in a
    # different order bitwise, which would break the engines' exact-ledger
    # contract (see VarianceMonitor.local_states) — so the base class's
    # per-row fallback, which reuses local_state verbatim, is already the
    # correct batched implementation and no override is defined here.

    def estimate(self, average_state: LocalState) -> float:
        if not isinstance(average_state, LinearState):
            raise CommunicationError(
                f"LinearMonitor received a {type(average_state).__name__}; expected LinearState"
            )
        return average_state.drift_sq_norm - average_state.projection**2

    def state_num_elements(self, model_dimension: int) -> int:
        del model_dimension
        return 2

    def on_synchronization(self, new_global: np.ndarray, previous_global: np.ndarray) -> None:
        """Refresh ξ to the normalized global drift of the last round (Section 3.2)."""
        self.direction = self._normalize(
            np.asarray(new_global, dtype=np.float64) - np.asarray(previous_global, dtype=np.float64)
        )

    def __repr__(self) -> str:
        return f"LinearMonitor(dimension={self.dimension})"


class ExactMonitor(VarianceMonitor):
    """Ablation monitor: transmits the full drift and computes the exact variance."""

    name = "exact"

    def local_state(self, drift: np.ndarray) -> ExactState:
        # No defensive copy: every caller hands over a freshly computed drift
        # (a row of the trainer's per-step drift matrix or a standalone
        # subtraction), so copying here would double the allocation of the
        # largest state variant for nothing — and dtype-preserving asarray
        # keeps a float32 plane's drift rows zero-copy too.
        drift = np.asarray(drift)
        return ExactState(float(np.dot(drift, drift)), drift)

    # The base-class per-row local_states fallback is already right here:
    # local_state keeps each drift row as a zero-copy view, and the squared
    # norm must be the same per-row np.dot either way (exact-ledger
    # contract, see VarianceMonitor.local_states) — no override needed.

    def estimate(self, average_state: LocalState) -> float:
        if not isinstance(average_state, ExactState):
            raise CommunicationError(
                f"ExactMonitor received a {type(average_state).__name__}; expected ExactState"
            )
        average_drift = average_state.drift
        return average_state.drift_sq_norm - float(np.dot(average_drift, average_drift))

    def state_num_elements(self, model_dimension: int) -> int:
        return 1 + int(model_dimension)


def make_monitor(
    variant: str,
    model_dimension: int,
    sketch_depth: int = 5,
    sketch_width: int = 250,
    seed: int = 0,
) -> VarianceMonitor:
    """Factory: build the monitor for an FDA variant name.

    ``variant`` is ``"sketch"`` (SketchFDA), ``"linear"`` (LinearFDA) or
    ``"exact"`` (the ablation baseline).
    """
    if variant == "sketch":
        return SketchMonitor(depth=sketch_depth, width=sketch_width, seed=seed)
    if variant == "linear":
        return LinearMonitor(dimension=model_dimension, seed=seed)
    if variant == "exact":
        return ExactMonitor()
    raise ConfigurationError(
        f"unknown FDA variant {variant!r}; expected 'sketch', 'linear' or 'exact'"
    )
