"""Model-variance algebra (Section 3 of the paper).

The model variance quantifies how far the worker models have drifted apart:

    Var(w_t) = (1/K) Σ_k ‖w_t^{(k)} − w̄_t‖²                      (Eq. 2)

Using the local drifts ``u_t^{(k)} = w_t^{(k)} − w_{t0}`` (difference from the
model at the last synchronization) the variance decomposes into

    Var(w_t) = (1/K) Σ_k ‖u_t^{(k)}‖² − ‖ū_t‖²                    (Eq. 4)

which is the identity both FDA variants monitor: the first term is cheap to
AllReduce (scalars), and the second is what the sketch / linear states
approximate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ShapeError


def _as_matrix(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Stack per-worker vectors into a (K, d) matrix with validation."""
    if len(vectors) == 0:
        raise ShapeError("at least one worker vector is required")
    matrix = np.stack([np.asarray(v, dtype=np.float64) for v in vectors], axis=0)
    if matrix.ndim != 2:
        raise ShapeError(f"worker vectors must be 1-D, got stacked shape {matrix.shape}")
    return matrix


def model_variance(parameters: Sequence[np.ndarray]) -> float:
    """Exact model variance Var(w_t) from the worker parameter vectors (Eq. 2)."""
    matrix = _as_matrix(parameters)
    average = matrix.mean(axis=0)
    deviations = matrix - average
    return float(np.mean(np.sum(deviations * deviations, axis=1)))


def drift_matrix(parameters: Sequence[np.ndarray], reference: np.ndarray) -> np.ndarray:
    """The (K, d) matrix of local drifts ``u_t^{(k)} = w_t^{(k)} − reference``."""
    matrix = _as_matrix(parameters)
    reference = np.asarray(reference, dtype=np.float64)
    if reference.shape != (matrix.shape[1],):
        raise ShapeError(
            f"reference must have shape ({matrix.shape[1]},), got {reference.shape}"
        )
    return matrix - reference


def variance_from_drifts(drifts: Sequence[np.ndarray]) -> float:
    """Model variance computed through the drift decomposition (Eq. 4).

    Equal to :func:`model_variance` of the corresponding parameters for any
    common reference vector — the offset cancels.  The test-suite verifies the
    identity with property-based tests.
    """
    matrix = _as_matrix(drifts)
    mean_sq_norm = float(np.mean(np.sum(matrix * matrix, axis=1)))
    average_drift = matrix.mean(axis=0)
    return mean_sq_norm - float(np.dot(average_drift, average_drift))


def mean_squared_drift_norm(drifts: Sequence[np.ndarray]) -> float:
    """The first term of Eq. 4: (1/K) Σ_k ‖u_t^{(k)}‖²."""
    matrix = _as_matrix(drifts)
    return float(np.mean(np.sum(matrix * matrix, axis=1)))


def average_drift(drifts: Sequence[np.ndarray]) -> np.ndarray:
    """The global drift ū_t = (1/K) Σ_k u_t^{(k)}."""
    matrix = _as_matrix(drifts)
    return matrix.mean(axis=0)
