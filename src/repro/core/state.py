"""Local states transmitted by FDA workers (Figure 2 of the paper).

Both FDA variants transmit the squared norm of the local drift plus a
low-dimensional summary of the drift itself:

* :class:`SketchState` — an AMS sketch of the drift (SketchFDA, Section 3.1);
* :class:`LinearState` — the scalar projection ⟨ξ, u⟩ onto a shared unit
  vector ξ (LinearFDA, Section 3.2);
* :class:`ExactState` — the full drift vector; never used by FDA itself (it
  would cost as much as synchronizing) but provided for ablation benchmarks
  that measure how loose the two practical estimators are.

States form a vector space: they can be averaged element-wise, which is what
the AllReduce of local states computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import CommunicationError, ShapeError


@dataclass(frozen=True)
class LocalState:
    """Base class: any FDA local state carries the squared drift norm."""

    drift_sq_norm: float

    @property
    def num_elements(self) -> int:
        """Number of float32 elements transmitted for this state (for cost accounting)."""
        return 1

    def _combine(
        self, states: Sequence["LocalState"], weights: Optional[np.ndarray] = None
    ) -> "LocalState":
        raise NotImplementedError


@dataclass(frozen=True)
class LinearState(LocalState):
    """LinearFDA state: (‖u‖², ⟨ξ, u⟩)."""

    projection: float = 0.0

    @property
    def num_elements(self) -> int:
        return 2

    def _combine(
        self, states: Sequence["LocalState"], weights: Optional[np.ndarray] = None
    ) -> "LinearState":
        projections = []
        norms = []
        for state in states:
            if not isinstance(state, LinearState):
                raise CommunicationError("cannot average LinearState with other state types")
            projections.append(state.projection)
            norms.append(state.drift_sq_norm)
        if weights is None:
            return LinearState(float(np.mean(norms)), float(np.mean(projections)))
        return LinearState(
            float(np.average(norms, weights=weights)),
            float(np.average(projections, weights=weights)),
        )


@dataclass(frozen=True)
class SketchState(LocalState):
    """SketchFDA state: (‖u‖², AMS sketch of u)."""

    sketch: np.ndarray = None

    def __post_init__(self) -> None:
        if self.sketch is None:
            raise ShapeError("SketchState requires a sketch matrix")
        object.__setattr__(self, "sketch", np.asarray(self.sketch, dtype=np.float64))
        if self.sketch.ndim != 2:
            raise ShapeError(f"sketch must be a 2-D matrix, got shape {self.sketch.shape}")

    @property
    def num_elements(self) -> int:
        return 1 + int(self.sketch.size)

    def _combine(
        self, states: Sequence["LocalState"], weights: Optional[np.ndarray] = None
    ) -> "SketchState":
        norms = []
        sketches = []
        for state in states:
            if not isinstance(state, SketchState):
                raise CommunicationError("cannot average SketchState with other state types")
            if state.sketch.shape != self.sketch.shape:
                raise CommunicationError(
                    f"sketch shapes differ: {state.sketch.shape} vs {self.sketch.shape}"
                )
            norms.append(state.drift_sq_norm)
            sketches.append(state.sketch)
        stacked = np.stack(sketches, axis=0)
        if weights is None:
            return SketchState(float(np.mean(norms)), np.mean(stacked, axis=0))
        return SketchState(
            float(np.average(norms, weights=weights)),
            np.average(stacked, axis=0, weights=weights),
        )


@dataclass(frozen=True)
class ExactState(LocalState):
    """Ablation-only state carrying the full drift vector."""

    drift: np.ndarray = None

    def __post_init__(self) -> None:
        if self.drift is None:
            raise ShapeError("ExactState requires the drift vector")
        # Dtype-preserving: a float32 plane's drift row is kept as a
        # zero-copy view; non-float inputs normalize to the float64 reference.
        drift = np.asarray(self.drift)
        if drift.dtype not in (np.float32, np.float64):
            drift = np.asarray(drift, dtype=np.float64)
        object.__setattr__(self, "drift", drift)
        if self.drift.ndim != 1:
            raise ShapeError(f"drift must be a 1-D vector, got shape {self.drift.shape}")

    @property
    def num_elements(self) -> int:
        return 1 + int(self.drift.size)

    def _combine(
        self, states: Sequence["LocalState"], weights: Optional[np.ndarray] = None
    ) -> "ExactState":
        norms = []
        drifts = []
        for state in states:
            if not isinstance(state, ExactState):
                raise CommunicationError("cannot average ExactState with other state types")
            if state.drift.shape != self.drift.shape:
                raise CommunicationError(
                    f"drift shapes differ: {state.drift.shape} vs {self.drift.shape}"
                )
            norms.append(state.drift_sq_norm)
            drifts.append(state.drift)
        stacked = np.stack(drifts, axis=0)
        if weights is None:
            return ExactState(float(np.mean(norms)), np.mean(stacked, axis=0))
        return ExactState(
            float(np.average(norms, weights=weights)),
            np.average(stacked, axis=0, weights=weights),
        )


def average_states(
    states: Sequence[LocalState], weights: Optional[np.ndarray] = None
) -> LocalState:
    """Element-wise average of per-worker states (the AllReduce of local states).

    ``weights`` (optional, already validated/normalized by the caller — see
    :func:`repro.distributed.weights.renormalized_weights`) turns the mean
    into a weighted average; ``None`` keeps the exact legacy ``np.mean`` path
    bit-for-bit, which the serving plane's degenerate-mode parity relies on.
    """
    if not states:
        raise CommunicationError("average_states requires at least one state")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(states),):
            raise CommunicationError(
                f"weights shape {weights.shape} does not match {len(states)} states"
            )
    return states[0]._combine(states, weights)


def state_to_dict(state: LocalState) -> dict:
    """Serialize a local state for checkpointing (arrays stay numpy).

    The faults-plane :class:`~repro.faults.checkpoint.ClusterCheckpoint`
    encodes the contained arrays to base64; this only flattens the state into
    a tagged plain structure.
    """
    if isinstance(state, LinearState):
        return {
            "type": "linear",
            "drift_sq_norm": float(state.drift_sq_norm),
            "projection": float(state.projection),
        }
    if isinstance(state, SketchState):
        return {
            "type": "sketch",
            "drift_sq_norm": float(state.drift_sq_norm),
            "sketch": np.array(state.sketch),
        }
    if isinstance(state, ExactState):
        return {
            "type": "exact",
            "drift_sq_norm": float(state.drift_sq_norm),
            "drift": np.array(state.drift),
        }
    raise CommunicationError(f"cannot serialize state of type {type(state).__name__}")


def state_from_dict(payload: dict) -> LocalState:
    """Rebuild a local state serialized by :func:`state_to_dict`."""
    kind = payload.get("type")
    if kind == "linear":
        return LinearState(float(payload["drift_sq_norm"]), float(payload["projection"]))
    if kind == "sketch":
        return SketchState(float(payload["drift_sq_norm"]), np.asarray(payload["sketch"]))
    if kind == "exact":
        return ExactState(float(payload["drift_sq_norm"]), np.asarray(payload["drift"]))
    raise CommunicationError(f"unknown serialized state type {kind!r}")
