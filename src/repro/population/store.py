"""LRU client-state store with a bounded resident set and bit-exact disk spill.

A *stateful* client is one that has been bound into a cohort at least once:
its snapshot (parameters, optimizer moments, error-feedback residual, RNG
streams, step count) must survive until its next binding.  Keeping all of
them resident would tie memory to the number of ever-sampled clients — over a
long run, to ``N`` — so the store holds at most ``budget`` snapshots in
memory (least-recently-bound evicted first) and spills the rest to disk via
``pickle``, which round-trips ndarray bytes and PCG64 state dicts exactly.
``peak_resident`` records the high-water mark; the population bench asserts
it stays a function of the cohort size, never of ``N``.
"""

from __future__ import annotations

import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional

from repro.exceptions import ConfigurationError


class ClientStateStore:
    """Bounded in-memory snapshot cache over an unbounded disk spill."""

    def __init__(self, budget: Optional[int] = None, spill_dir=None) -> None:
        if budget is not None and budget < 1:
            raise ConfigurationError(f"budget must be positive (or None), got {budget}")
        self.budget = budget
        self._resident: "OrderedDict[int, dict]" = OrderedDict()
        self._spilled: Dict[int, Path] = {}
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self.peak_resident = 0
        self.evictions = 0
        self.spill_loads = 0

    # -- bookkeeping -------------------------------------------------------------

    @property
    def resident_count(self) -> int:
        """Snapshots currently held in memory."""
        return len(self._resident)

    @property
    def stateful_count(self) -> int:
        """Clients with any saved state, resident or spilled."""
        return len(self._resident) + len(self._spilled)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._resident or client_id in self._spilled

    # -- spill plumbing ----------------------------------------------------------

    def _spill_path(self, client_id: int) -> Path:
        if self._spill_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-population-")
            self._spill_dir = Path(self._tmp.name)
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        return self._spill_dir / f"client-{client_id}.pkl"

    def _spill(self, client_id: int, snapshot: dict) -> None:
        path = self._spill_path(client_id)
        with path.open("wb") as handle:
            pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._spilled[client_id] = path
        self.evictions += 1

    # -- the store interface -----------------------------------------------------

    def save(self, client_id: int, snapshot: dict) -> None:
        """Install the client's latest snapshot, evicting LRU beyond the budget."""
        client_id = int(client_id)
        stale = self._spilled.pop(client_id, None)
        if stale is not None:
            stale.unlink(missing_ok=True)
        self._resident[client_id] = snapshot
        self._resident.move_to_end(client_id)
        while self.budget is not None and len(self._resident) > self.budget:
            victim, victim_snapshot = self._resident.popitem(last=False)
            self._spill(victim, victim_snapshot)
        self.peak_resident = max(self.peak_resident, len(self._resident))

    def load(self, client_id: int) -> Optional[dict]:
        """The client's saved snapshot (``None`` for a never-bound client).

        A resident hit refreshes recency; a spilled snapshot is read back
        bit-exactly from disk (and stays on disk until the client's next
        :meth:`save` supersedes it).
        """
        client_id = int(client_id)
        snapshot = self._resident.get(client_id)
        if snapshot is not None:
            self._resident.move_to_end(client_id)
            return snapshot
        path = self._spilled.get(client_id)
        if path is None:
            return None
        with path.open("rb") as handle:
            snapshot = pickle.load(handle)
        self.spill_loads += 1
        return snapshot

    def evict(self, client_id: int) -> bool:
        """Force-spill one resident snapshot (test hook for eviction orders)."""
        client_id = int(client_id)
        snapshot = self._resident.pop(client_id, None)
        if snapshot is None:
            return False
        self._spill(client_id, snapshot)
        return True
