"""The population plane: cohort binding over a fixed-slot cluster.

A :class:`ClientPopulation` turns the ``(K, d)`` cluster into a *window* onto
a registered population of ``N ≫ K`` logical clients.  The cluster's worker
slots are physical resources (models, optimizers, samplers, parameter-matrix
rows); clients are logical records.  Each round:

1. the :class:`~repro.population.sampler.CohortSampler` draws a cohort,
2. every cohort member is **bound** into a slot — the slot is first reset to
   the pristine fresh-client state (initial global model, zero optimizer
   moments, the client's seed-derived RNG streams, zero error-feedback
   residual), then the client's saved snapshot, if any, is overlaid *in
   place* so the stacked optimizer's and compression state's row bindings
   survive,
3. the strategy runs its round on the bound cluster exactly as it would on a
   materialized one — the masked ``(A, d)`` batched path, the fabric charges,
   FDA's triggered syncs, all unchanged,
4. every bound client is **unbound** — its slot state is snapshotted into the
   LRU :class:`~repro.population.store.ClientStateStore`.

Aggregation weights: with ``weighting="data-size"`` the cluster's collectives
(`synchronize`, `gather_models` consumers, global evaluation) average with
per-slot weights equal to the bound clients' shard sizes.  With ``"uniform"``
the cluster keeps its exact ``mean(axis=0)`` paths — which is what makes the
cohort=all configuration bit-identical to a fully materialized cluster
(asserted by ``tests/helpers/parity.run_population_parity``).

Fault plans compose at the *slot* level: churn crashes a slot, and whichever
client is bound there loses its local progress for the round — cohort-scoped
churn, matching the cross-device reality that a sampled device can drop out
mid-round.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError, ExperimentError
from repro.faults.checkpoint import (
    _OPTIMIZER_STATE_ATTRS,
    _model_rng_states,
    _restore_model_rng_states,
    _rng_state,
)
from repro.population.config import PopulationConfig
from repro.population.directory import ClientDirectory
from repro.population.sampler import CohortSampler
from repro.population.store import ClientStateStore
from repro.utils.rng import RngFactory, as_rng


class ClientPopulation:
    """N logical clients multiplexed onto a C-slot cluster, one cohort per round.

    ``client_seed_fn`` maps a client id to the seed of its private training
    streams (batch sampler + epoch iterator); the default derives a named
    stream per client from ``seed``.  ``build_cluster`` passes the workload's
    ``RngFactory.worker`` so that a population of ``N == K`` clients with
    cohort=all reproduces a materialized ``build_cluster`` worker-for-worker;
    the parity harness passes ``lambda c: c`` to mirror its int-seeded
    workers.
    """

    def __init__(
        self,
        config: PopulationConfig,
        *,
        shards: Optional[Sequence[Dataset]] = None,
        train_dataset: Optional[Dataset] = None,
        seed: int = 0,
        client_seed_fn: Optional[Callable[[int], object]] = None,
        spill_dir=None,
    ) -> None:
        self.config = config
        self.seed = int(seed)
        self.directory = ClientDirectory(
            config, shards=shards, train_dataset=train_dataset, seed=seed
        )
        self.cohort_sampler = CohortSampler(config, seed)
        self.store = ClientStateStore(
            budget=config.effective_memory_budget, spill_dir=spill_dir
        )
        if client_seed_fn is None:
            factory = RngFactory(seed)
            client_seed_fn = lambda client_id: factory.named(f"pop-client-{client_id}")
        self._client_seed_fn = client_seed_fn
        self._cluster = None
        self.strategy = None
        self._initial_params: Optional[np.ndarray] = None
        self._initial_buffers: Optional[np.ndarray] = None
        self._pristine_model_rngs = None
        self._bound: Optional[np.ndarray] = None
        self._bound_base_steps: Optional[list] = None
        self.rounds_completed = 0
        #: Cumulative local steps per ever-bound client (small: one int per
        #: stateful client, regardless of snapshot residency).
        self.client_steps: Dict[int, int] = {}

    # -- wiring ------------------------------------------------------------------

    @property
    def cluster(self):
        if self._cluster is None:
            raise ExperimentError(
                "ClientPopulation is not attached to a cluster; call attach() first"
            )
        return self._cluster

    def attach(self, cluster, strategy=None) -> "ClientPopulation":
        """Bind to a cluster (after the strategy's initial broadcast).

        Captures the pristine fresh-client state every binding resets to: the
        shared initial model ``w₀``, the factory-initial buffers, and each
        slot model's pristine layer RNG streams (Dropout masks).  Must run
        *after* ``strategy.attach`` so ``w₀`` is the broadcast initial model.
        """
        if cluster.num_workers != self.config.cohort_size:
            raise ConfigurationError(
                f"population cohort_size={self.config.cohort_size} needs exactly "
                f"that many worker slots, cluster has {cluster.num_workers}"
            )
        self._cluster = cluster
        if strategy is not None:
            self.strategy = strategy
        self._initial_params = cluster.parameter_matrix[0].copy()
        self._initial_buffers = (
            cluster.buffer_matrix[0].copy() if cluster.buffer_matrix.shape[1] else None
        )
        self._pristine_model_rngs = [
            _model_rng_states(worker.model) for worker in cluster.workers
        ]
        cluster.population = self
        return self

    def describe(self) -> str:
        return self.config.describe()

    @property
    def peak_resident_clients(self) -> int:
        """High-water mark of in-memory client snapshots (cohort-bounded)."""
        return self.store.peak_resident

    # -- binding -----------------------------------------------------------------

    def _reset_slot(self, slot: int, client_id: int, shard: Dataset) -> None:
        """Reset one slot to the fresh-client state, strictly in place."""
        cluster = self.cluster
        worker = cluster.workers[slot]
        worker.dataset = shard
        worker._sampler.dataset = shard
        worker._epoch_iterator.dataset = shard
        cluster.parameter_matrix[slot] = self._initial_params
        if self._initial_buffers is not None:
            cluster.buffer_matrix[slot] = self._initial_buffers
        optimizer = worker.optimizer
        optimizer.step_count = 0
        for attr in _OPTIMIZER_STATE_ATTRS:
            value = getattr(optimizer, attr, None)
            if isinstance(value, np.ndarray):
                value[...] = 0.0
        worker.last_loss = None
        fresh_state = as_rng(self._client_seed_fn(client_id)).bit_generator.state
        worker._sampler._rng.bit_generator.state = fresh_state
        worker._epoch_iterator._rng.bit_generator.state = fresh_state
        _restore_model_rng_states(worker.model, self._pristine_model_rngs[slot])
        compression = cluster.compression
        if compression is not None and compression.residual_matrix is not None:
            compression.residual_matrix[slot] = 0.0

    def _overlay_snapshot(self, slot: int, snapshot: dict) -> None:
        """Overlay a returning client's saved state onto a freshly reset slot."""
        cluster = self.cluster
        worker = cluster.workers[slot]
        cluster.parameter_matrix[slot] = snapshot["params"]
        if self._initial_buffers is not None and snapshot.get("buffers") is not None:
            cluster.buffer_matrix[slot] = snapshot["buffers"]
        optimizer = worker.optimizer
        optimizer.step_count = int(snapshot["optimizer"]["step_count"])
        for attr in _OPTIMIZER_STATE_ATTRS:
            saved = snapshot["optimizer"].get(attr)
            if saved is None:
                continue
            current = getattr(optimizer, attr, None)
            if isinstance(current, np.ndarray):
                current[...] = saved
            else:
                setattr(optimizer, attr, np.array(saved))
        last_loss = snapshot["last_loss"]
        worker.last_loss = None if last_loss is None else float(last_loss)
        worker._sampler._rng.bit_generator.state = snapshot["sampler_rng"]
        worker._epoch_iterator._rng.bit_generator.state = snapshot["epoch_rng"]
        _restore_model_rng_states(worker.model, snapshot["model_rngs"])
        compression = cluster.compression
        if compression is not None and compression.residual_matrix is not None:
            saved_residual = snapshot.get("residual")
            if saved_residual is not None:
                compression.residual_matrix[slot] = saved_residual

    def _capture_slot(self, slot: int, client_id: int) -> dict:
        """Snapshot one slot's client state (copies — the slot lives on)."""
        cluster = self.cluster
        worker = cluster.workers[slot]
        optimizer = worker.optimizer
        optimizer_state: dict = {"step_count": int(optimizer.step_count)}
        for attr in _OPTIMIZER_STATE_ATTRS:
            value = getattr(optimizer, attr, None)
            if isinstance(value, np.ndarray):
                optimizer_state[attr] = np.array(value)
        snapshot = {
            "params": np.array(cluster.parameter_matrix[slot]),
            "buffers": (
                np.array(cluster.buffer_matrix[slot])
                if self._initial_buffers is not None
                else None
            ),
            "steps": self.client_steps.get(client_id, 0),
            "last_loss": worker.last_loss,
            "optimizer": optimizer_state,
            "sampler_rng": _rng_state(worker._sampler._rng),
            "epoch_rng": _rng_state(worker._epoch_iterator._rng),
            "model_rngs": _model_rng_states(worker.model),
        }
        compression = cluster.compression
        if compression is not None and compression.residual_matrix is not None:
            snapshot["residual"] = np.array(compression.residual_matrix[slot])
        return snapshot

    def bind_cohort(self, cohort: np.ndarray) -> None:
        """Bind the cohort's clients into slots 0..len(cohort)-1.

        Slots beyond a partial (Bernoulli) cohort keep their stale contents
        but are masked out of stepping, state reporting, and aggregation via
        the cluster's population mask and zeroed aggregation weights.
        """
        cluster = self.cluster
        if self._bound is not None:
            raise ExperimentError("a cohort is already bound; unbind it first")
        cohort = np.asarray(cohort, dtype=np.int64)
        if cohort.size == 0 or cohort.size > cluster.num_workers:
            raise ConfigurationError(
                f"cohort size must lie in [1, {cluster.num_workers}], got {cohort.size}"
            )
        sample_counts = np.zeros(cluster.num_workers)
        for slot, client_id in enumerate(cohort):
            client_id = int(client_id)
            shard = self.directory.shard(client_id)
            self._reset_slot(slot, client_id, shard)
            snapshot = self.store.load(client_id)
            if snapshot is not None:
                self._overlay_snapshot(slot, snapshot)
            sample_counts[slot] = len(shard)
        if cohort.size < cluster.num_workers:
            mask = np.zeros(cluster.num_workers, dtype=bool)
            mask[: cohort.size] = True
            cluster.set_population_mask(mask)
            if self.config.weighting == "data-size":
                cluster.set_aggregation_weights(sample_counts)
            else:
                cluster.set_aggregation_weights(mask)
        else:
            cluster.set_population_mask(None)
            if self.config.weighting == "data-size":
                cluster.set_aggregation_weights(sample_counts)
            else:
                # Uniform full-slot cohorts keep weights=None: the cluster's
                # exact mean(axis=0) collectives, bit-identical to a
                # materialized cluster (the parity contract).
                cluster.set_aggregation_weights(None)
        self._bound = cohort
        self._bound_base_steps = [
            worker.steps_performed for worker in cluster.workers[: cohort.size]
        ]

    def unbind_cohort(self) -> None:
        """Snapshot every bound client into the store and release the slots.

        Aggregation weights and the participation mask are deliberately left
        in force until the next binding, so between-round evaluation of the
        global model still aggregates over the round's cohort.
        """
        cluster = self.cluster
        if self._bound is None:
            raise ExperimentError("no cohort is bound")
        for slot, client_id in enumerate(self._bound):
            client_id = int(client_id)
            delta = cluster.workers[slot].steps_performed - self._bound_base_steps[slot]
            self.client_steps[client_id] = self.client_steps.get(client_id, 0) + delta
            self.store.save(client_id, self._capture_slot(slot, client_id))
        self._bound = None
        self._bound_base_steps = None

    # -- the round loop ----------------------------------------------------------

    def run_round(self):
        """Draw a cohort, bind it, run one strategy round, unbind.

        Returns the strategy's :class:`~repro.strategies.base.StrategyRound`.
        """
        if self.strategy is None:
            raise ExperimentError(
                "ClientPopulation has no strategy; attach(cluster, strategy) first"
            )
        cohort = self.cohort_sampler.draw()
        self.bind_cohort(cohort)
        result = self.strategy.run_round()
        self.unbind_cohort()
        self.rounds_completed += 1
        return result

    def __repr__(self) -> str:
        return (
            f"ClientPopulation({self.describe()}, rounds={self.rounds_completed}, "
            f"stateful={self.store.stateful_count}, "
            f"resident={self.store.resident_count})"
        )
