"""Seeded cohort sampling over the registered population.

The sampler owns its *own* named RNG stream (``"population-cohort"`` under
the workload seed), so drawing cohorts never perturbs the training streams —
a population run and a materialized run consume identical training RNG.

Two schemes (see :data:`~repro.population.config.SAMPLING_SCHEMES`):

* ``"fixed"`` — exactly ``cohort_size`` distinct clients per round, drawn by
  rejection into a set: O(cohort) expected work for cohorts far smaller than
  the population, never O(N);
* ``"bernoulli"`` — the activation count is ``Binomial(N, act_prob)``
  (distributionally identical to flipping one coin per client, without the
  O(N) pass), clamped to ``[1, cohort_size]`` so the drawn cohort always fits
  the physical slots, then that many distinct clients are drawn as above.

The degenerate ``cohort_size == num_clients`` configuration returns
``arange(N)`` **without consuming any RNG** — the cohort=all parity mode, in
which a population run must be bit-identical to a fully materialized cluster.
"""

from __future__ import annotations

import numpy as np

from repro.population.config import PopulationConfig
from repro.utils.rng import RngFactory, as_rng


class CohortSampler:
    """Draws one cohort of client ids per round, deterministically from a seed."""

    def __init__(self, config: PopulationConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = as_rng(RngFactory(seed).named("population-cohort"))
        self.rounds_drawn = 0

    def draw(self) -> np.ndarray:
        """The next round's cohort: sorted, distinct client ids."""
        config = self.config
        population = config.num_clients
        self.rounds_drawn += 1
        if config.samples_all_clients:
            # Cohort=all consumes no RNG at all, so this mode's training
            # trajectory is bit-identical to the materialized cluster's.
            return np.arange(population, dtype=np.int64)
        if config.sampling == "bernoulli":
            count = int(self._rng.binomial(population, config.act_prob))
            count = max(1, min(count, config.cohort_size))
        else:
            count = config.cohort_size
        chosen = set()
        while len(chosen) < count:
            chosen.add(int(self._rng.integers(0, population)))
        return np.array(sorted(chosen), dtype=np.int64)
