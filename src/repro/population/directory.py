"""The client directory: O(1) descriptors, lazily materialized data shards.

Registering ``N ∈ [10⁵, 10⁷]`` clients must cost nothing per client: the
directory never builds a per-client record up front.  A client's *descriptor*
— its data-shard seed and sample count — is a pure function of the directory
seed and the client id (via :class:`~repro.utils.rng.RngFactory`'s named
streams), computed on demand in O(1); its data shard is materialized lazily in
O(samples) when the client is actually bound into a cohort.

Two shard providers exist:

* **virtual** (``train_dataset=``) — client ``c``'s shard is a seeded random
  subset of the workload's training set whose size is drawn from
  ``[min_client_samples, max_client_samples]``; the regime the population
  plane targets (``N`` far beyond what explicit shards could hold);
* **explicit** (``shards=``) — one :class:`~repro.data.datasets.Dataset` per
  client, for small-``N`` parity and eviction tests where the population must
  see exactly the shards a fully materialized cluster would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError
from repro.population.config import PopulationConfig
from repro.utils.rng import RngFactory, as_rng


@dataclass(frozen=True)
class ClientDescriptor:
    """Lightweight registration record of one logical client.

    The shard itself is *not* here: ``shard_seed`` (together with the
    directory's own seed) fully determines it, so a descriptor costs three
    integers regardless of the client's data volume.
    """

    client_id: int
    shard_seed: int
    num_samples: int


class ClientDirectory:
    """Maps client ids to descriptors and (lazily) to data shards."""

    def __init__(
        self,
        config: PopulationConfig,
        *,
        shards: Optional[Sequence[Dataset]] = None,
        train_dataset: Optional[Dataset] = None,
        seed: int = 0,
    ) -> None:
        if (shards is None) == (train_dataset is None):
            raise ConfigurationError(
                "ClientDirectory needs exactly one shard provider: explicit "
                "shards= or a train_dataset= to draw virtual shards from"
            )
        if shards is not None and len(shards) != config.num_clients:
            raise ConfigurationError(
                f"explicit shards must cover all {config.num_clients} clients, "
                f"got {len(shards)}"
            )
        if train_dataset is not None and len(train_dataset) < config.min_client_samples:
            raise ConfigurationError(
                f"train_dataset holds {len(train_dataset)} samples, fewer than "
                f"min_client_samples={config.min_client_samples}"
            )
        self.config = config
        self.seed = int(seed)
        self._shards: Optional[List[Dataset]] = list(shards) if shards is not None else None
        self._train = train_dataset
        self._factory = RngFactory(seed)

    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    def _check_id(self, client_id: int) -> int:
        client_id = int(client_id)
        if not 0 <= client_id < self.config.num_clients:
            raise ConfigurationError(
                f"client_id must lie in [0, {self.config.num_clients}), got {client_id}"
            )
        return client_id

    def _shard_rng(self, client_id: int) -> np.random.Generator:
        """The client's private shard stream — a pure function of (seed, id)."""
        return as_rng(self._factory.named(f"pop-shard-{client_id}"))

    def descriptor(self, client_id: int) -> ClientDescriptor:
        """The client's registration record, derived on demand in O(1)."""
        client_id = self._check_id(client_id)
        if self._shards is not None:
            return ClientDescriptor(client_id, client_id, len(self._shards[client_id]))
        rng = self._shard_rng(client_id)
        num_samples = int(
            rng.integers(
                self.config.min_client_samples, self.config.max_client_samples + 1
            )
        )
        return ClientDescriptor(client_id, client_id, min(num_samples, len(self._train)))

    def shard(self, client_id: int) -> Dataset:
        """Materialize the client's data shard (O(samples), independent of N)."""
        client_id = self._check_id(client_id)
        if self._shards is not None:
            return self._shards[client_id]
        rng = self._shard_rng(client_id)
        num_samples = int(
            rng.integers(
                self.config.min_client_samples, self.config.max_client_samples + 1
            )
        )
        num_samples = min(num_samples, len(self._train))
        indices = rng.choice(len(self._train), size=num_samples, replace=False)
        return self._train.subset(np.sort(indices), name=f"client-{client_id}")
