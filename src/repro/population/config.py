"""Configuration of the population plane.

A :class:`PopulationConfig` describes a *registered client population* far
larger than the physical cluster: ``num_clients`` logical clients exist as
lightweight descriptors, and each round a sampled *cohort* of at most
``cohort_size`` of them is bound onto the cluster's worker slots.  The config
is a frozen dataclass so it canonicalizes field-wise into sweep-cache
fingerprints (see :func:`repro.experiments.cache.canonical_value`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError

#: Cohort sampling schemes: ``"fixed"`` draws exactly ``cohort_size`` distinct
#: clients per round; ``"bernoulli"`` draws a Binomial(N, act_prob) activation
#: count (clamped to ``[1, cohort_size]``) and then that many distinct clients
#: — distributionally the classic per-client coin flip, computed in O(cohort)
#: instead of O(N).
SAMPLING_SCHEMES = ("fixed", "bernoulli")

#: Aggregation weighting: ``"uniform"`` keeps the cluster's exact
#: ``mean(axis=0)`` collectives (the bit-exact parity path); ``"data-size"``
#: weights every aggregation by the bound clients' shard sizes (the FedDyn /
#: Ji et al. regime).
WEIGHTING_SCHEMES = ("uniform", "data-size")


@dataclass(frozen=True)
class PopulationConfig:
    """Everything that defines one registered client population.

    ``memory_budget`` caps the number of *resident* (in-memory) client state
    snapshots; least-recently-bound clients beyond it are spilled to disk and
    rematerialized bit-exactly on their next binding.  ``None`` derives the
    default ``2 × cohort_size`` bound, which keeps peak resident state a
    function of the cohort — never of ``num_clients``.
    """

    num_clients: int
    cohort_size: int
    sampling: str = "fixed"
    act_prob: float = 0.1
    weighting: str = "data-size"
    memory_budget: Optional[int] = None
    min_client_samples: int = 24
    max_client_samples: int = 64

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError(
                f"num_clients must be positive, got {self.num_clients}"
            )
        if not 1 <= self.cohort_size <= self.num_clients:
            raise ConfigurationError(
                f"cohort_size must lie in [1, num_clients={self.num_clients}], "
                f"got {self.cohort_size}"
            )
        if self.sampling not in SAMPLING_SCHEMES:
            raise ConfigurationError(
                f"sampling must be one of {SAMPLING_SCHEMES}, got {self.sampling!r}"
            )
        if not 0.0 < self.act_prob <= 1.0:
            raise ConfigurationError(
                f"act_prob must lie in (0, 1], got {self.act_prob}"
            )
        if self.weighting not in WEIGHTING_SCHEMES:
            raise ConfigurationError(
                f"weighting must be one of {WEIGHTING_SCHEMES}, got {self.weighting!r}"
            )
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ConfigurationError(
                f"memory_budget must be positive (or None), got {self.memory_budget}"
            )
        if not 1 <= self.min_client_samples <= self.max_client_samples:
            raise ConfigurationError(
                "client sample bounds must satisfy 1 <= min <= max, got "
                f"[{self.min_client_samples}, {self.max_client_samples}]"
            )

    @property
    def effective_memory_budget(self) -> int:
        """The resident-snapshot cap actually enforced by the state store."""
        if self.memory_budget is not None:
            return self.memory_budget
        return max(2 * self.cohort_size, 2)

    @property
    def samples_all_clients(self) -> bool:
        """True when every registered client is bound every round (cohort=all)."""
        return self.cohort_size >= self.num_clients

    def describe(self) -> str:
        """Compact label for reports, run results, and persisted rows."""
        parts = [f"N={self.num_clients}", f"C={self.cohort_size}", self.sampling]
        if self.sampling == "bernoulli":
            parts.append(f"p={self.act_prob}")
        parts.append(self.weighting)
        if self.memory_budget is not None:
            parts.append(f"budget={self.memory_budget}")
        return f"pop({','.join(parts)})"
