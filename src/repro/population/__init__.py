"""Population plane: N ≫ K logical clients multiplexed onto the cluster.

The package splits along the lifecycle of a logical client:

* :mod:`~repro.population.config` — :class:`PopulationConfig`, the frozen
  description of a registered population (size, cohort, sampling, weighting,
  memory budget);
* :mod:`~repro.population.directory` — O(1) :class:`ClientDescriptor` records
  and lazy data-shard materialization;
* :mod:`~repro.population.sampler` — seeded per-round cohort draws;
* :mod:`~repro.population.store` — the LRU :class:`ClientStateStore` with
  bit-exact disk spill;
* :mod:`~repro.population.plane` — :class:`ClientPopulation`, which binds
  cohorts onto worker slots and runs strategy rounds.
"""

from repro.population.config import (
    SAMPLING_SCHEMES,
    WEIGHTING_SCHEMES,
    PopulationConfig,
)
from repro.population.directory import ClientDescriptor, ClientDirectory
from repro.population.plane import ClientPopulation
from repro.population.sampler import CohortSampler
from repro.population.store import ClientStateStore

__all__ = [
    "SAMPLING_SCHEMES",
    "WEIGHTING_SCHEMES",
    "PopulationConfig",
    "ClientDescriptor",
    "ClientDirectory",
    "ClientPopulation",
    "CohortSampler",
    "ClientStateStore",
]
