"""Elementwise activation functions with explicit derivatives.

Each activation is a pair ``(forward, backward)`` where ``backward`` maps the
upstream gradient and the cached forward *output* (or input, where noted) to
the downstream gradient.  Keeping them as plain functions keeps the layer code
in :mod:`repro.nn.layers` free of activation-specific branches.

Every activation here is strictly elementwise, so the same function objects
serve both execution engines: the sequential path applies them to ``(B, ...)``
tensors and the batched engine to ``(K, B, ...)`` tensors with a leading
worker axis, with identical per-element arithmetic (see
:mod:`repro.nn.batched`).  ``softmax``/``log_softmax`` reduce over ``axis``
only, so the same ``axis=-1`` invocation covers both layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ActivationFunction:
    """An activation: forward pass plus gradient w.r.t. its input.

    ``gradient(upstream, cached)`` receives whatever ``forward`` asked to
    cache (``cache_input=True`` means the input is cached, otherwise the
    output), so each activation can pick the cheaper representation.
    """

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    gradient: Callable[[np.ndarray, np.ndarray], np.ndarray]
    cache_input: bool = False


def _relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_gradient(upstream: np.ndarray, output: np.ndarray) -> np.ndarray:
    return upstream * (output > 0.0)


def _leaky_relu_forward(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    return np.where(x >= 0.0, x, alpha * x)


def _leaky_relu_gradient(upstream: np.ndarray, x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    return upstream * np.where(x >= 0.0, 1.0, alpha)


def _sigmoid_forward(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _sigmoid_gradient(upstream: np.ndarray, output: np.ndarray) -> np.ndarray:
    return upstream * output * (1.0 - output)


def _tanh_forward(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_gradient(upstream: np.ndarray, output: np.ndarray) -> np.ndarray:
    return upstream * (1.0 - output * output)


def _linear_forward(x: np.ndarray) -> np.ndarray:
    return x


def _linear_gradient(upstream: np.ndarray, output: np.ndarray) -> np.ndarray:
    del output
    return upstream


# A Python float, not an np.float64 scalar: weak promotion then keeps the
# constant from upcasting float32 activations.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def _gelu_forward(x: np.ndarray) -> np.ndarray:
    # tanh approximation of GELU (used by ConvNeXt-style heads).
    c = _GELU_C
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def _gelu_gradient(upstream: np.ndarray, x: np.ndarray) -> np.ndarray:
    c = _GELU_C
    inner = c * (x + 0.044715 * x**3)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner**2
    d_inner = c * (1.0 + 3.0 * 0.044715 * x**2)
    grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
    return upstream * grad


def _elu_forward(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(x >= 0.0, x, alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))


def _elu_gradient(upstream: np.ndarray, x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return upstream * np.where(x >= 0.0, 1.0, alpha * np.exp(np.minimum(x, 0.0)))


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


RELU = ActivationFunction("relu", _relu_forward, _relu_gradient, cache_input=False)
LEAKY_RELU = ActivationFunction(
    "leaky_relu", _leaky_relu_forward, _leaky_relu_gradient, cache_input=True
)
SIGMOID = ActivationFunction("sigmoid", _sigmoid_forward, _sigmoid_gradient, cache_input=False)
TANH = ActivationFunction("tanh", _tanh_forward, _tanh_gradient, cache_input=False)
LINEAR = ActivationFunction("linear", _linear_forward, _linear_gradient, cache_input=False)
GELU = ActivationFunction("gelu", _gelu_forward, _gelu_gradient, cache_input=True)
ELU = ActivationFunction("elu", _elu_forward, _elu_gradient, cache_input=True)

_NAMED_ACTIVATIONS = {
    "relu": RELU,
    "leaky_relu": LEAKY_RELU,
    "sigmoid": SIGMOID,
    "tanh": TANH,
    "linear": LINEAR,
    "identity": LINEAR,
    "gelu": GELU,
    "elu": ELU,
}


def get_activation(name_or_fn) -> ActivationFunction:
    """Resolve an activation by name, or pass an ActivationFunction through."""
    if isinstance(name_or_fn, ActivationFunction):
        return name_or_fn
    if name_or_fn is None:
        return LINEAR
    try:
        return _NAMED_ACTIVATIONS[name_or_fn]
    except KeyError:
        raise ConfigurationError(
            f"unknown activation {name_or_fn!r}; known: {sorted(_NAMED_ACTIVATIONS)}"
        ) from None
