"""The parameter plane: contiguous flat storage behind a model's arrays.

The FDA algorithm, the optimizers, and the cluster collectives all operate on
the *flat* parameter vector ``w``.  Historically every layer owned its own
parameter arrays and the flat vector was re-materialized on demand
(``np.concatenate`` on read, a per-array scatter loop on write), which put
four or more full-vector copies on every worker step.

:class:`ParameterPlane` inverts that ownership: the model owns one contiguous
flat vector per kind of state (parameters, gradients, buffers) and each
layer's arrays become reshaped *views* into it.  Reading the flat vector is
then zero-copy, writing it is a single ``memcpy``, and a cluster can go one
step further and rebind every worker's storage onto the rows of a single
``(K, d)`` matrix so collectives become row-wise matrix operations.

Layers participate by exposing *refs* — ``(holder, attribute)`` pairs aligned
one-to-one with their ``parameters()`` / ``gradients()`` / ``buffers()``
lists — which the plane uses to re-point the attributes at its views.

The plane owns the *active dtype* (see :mod:`repro.backend`): float64 is the
bit-exact reference, float32 the bandwidth-halving fast mode.  Layer
initializers may produce float64 arrays regardless; the plane casts exactly
once, when the initial values are copied into its flat storage, so every
downstream view computes in the plane's dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.backend import resolve_dtype
from repro.exceptions import ShapeError

#: A reference to an array-valued attribute: ``getattr(holder, attribute)``.
ArrayRef = Tuple[object, str]


@dataclass(frozen=True)
class SlotLayout:
    """Public description of where one layer array lives in a flat vector.

    ``offset``/``size`` address the array inside the flat storage; ``shape``
    is its logical layer shape.  The batched execution engine uses these to
    carve ``(K, *shape)`` views out of a cluster's ``(K, d)`` matrices (see
    :class:`repro.nn.batched.BatchedPlane`).
    """

    offset: int
    size: int
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class _Slot:
    """Where one layer array lives inside a flat vector."""

    holder: object
    attribute: str
    offset: int
    size: int
    shape: Tuple[int, ...]


class _FlatSpace:
    """One contiguous flat vector plus the slots viewing into it."""

    def __init__(self, refs: Sequence[ArrayRef], dtype=None) -> None:
        self.dtype = resolve_dtype(dtype)
        self.slots: List[_Slot] = []
        offset = 0
        for holder, attribute in refs:
            array = getattr(holder, attribute)
            self.slots.append(_Slot(holder, attribute, offset, array.size, array.shape))
            offset += array.size
        self.flat = np.empty(offset, dtype=self.dtype)
        for slot in self.slots:
            # The one sanctioned cast: initializer output (any float dtype)
            # lands in the plane's dtype here and never again.
            self.flat[slot.offset : slot.offset + slot.size] = getattr(
                slot.holder, slot.attribute
            ).reshape(-1)
        self._repoint()

    @property
    def size(self) -> int:
        return self.flat.size

    def _repoint(self) -> None:
        """Re-point every slot attribute at its view into the current storage."""
        for slot in self.slots:
            view = self.flat[slot.offset : slot.offset + slot.size].reshape(slot.shape)
            setattr(slot.holder, slot.attribute, view)

    def rebind(self, storage: np.ndarray) -> None:
        """Move the space onto externally owned ``storage`` (e.g. a matrix row).

        The current values are copied into ``storage`` and every layer
        attribute is re-pointed; views obtained from the previous storage are
        no longer connected to the model.
        """
        if not isinstance(storage, np.ndarray) or storage.dtype != self.dtype:
            raise ShapeError(f"flat storage must be a {self.dtype} ndarray")
        if storage.shape != (self.size,):
            raise ShapeError(
                f"flat storage must have shape ({self.size},), got {storage.shape}"
            )
        if not storage.flags.c_contiguous:
            raise ShapeError("flat storage must be C-contiguous to support zero-copy views")
        storage[...] = self.flat
        self.flat = storage
        self._repoint()

    def astype(self, dtype) -> None:
        """Re-allocate the flat storage in ``dtype`` (one cast, views re-pointed).

        Used by dtype conversion at cluster construction; storage previously
        handed out via :meth:`rebind` is detached, exactly as a rebind would.
        """
        dtype = resolve_dtype(dtype)
        if dtype == self.dtype:
            return
        self.dtype = dtype
        self.flat = self.flat.astype(dtype)
        self._repoint()


class ParameterPlane:
    """Contiguous flat storage for a model's parameters, gradients, and buffers.

    The plane is created once per :meth:`Sequential.build` and owns three flat
    vectors in its active ``dtype`` (float64 unless told otherwise; see
    :mod:`repro.backend`).  ``params``/``grads``/``buffers`` are the live
    vectors — mutating them mutates the layers (and vice versa, because the
    layer arrays are views).  ``rebind_*`` moves a vector onto caller-owned
    storage, which is how
    :class:`~repro.distributed.cluster.SimulatedCluster` stacks all workers
    into one ``(K, d)`` matrix.
    """

    def __init__(self, layers: Iterable[object], dtype=None) -> None:
        self.dtype = resolve_dtype(dtype)
        layers = list(layers)
        # Sizes advertised through the classic list API, captured before any
        # re-pointing: a layer that implements parameters() but forgets the
        # matching *_refs() hook must fail loudly here, not train silently
        # with its weights excluded from the flat vector.
        expected = {
            "parameter": sum(a.size for layer in layers for a in layer.parameters()),
            "gradient": sum(a.size for layer in layers for a in layer.gradients()),
            "buffer": sum(a.size for layer in layers for a in layer.buffers()),
        }
        param_refs: List[ArrayRef] = []
        grad_refs: List[ArrayRef] = []
        buffer_refs: List[ArrayRef] = []
        for layer in layers:
            param_refs.extend(layer.parameter_refs())
            grad_refs.extend(layer.gradient_refs())
            buffer_refs.extend(layer.buffer_refs())
        self._params = _FlatSpace(param_refs, dtype=self.dtype)
        self._grads = _FlatSpace(grad_refs, dtype=self.dtype)
        self._buffers = _FlatSpace(buffer_refs, dtype=self.dtype)
        for kind, space in (
            ("parameter", self._params),
            ("gradient", self._grads),
            ("buffer", self._buffers),
        ):
            if space.size != expected[kind]:
                raise ShapeError(
                    f"{kind} refs cover {space.size} scalars but the layers' "
                    f"{kind} arrays hold {expected[kind]}; some layer is missing "
                    f"its {kind}_refs() implementation"
                )
        if self._grads.size != self._params.size:
            raise ShapeError(
                f"gradient refs cover {self._grads.size} scalars but parameter refs "
                f"cover {self._params.size}; the two layouts must be aligned"
            )

    # -- live flat vectors ---------------------------------------------------

    @property
    def params(self) -> np.ndarray:
        """The flat parameter vector (a live view, never a copy)."""
        return self._params.flat

    @property
    def grads(self) -> np.ndarray:
        """The flat gradient vector, aligned element-for-element with ``params``."""
        return self._grads.flat

    @property
    def buffers(self) -> np.ndarray:
        """The flat non-trainable buffer vector (batch-norm running stats)."""
        return self._buffers.flat

    @property
    def num_parameters(self) -> int:
        return self._params.size

    @property
    def num_buffers(self) -> int:
        return self._buffers.size

    # -- layout introspection --------------------------------------------------

    @staticmethod
    def _layout(space: _FlatSpace) -> List[SlotLayout]:
        return [SlotLayout(s.offset, s.size, s.shape) for s in space.slots]

    def parameter_layout(self) -> List[SlotLayout]:
        """One :class:`SlotLayout` per parameter array, in storage order.

        The order matches the concatenation of every layer's
        ``parameter_refs()``, which is also the order of ``parameters()``.
        """
        return self._layout(self._params)

    def gradient_layout(self) -> List[SlotLayout]:
        """One :class:`SlotLayout` per gradient array (aligned with parameters)."""
        return self._layout(self._grads)

    def buffer_layout(self) -> List[SlotLayout]:
        """One :class:`SlotLayout` per non-trainable buffer array."""
        return self._layout(self._buffers)

    # -- storage rebinding -----------------------------------------------------

    def rebind_parameters(self, storage: np.ndarray) -> None:
        """Move parameter storage onto ``storage`` (values are preserved)."""
        self._params.rebind(storage)

    def rebind_gradients(self, storage: np.ndarray) -> None:
        """Move gradient storage onto ``storage`` (values are preserved)."""
        self._grads.rebind(storage)

    def rebind_buffers(self, storage: np.ndarray) -> None:
        """Move buffer storage onto ``storage`` (values are preserved)."""
        self._buffers.rebind(storage)

    def astype(self, dtype) -> None:
        """Convert all three flat spaces to ``dtype`` (no-op if unchanged).

        One cast per space; layer views are re-pointed at the new storage.
        Previously rebound external storage (e.g. cluster matrix rows) is
        detached — callers converting a live cluster member must rebind
        afterwards, which is exactly what cluster construction does.
        """
        dtype = resolve_dtype(dtype)
        if dtype == self.dtype:
            return
        for space in (self._params, self._grads, self._buffers):
            space.astype(dtype)
        self.dtype = dtype

    def __repr__(self) -> str:
        return (
            f"ParameterPlane(d={self._params.size}, buffers={self._buffers.size}, "
            f"slots={len(self._params.slots)})"
        )
