"""Batched K-worker compute kernels: one forward/backward for the whole cluster.

The simulator stores all ``K`` worker models as rows of one contiguous
``(K, d)`` parameter matrix (see :mod:`repro.nn.plane` and
:class:`~repro.distributed.cluster.SimulatedCluster`).  The sequential
execution path still *computes* per worker: ``K`` Python-level forward and
backward passes over small matrices, which is exactly where the paper's large
``K`` sweeps spend their time.  This module exploits the storage layout on
the compute side:

* :class:`BatchedPlane` carves each layer array's ``K`` per-worker tensors
  out of the cluster matrices as **strided views** — for a ``Dense`` kernel
  the column block ``matrix[:, o:o+in*out]`` reshaped to ``(K, in, out)``.
  No parameter is copied; mutating a view mutates the worker models.
* Per-layer **kernels** (:class:`BatchedDense`, :class:`BatchedConv2D`, …)
  advance all workers at once: ``Dense`` is a single stacked-GEMM
  (``(K, B, in) @ (K, in, out)``, the einsum ``kbi,kio->kbo``), ``Conv2D``
  folds the worker axis into the im2col batch, and parameter-free layers
  operate on the folded ``(K·B, ...)`` tensor directly.  Activations are
  elementwise and shared verbatim with the sequential layers.
* :class:`BatchedModel` chains the kernels into ``train_batch`` over stacked
  ``(K, B, ...)`` mini-batches, writing every worker's gradients into the
  ``(K, d)`` gradient matrix in one backward pass.

Per-worker arithmetic is element-for-element the same as the sequential
layers (same GEMM shapes per worker slice, same reduction extents), so the
two engines agree to tight floating-point tolerance; the cross-engine parity
suite (``tests/helpers/parity.py``) pins this down per strategy.

RNG-stateful layers are supported through *worker binding*: ``Dropout`` keeps
one private mask stream per worker, so :class:`BatchedDropout` holds every
worker's own layer object and draws each active row's mask from that worker's
stream (via :meth:`~repro.nn.layers.Dropout.sample_mask`, the same helper the
sequential path consumes) before one vectorized multiply — the streams replay
exactly.  A :class:`BatchedModel` that contains such layers must therefore be
constructed with ``worker_models``.  Composites of unsupported pieces
(``DenseBlock``, ``TransitionDown``) still have no kernel;
:func:`unsupported_layers` lets the engine reject such models up front with a
clear message.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.functional import avg_pool_backward, im2col, col2im, max_pool_backward
from repro.nn.layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
)
from repro.nn.losses import Loss
from repro.nn.model import Sequential
from repro.nn.plane import SlotLayout


def _carve(matrix: np.ndarray, entry: SlotLayout) -> np.ndarray:
    """A zero-copy ``(K, *shape)`` view of one layer array across all workers."""
    block = matrix[:, entry.offset : entry.offset + entry.size]
    view = block.reshape((matrix.shape[0],) + tuple(entry.shape))
    # The bounds-overlap check suffices to detect a reshape that copied (a
    # fresh buffer cannot overlap the matrix); np.shares_memory's exact
    # solver can take milliseconds *per slot* on strided scratch views, which
    # made deep models' plane construction seconds-slow.
    if not np.may_share_memory(view, matrix):
        raise ShapeError(
            f"carving slot {entry} produced a copy instead of a view; "
            "the backing matrix must be C-contiguous"
        )
    return view


class BatchedPlane:
    """Strided per-layer views over a cluster's stacked state matrices.

    ``param_matrix``/``grad_matrix`` are ``(K, d)`` and ``buffer_matrix`` is
    ``(K, num_buffers)``; rows are the workers.  For every layer of the
    ``reference`` model (the structural template shared by all workers) the
    plane exposes the layer's parameter, gradient, and buffer arrays as
    ``(K, *shape)`` views, aligned with the layer's ``*_refs()`` order.
    """

    def __init__(
        self,
        reference: Sequential,
        param_matrix: np.ndarray,
        grad_matrix: np.ndarray,
        buffer_matrix: np.ndarray,
    ) -> None:
        plane = reference.plane
        expected = {
            "parameter": (param_matrix, plane.num_parameters),
            "gradient": (grad_matrix, plane.num_parameters),
            "buffer": (buffer_matrix, plane.num_buffers),
        }
        rows = {matrix.shape[0] for matrix, _ in expected.values()}
        if len(rows) != 1:
            raise ShapeError(f"state matrices disagree on the worker count: {sorted(rows)}")
        for kind, (matrix, width) in expected.items():
            if matrix.ndim != 2 or matrix.shape[1] != width:
                raise ShapeError(
                    f"{kind} matrix must have shape (K, {width}), got {matrix.shape}"
                )
        self.num_workers = int(param_matrix.shape[0])
        self.param_matrix = param_matrix
        self.grad_matrix = grad_matrix
        self.buffer_matrix = buffer_matrix

        param_entries = iter(plane.parameter_layout())
        grad_entries = iter(plane.gradient_layout())
        buffer_entries = iter(plane.buffer_layout())
        #: Per layer (in model order): (param views, grad views, buffer views).
        self.layer_views: List[
            Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]
        ] = []
        for layer in reference.layers:
            params = [_carve(param_matrix, next(param_entries)) for _ in layer.parameter_refs()]
            grads = [_carve(grad_matrix, next(grad_entries)) for _ in layer.gradient_refs()]
            buffers = [_carve(buffer_matrix, next(buffer_entries)) for _ in layer.buffer_refs()]
            self.layer_views.append((params, grads, buffers))

    def __repr__(self) -> str:
        return (
            f"BatchedPlane(K={self.num_workers}, d={self.param_matrix.shape[1]}, "
            f"layers={len(self.layer_views)})"
        )


# -- kernels -------------------------------------------------------------------


class BatchedKernel:
    """Batched counterpart of one layer: forward/backward over ``(K, B, ...)``.

    ``params``/``grads``/``buffers`` are the :class:`BatchedPlane` views for
    the layer, in the layer's ``*_refs()`` order.  Kernels cache activations
    exactly like their sequential counterparts; the per-worker slice of every
    computation matches the sequential layer's arithmetic.
    """

    #: Whether the kernel needs every worker's own layer object (RNG-stateful
    #: layers); :class:`BatchedModel` then calls :meth:`bind_worker_layers`.
    needs_worker_layers = False

    def __init__(
        self,
        layer: Layer,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        buffers: Sequence[np.ndarray],
    ) -> None:
        self.layer = layer
        #: Index array of the worker rows the current pass covers (``None`` =
        #: all workers); set by :meth:`BatchedModel.forward` on kernels that
        #: declared ``needs_worker_layers``.
        self.active_rows: Optional[np.ndarray] = None

    def bind_worker_layers(self, layers: Sequence[Layer]) -> None:
        """Receive the per-worker layer objects (RNG-stateful kernels only)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class BatchedDense(BatchedKernel):
    """All workers' ``Dense`` layers as one stacked GEMM (``kbi,kio->kbo``)."""

    def __init__(self, layer: Dense, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self.activation = layer.activation
        self.use_bias = layer.use_bias
        self.weight = params[0]
        self.grad_weight = grads[0]
        self.bias = params[1] if layer.use_bias else None
        self.grad_bias = grads[1] if layer.use_bias else None
        # Hot-path view caches: the plane's storage never moves after engine
        # construction, so the transposed-weight and broadcast-bias views can
        # be built once instead of per step.
        self._weight_T = self.weight.transpose(0, 2, 1)
        self._bias_row = self.bias[:, None, :] if layer.use_bias else None
        self._cache_x: Optional[np.ndarray] = None
        self._cache_act: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        pre = np.matmul(x, self.weight)
        if self.use_bias:
            pre += self._bias_row  # fresh matmul output: in-place add is safe
        out = self.activation.forward(pre)
        if training:
            self._cache_x = x
            self._cache_act = pre if self.activation.cache_input else out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_pre = self.activation.gradient(grad_output, self._cache_act)
        np.matmul(self._cache_x.transpose(0, 2, 1), grad_pre, out=self.grad_weight)
        if self.use_bias:
            grad_pre.sum(axis=1, out=self.grad_bias)
        return np.matmul(grad_pre, self._weight_T)


class BatchedConv2D(BatchedKernel):
    """All workers' ``Conv2D`` layers via one K-folded im2col + stacked GEMM.

    The worker axis is folded into the im2col batch (patches are per-sample,
    so folding is exact), then the patch matrix is regrouped per worker and
    multiplied against the stacked ``(K, fan_in, filters)`` kernels.
    """

    def __init__(self, layer: Conv2D, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self.activation = layer.activation
        self.use_bias = layer.use_bias
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride
        self.padding = layer._padding_amount
        self.filters = layer.filters
        self.weight = params[0]
        self.grad_weight = grads[0]
        self.bias = params[1] if layer.use_bias else None
        self.grad_bias = grads[1] if layer.use_bias else None
        self._weight_T = self.weight.transpose(0, 2, 1)
        self._bias_row = self.bias[:, None, :] if layer.use_bias else None
        self._cache_columns: Optional[np.ndarray] = None
        self._cache_folded_shape: Optional[Tuple[int, int, int, int]] = None
        self._cache_out_hw: Optional[Tuple[int, int]] = None
        self._cache_act: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        num_workers, batch = x.shape[0], x.shape[1]
        folded = x.reshape((num_workers * batch,) + x.shape[2:])
        columns, (out_h, out_w) = im2col(
            folded, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        fan_in = columns.shape[1]
        stacked = columns.reshape(num_workers, batch * out_h * out_w, fan_in)
        pre = np.matmul(stacked, self.weight)
        if self.use_bias:
            pre += self._bias_row  # fresh matmul output: in-place add is safe
        pre = pre.reshape(num_workers, batch, out_h, out_w, self.filters)
        out = self.activation.forward(pre)
        if training:
            self._cache_columns = stacked
            self._cache_folded_shape = folded.shape
            self._cache_out_hw = (out_h, out_w)
            self._cache_act = pre if self.activation.cache_input else out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_pre = self.activation.gradient(grad_output, self._cache_act)
        num_workers, batch = grad_pre.shape[0], grad_pre.shape[1]
        out_h, out_w = self._cache_out_hw
        grad_matrix = grad_pre.reshape(num_workers, batch * out_h * out_w, self.filters)
        np.matmul(
            self._cache_columns.transpose(0, 2, 1), grad_matrix, out=self.grad_weight
        )
        if self.use_bias:
            grad_matrix.sum(axis=1, out=self.grad_bias)
        grad_columns = np.matmul(grad_matrix, self._weight_T)
        folded = col2im(
            grad_columns.reshape(num_workers * batch * out_h * out_w, -1),
            self._cache_folded_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        return folded.reshape((num_workers, batch) + self._cache_folded_shape[1:])


class BatchedMaxPool2D(BatchedKernel):
    """Max pooling with the worker axis folded into the sample batch."""

    def __init__(self, layer: MaxPool2D, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self.pool_size = layer.pool_size
        self.stride = layer.stride
        self._cache_argmax: Optional[np.ndarray] = None
        self._cache_folded_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        num_workers, batch = x.shape[0], x.shape[1]
        folded = x.reshape((num_workers * batch,) + x.shape[2:])
        columns, (out_h, out_w) = im2col(
            folded, self.pool_size, self.pool_size, self.stride, 0
        )
        channels = folded.shape[3]
        patches = columns.reshape(
            columns.shape[0], self.pool_size * self.pool_size, channels
        )
        argmax = patches.argmax(axis=1)
        out = np.take_along_axis(patches, argmax[:, None, :], axis=1)[:, 0, :]
        if training:
            self._cache_argmax = argmax
            self._cache_folded_shape = folded.shape
        return out.reshape(num_workers, batch, out_h, out_w, channels)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        num_workers, batch = grad_output.shape[0], grad_output.shape[1]
        folded = max_pool_backward(
            self._cache_argmax,
            grad_output.reshape((num_workers * batch,) + grad_output.shape[2:]),
            self._cache_folded_shape,
            self.pool_size,
            self.stride,
        )
        return folded.reshape((num_workers, batch) + self._cache_folded_shape[1:])


class BatchedAvgPool2D(BatchedKernel):
    """Average pooling with the worker axis folded into the sample batch."""

    def __init__(self, layer: AvgPool2D, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self.pool_size = layer.pool_size
        self.stride = layer.stride
        self._cache_folded_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        num_workers, batch = x.shape[0], x.shape[1]
        folded = x.reshape((num_workers * batch,) + x.shape[2:])
        columns, (out_h, out_w) = im2col(
            folded, self.pool_size, self.pool_size, self.stride, 0
        )
        channels = folded.shape[3]
        patches = columns.reshape(
            columns.shape[0], self.pool_size * self.pool_size, channels
        )
        out = patches.mean(axis=1)
        if training:
            self._cache_folded_shape = folded.shape
        return out.reshape(num_workers, batch, out_h, out_w, channels)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        num_workers, batch = grad_output.shape[0], grad_output.shape[1]
        folded = avg_pool_backward(
            grad_output.reshape((num_workers * batch,) + grad_output.shape[2:]),
            self._cache_folded_shape,
            self.pool_size,
            self.stride,
        )
        return folded.reshape((num_workers, batch) + self._cache_folded_shape[1:])


class BatchedGlobalAvgPool2D(BatchedKernel):
    """Global average pooling: ``(K, B, H, W, C) -> (K, B, C)``."""

    def __init__(self, layer: GlobalAvgPool2D, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        height, width = self._cache_shape[2], self._cache_shape[3]
        scale = 1.0 / float(height * width)
        grad = np.broadcast_to(
            grad_output[:, :, None, None, :] * scale, self._cache_shape
        )
        return np.ascontiguousarray(grad)


class BatchedFlatten(BatchedKernel):
    """Flatten all non-(worker, batch) dimensions."""

    def __init__(self, layer: Flatten, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache_shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._cache_shape)


class BatchedActivation(BatchedKernel):
    """Standalone activation: elementwise, shared with the sequential layer."""

    def __init__(self, layer: Activation, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self.activation = layer.activation
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self.activation.forward(x)
        if training:
            self._cache = x if self.activation.cache_input else out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.activation.gradient(grad_output, self._cache)


class BatchedDropout(BatchedKernel):
    """Per-worker inverted dropout replaying each worker's private RNG stream.

    Dropout is RNG-stateful per worker, so the kernel holds every worker's
    own ``Dropout`` layer.  Each training forward draws one ``(B, ...)`` mask
    per *active* row from that worker's stream — the same
    :meth:`~repro.nn.layers.Dropout.sample_mask` call, on the same shape, in
    the same worker order as the sequential engine, so inactive workers
    consume nothing and every stream replays exactly — then applies the
    stacked masks in one vectorized multiply.  Per-worker dropout *rates* may
    differ (each row's mask comes from its own layer); rate-zero rows get an
    exact all-ones mask and no draw, like the sequential fast path.
    """

    needs_worker_layers = True

    def __init__(self, layer: Dropout, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self.worker_layers: Optional[List[Dropout]] = None
        self._cache_mask: Optional[np.ndarray] = None

    def bind_worker_layers(self, layers: Sequence[Layer]) -> None:
        self.worker_layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training:
            self._cache_mask = None
            return x
        rows = self.active_rows
        layers = (
            self.worker_layers
            if rows is None
            else [self.worker_layers[int(k)] for k in rows]
        )
        if all(layer.rate == 0.0 for layer in layers):
            self._cache_mask = None
            return x
        sample_shape = x.shape[1:]
        mask = np.empty_like(x)
        for row, layer in enumerate(layers):
            if layer.rate == 0.0:
                mask[row] = 1.0
            else:
                # Same dtype as the sequential path's mask so both engines
                # perform the identical float multiply.
                mask[row] = layer.sample_mask(sample_shape, dtype=x.dtype)
        self._cache_mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_mask is None:
            return grad_output
        return grad_output * self._cache_mask


class BatchedBatchNorm(BatchedKernel):
    """Per-worker batch normalization over the stacked tensor.

    Statistics reduce over every axis except the leading worker axis and the
    trailing channel axis, so each worker normalizes over exactly the same
    extent as its sequential layer; running statistics update in place on the
    ``(K, C)`` views into the cluster's buffer matrix.
    """

    def __init__(self, layer: BatchNorm, params, grads, buffers) -> None:
        super().__init__(layer, params, grads, buffers)
        self.momentum = layer.momentum
        self.epsilon = layer.epsilon
        self.gamma, self.beta = params
        self.grad_gamma, self.grad_beta = grads
        self.running_mean, self.running_var = buffers
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @staticmethod
    def _expand(stat: np.ndarray, ndim: int) -> np.ndarray:
        """Reshape a ``(K, C)`` statistic for broadcasting against ``ndim`` axes."""
        return stat.reshape((stat.shape[0],) + (1,) * (ndim - 2) + (stat.shape[1],))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = tuple(range(1, x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean[...] = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var[...] = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normalized = (x - self._expand(mean, x.ndim)) * self._expand(inv_std, x.ndim)
        out = self._expand(self.gamma, x.ndim) * normalized + self._expand(
            self.beta, x.ndim
        )
        if training:
            self._cache = (normalized, inv_std)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        normalized, inv_std = self._cache
        ndim = grad_output.ndim
        axes = tuple(range(1, ndim - 1))
        self.grad_gamma[...] = (grad_output * normalized).sum(axis=axes)
        self.grad_beta[...] = grad_output.sum(axis=axes)
        grad_normalized = grad_output * self._expand(self.gamma, ndim)
        mean_grad = grad_normalized.mean(axis=axes)
        mean_grad_normalized = (grad_normalized * normalized).mean(axis=axes)
        return self._expand(inv_std, ndim) * (
            grad_normalized
            - self._expand(mean_grad, ndim)
            - normalized * self._expand(mean_grad_normalized, ndim)
        )


#: Exact-type kernel registry; composites/RNG-stateful layers are deliberately
#: absent (see module docstring) and rejected by :func:`unsupported_layers`.
KERNELS: Dict[Type[Layer], Type[BatchedKernel]] = {
    Dense: BatchedDense,
    Conv2D: BatchedConv2D,
    MaxPool2D: BatchedMaxPool2D,
    AvgPool2D: BatchedAvgPool2D,
    GlobalAvgPool2D: BatchedGlobalAvgPool2D,
    Flatten: BatchedFlatten,
    Activation: BatchedActivation,
    BatchNorm: BatchedBatchNorm,
    Dropout: BatchedDropout,
}


def _kernel_class(layer: Layer) -> Optional[Type[BatchedKernel]]:
    # Exact-type lookup, deliberately NOT an MRO walk: a subclass of a
    # supported layer may override forward/backward, and silently running the
    # parent's kernel for it would break engine parity.  Unknown subclasses
    # must hit the loud construction-time rejection instead.
    return KERNELS.get(type(layer))


def unsupported_layers(model: Sequential) -> List[str]:
    """Names of layers in ``model`` that have no batched kernel (empty = OK)."""
    return [
        f"{layer.name} ({type(layer).__name__})"
        for layer in model.layers
        if _kernel_class(layer) is None
    ]


class BatchedModel:
    """The whole cluster's models as one kernel chain over ``(K, B, ...)``.

    ``reference`` supplies the structure (worker 0's model); the plane
    supplies the per-layer stacked parameter/gradient/buffer views.  One
    :meth:`train_batch` performs every worker's forward pass, loss gradient,
    and backward pass; gradients land in the plane's ``(K, d)`` matrix ready
    for a single batched optimizer update.

    ``worker_models`` (one per plane row, in row order) is required when the
    model contains RNG-stateful layers (``Dropout``): their kernels draw from
    each worker's own layer stream.  ``rows`` — an index array naming which
    workers the plane rows currently hold — lets a masked engine run a
    partial-participation pass: row-aware kernels then consume only those
    workers' streams.
    """

    def __init__(
        self,
        reference: Sequential,
        plane: BatchedPlane,
        worker_models: Optional[Sequence[Sequential]] = None,
    ) -> None:
        missing = unsupported_layers(reference)
        if missing:
            raise ShapeError(
                f"model {reference.name!r} has layers without a batched kernel: "
                f"{', '.join(missing)}"
            )
        self.reference = reference
        self.plane = plane
        self.kernels: List[BatchedKernel] = []
        self._row_aware: List[BatchedKernel] = []
        for index, (layer, (params, grads, buffers)) in enumerate(
            zip(reference.layers, plane.layer_views)
        ):
            kernel = _kernel_class(layer)(layer, params, grads, buffers)
            if kernel.needs_worker_layers:
                if worker_models is None:
                    raise ShapeError(
                        f"layer {layer.name!r} ({type(layer).__name__}) keeps "
                        "per-worker RNG state; construct BatchedModel with "
                        "worker_models so its kernel can replay each worker's "
                        "stream"
                    )
                kernel.bind_worker_layers(
                    [model.layers[index] for model in worker_models]
                )
                self._row_aware.append(kernel)
            self.kernels.append(kernel)

    @property
    def num_workers(self) -> int:
        return self.plane.num_workers

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        for kernel in self._row_aware:
            kernel.active_rows = rows
        out = np.asarray(x, dtype=self.plane.param_matrix.dtype)
        for kernel in self.kernels:
            out = kernel.forward(out, training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for kernel in reversed(self.kernels):
            grad = kernel.backward(grad)
        return grad

    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Loss,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One stacked forward/backward; returns the per-row losses.

        Gradients are left in the plane's gradient matrix (and, equivalently,
        in every covered worker model's gradient views).  ``rows`` names the
        workers the plane rows hold (``None`` = all workers in order).
        """
        outputs = self.forward(x, training=True, rows=rows)
        losses, grad = loss.batched_gradient(outputs, y)
        self.backward(grad)
        return losses

    def __repr__(self) -> str:
        return f"BatchedModel(K={self.num_workers}, layers={len(self.kernels)})"
