"""Scaled-down versions of the architectures evaluated in the paper.

The paper trains LeNet-5 (62 K parameters), VGG16* (2.6 M), DenseNet121
(6.9 M), DenseNet201 (18 M) and fine-tunes ConvNeXtLarge (198 M).  Training
networks of that size in pure NumPy on a CPU is not feasible, so each factory
below builds a *miniature of the same family*: the layer pattern, the
initializer, and the regularization follow the original, while widths and
depths are reduced so that the distributed experiments finish in seconds.
The communication/computation trade-offs that FDA exploits depend only on the
relative model dimension ``d``, which these models still expose faithfully
(the Θ∝d relation of Figure 12 is reproduced across them).

Every factory returns a **built** :class:`~repro.nn.model.Sequential`, so the
caller can immediately read ``model.num_parameters`` and the flat parameter
vector.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DenseBlock,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    TransitionDown,
)
from repro.nn.model import Sequential


def mlp(
    input_dim: int,
    num_classes: int,
    hidden_units: Sequence[int] = (64, 32),
    activation: str = "relu",
    seed: int = 0,
    name: str = "mlp",
) -> Sequential:
    """A plain multi-layer perceptron on flat feature vectors.

    Used throughout the test-suite and in the quickstart example because it
    trains in milliseconds while still exercising every FDA code path.
    """
    if input_dim <= 0:
        raise ConfigurationError(f"input_dim must be positive, got {input_dim}")
    if num_classes <= 1:
        raise ConfigurationError(f"num_classes must be at least 2, got {num_classes}")
    layers = []
    for index, units in enumerate(hidden_units):
        layers.append(Dense(units, activation=activation, name=f"{name}_dense{index}"))
    layers.append(Dense(num_classes, activation=None, name=f"{name}_logits"))
    model = Sequential(layers, name=name)
    model.build((input_dim,), seed=seed)
    return model


def lenet5(
    input_shape: Tuple[int, int, int] = (14, 14, 1),
    num_classes: int = 10,
    scale: float = 1.0,
    seed: int = 0,
    name: str = "lenet5",
) -> Sequential:
    """Miniature LeNet-5 (conv-pool-conv-pool-dense-dense-logits).

    The paper's LeNet-5 has ~62 K parameters on 28x28 MNIST; with the default
    14x14 synthetic digits and ``scale=1`` this model has a few thousand
    parameters, which keeps the Figure-3/8 sweeps fast.  Glorot uniform
    initialization matches the paper.
    """
    if num_classes <= 1:
        raise ConfigurationError(f"num_classes must be at least 2, got {num_classes}")
    width = max(2, int(round(6 * scale)))
    width2 = max(4, int(round(16 * scale)))
    dense_units = max(8, int(round(32 * scale)))
    layers = [
        Conv2D(width, kernel_size=3, padding="same", activation="relu",
               kernel_initializer="glorot_uniform", name=f"{name}_conv1"),
        MaxPool2D(2, name=f"{name}_pool1"),
        Conv2D(width2, kernel_size=3, padding="same", activation="relu",
               kernel_initializer="glorot_uniform", name=f"{name}_conv2"),
        MaxPool2D(2, name=f"{name}_pool2"),
        Flatten(name=f"{name}_flatten"),
        Dense(dense_units, activation="relu", kernel_initializer="glorot_uniform",
              name=f"{name}_dense1"),
        Dense(num_classes, activation=None, kernel_initializer="glorot_uniform",
              name=f"{name}_logits"),
    ]
    model = Sequential(layers, name=name)
    model.build(input_shape, seed=seed)
    return model


def vgg_mini(
    input_shape: Tuple[int, int, int] = (14, 14, 1),
    num_classes: int = 10,
    scale: float = 1.0,
    seed: int = 0,
    name: str = "vgg_mini",
) -> Sequential:
    """Miniature VGG16* (stacked 3x3 conv blocks + two dense layers).

    The paper's VGG16* drops the 512-channel blocks and shrinks the FC layers
    to 512 units; this miniature keeps the same "two convs then pool" block
    structure with much smaller widths.  It is deliberately several times
    larger than :func:`lenet5`, mirroring the 62 K vs 2.6 M gap in the paper.
    """
    if num_classes <= 1:
        raise ConfigurationError(f"num_classes must be at least 2, got {num_classes}")
    base = max(4, int(round(8 * scale)))
    dense_units = max(16, int(round(64 * scale)))
    layers = [
        Conv2D(base, 3, padding="same", activation="relu",
               kernel_initializer="glorot_uniform", name=f"{name}_conv1a"),
        Conv2D(base, 3, padding="same", activation="relu",
               kernel_initializer="glorot_uniform", name=f"{name}_conv1b"),
        MaxPool2D(2, name=f"{name}_pool1"),
        Conv2D(base * 2, 3, padding="same", activation="relu",
               kernel_initializer="glorot_uniform", name=f"{name}_conv2a"),
        Conv2D(base * 2, 3, padding="same", activation="relu",
               kernel_initializer="glorot_uniform", name=f"{name}_conv2b"),
        MaxPool2D(2, name=f"{name}_pool2"),
        Flatten(name=f"{name}_flatten"),
        Dense(dense_units, activation="relu", kernel_initializer="glorot_uniform",
              name=f"{name}_fc1"),
        Dense(dense_units, activation="relu", kernel_initializer="glorot_uniform",
              name=f"{name}_fc2"),
        Dense(num_classes, activation=None, kernel_initializer="glorot_uniform",
              name=f"{name}_logits"),
    ]
    model = Sequential(layers, name=name)
    model.build(input_shape, seed=seed)
    return model


def densenet_mini(
    input_shape: Tuple[int, int, int] = (12, 12, 3),
    num_classes: int = 10,
    blocks: Sequence[int] = (2, 2),
    growth_rate: int = 6,
    dropout_rate: float = 0.2,
    seed: int = 0,
    name: str = "densenet_mini",
) -> Sequential:
    """Miniature DenseNet (initial conv, dense blocks with transitions, GAP head).

    Mirrors DenseNet121/201 as used in the paper: He-normal initialization,
    dropout rate 0.2, dense connectivity, and compression-0.5 transition
    layers.  ``blocks=(2, 2)`` plays the role of DenseNet121 and a deeper
    ``blocks=(3, 3)`` of DenseNet201 in the benchmark configurations.
    """
    if num_classes <= 1:
        raise ConfigurationError(f"num_classes must be at least 2, got {num_classes}")
    if not blocks:
        raise ConfigurationError("blocks must contain at least one dense block size")
    layers = [
        Conv2D(growth_rate * 2, kernel_size=3, padding="same", activation="relu",
               kernel_initializer="he_normal", name=f"{name}_stem"),
    ]
    for index, num_layers in enumerate(blocks):
        layers.append(
            DenseBlock(num_layers, growth_rate, kernel_initializer="he_normal",
                       name=f"{name}_block{index}")
        )
        if index < len(blocks) - 1:
            layers.append(TransitionDown(0.5, kernel_initializer="he_normal",
                                         name=f"{name}_transition{index}"))
    layers.extend(
        [
            BatchNorm(name=f"{name}_bn_final"),
            GlobalAvgPool2D(name=f"{name}_gap"),
            Dropout(dropout_rate, seed=seed, name=f"{name}_dropout"),
            Dense(num_classes, activation=None, kernel_initializer="he_normal",
                  name=f"{name}_logits"),
        ]
    )
    model = Sequential(layers, name=name)
    model.build(input_shape, seed=seed)
    return model


def transfer_head(
    feature_dim: int,
    num_classes: int = 100,
    hidden_units: Sequence[int] = (96, 64),
    dropout_rate: float = 0.1,
    seed: int = 0,
    name: str = "transfer_head",
) -> Sequential:
    """Trainable head for the transfer-learning (fine-tuning) scenario.

    The paper fine-tunes the whole 198 M-parameter ConvNeXtLarge on CIFAR-100
    after ImageNet pre-training.  Here the frozen backbone is the synthetic
    feature extractor in :mod:`repro.data.features`; this factory builds the
    trainable part that FDA/AdamW actually update.  GELU activations mirror
    the ConvNeXt design.
    """
    if feature_dim <= 0:
        raise ConfigurationError(f"feature_dim must be positive, got {feature_dim}")
    if num_classes <= 1:
        raise ConfigurationError(f"num_classes must be at least 2, got {num_classes}")
    layers = []
    for index, units in enumerate(hidden_units):
        layers.append(Dense(units, activation="gelu", kernel_initializer="glorot_uniform",
                            name=f"{name}_dense{index}"))
        if dropout_rate > 0:
            layers.append(Dropout(dropout_rate, seed=seed + index, name=f"{name}_dropout{index}"))
    layers.append(Dense(num_classes, activation=None, kernel_initializer="glorot_uniform",
                        name=f"{name}_logits"))
    model = Sequential(layers, name=name)
    model.build((feature_dim,), seed=seed)
    return model
