"""Pure-NumPy neural-network substrate.

This subpackage replaces the TensorFlow/Keras stack used in the paper.  It
provides layers with explicit forward/backward passes, standard initializers
(Glorot uniform, He normal), losses, metrics, a :class:`Sequential` model with
flat-parameter views (what the FDA algorithm operates on), and scaled-down
versions of the paper's architectures (LeNet-5, VGG16*, DenseNet, transfer
heads).
"""

from repro.nn.initializers import (
    constant_init,
    glorot_uniform,
    he_normal,
    lecun_normal,
    zeros_init,
)
from repro.nn.layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DenseBlock,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
    TransitionDown,
)
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)
from repro.nn.batched import BatchedModel, BatchedPlane
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.model import Sequential
from repro.nn.plane import ParameterPlane
from repro.nn.architectures import (
    densenet_mini,
    lenet5,
    mlp,
    transfer_head,
    vgg_mini,
)

__all__ = [
    "constant_init",
    "glorot_uniform",
    "he_normal",
    "lecun_normal",
    "zeros_init",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Activation",
    "DenseBlock",
    "TransitionDown",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "Sequential",
    "ParameterPlane",
    "BatchedModel",
    "BatchedPlane",
    "lenet5",
    "vgg_mini",
    "densenet_mini",
    "transfer_head",
    "mlp",
]
