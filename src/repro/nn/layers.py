"""Neural-network layers with explicit forward and backward passes.

Every layer follows the same minimal contract:

* ``build(input_shape, rng)`` allocates parameters for a given per-sample
  input shape (no batch dimension) and returns the per-sample output shape;
* ``forward(x, training)`` computes the output, caching whatever the backward
  pass will need;
* ``backward(grad_output)`` consumes the upstream gradient, stores parameter
  gradients internally, and returns the gradient w.r.t. the layer input;
* ``parameters()`` / ``gradients()`` return matching lists of arrays that the
  model flattens into the single parameter vector the FDA algorithm works on.

Image tensors use the NHWC layout.  Arithmetic is dtype-preserving: every
kernel computes in the dtype of the plane-owned arrays it touches (float64 —
the reference mode with headroom for the suite's gradient checks — or the
float32 fast mode; see :mod:`repro.backend`).  Constants are Python floats,
which NumPy's weak promotion keeps from upcasting float32 operands.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ModelNotBuiltError, ShapeError
from repro.nn.activations import ActivationFunction, get_activation
from repro.nn.functional import (
    avg_pool_backward,
    col2im,
    conv_output_size,
    flatten_batch,
    global_average_pool,
    im2col,
    max_pool_backward,
)
from repro.nn.initializers import get_initializer, ones_init, zeros_init

Shape = Tuple[int, ...]

#: A reference to an array-valued attribute, see :mod:`repro.nn.plane`.
ArrayRef = Tuple[object, str]


class Layer:
    """Base class for all layers."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__.lower()
        self.built = False
        self.input_shape: Optional[Shape] = None
        self.output_shape: Optional[Shape] = None

    # -- construction ------------------------------------------------------

    def build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        """Allocate parameters for ``input_shape`` and return the output shape."""
        self.input_shape = tuple(input_shape)
        self.output_shape = self._build(self.input_shape, rng)
        self.built = True
        return self.output_shape

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        raise NotImplementedError

    # -- compute -----------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- parameters ---------------------------------------------------------

    def parameters(self) -> List[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    def gradients(self) -> List[np.ndarray]:
        """Gradient arrays aligned one-to-one with :meth:`parameters`."""
        return []

    def buffers(self) -> List[np.ndarray]:
        """Non-trainable state arrays (e.g. batch-norm running statistics)."""
        return []

    # -- parameter-plane integration ----------------------------------------

    def parameter_refs(self) -> List[ArrayRef]:
        """``(holder, attribute)`` pairs aligned with :meth:`parameters`.

        The :class:`~repro.nn.plane.ParameterPlane` uses these to replace the
        layer's arrays with views into the model's contiguous flat vector.
        """
        return []

    def gradient_refs(self) -> List[ArrayRef]:
        """``(holder, attribute)`` pairs aligned with :meth:`gradients`."""
        return []

    def buffer_refs(self) -> List[ArrayRef]:
        """``(holder, attribute)`` pairs aligned with :meth:`buffers`."""
        return []

    def fresh(self) -> "Layer":
        """An unbuilt copy of this layer carrying only its constructor config.

        Used by :meth:`Sequential.clone` to rebuild a model structurally
        instead of deep-copying built layers (which would also snapshot
        transient activation caches).  Configuration objects (activations,
        initializers) are shared — they are stateless.
        """
        dup = copy.copy(self)
        dup.built = False
        dup.input_shape = None
        dup.output_shape = None
        dup._fresh_reset()
        return dup

    def _fresh_reset(self) -> None:
        """Subclasses clear parameters, gradients, buffers, and caches here."""

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.parameters()))

    def _require_built(self) -> None:
        if not self.built:
            raise ModelNotBuiltError(f"layer {self.name!r} has not been built yet")

    def __repr__(self) -> str:
        shape = self.output_shape if self.built else "unbuilt"
        return f"{type(self).__name__}(name={self.name!r}, output_shape={shape})"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b`` with an optional activation."""

    def __init__(
        self,
        units: int,
        activation=None,
        use_bias: bool = True,
        kernel_initializer="glorot_uniform",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ConfigurationError(f"units must be positive, got {units}")
        self.units = int(units)
        self.activation: ActivationFunction = get_activation(activation)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.weight: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self._grad_weight: Optional[np.ndarray] = None
        self._grad_bias: Optional[np.ndarray] = None
        self._cache_x: Optional[np.ndarray] = None
        self._cache_act: Optional[np.ndarray] = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects flat inputs of shape (features,), got {input_shape}"
            )
        fan_in = int(input_shape[0])
        fan_out = self.units
        self.weight = self.kernel_initializer((fan_in, fan_out), fan_in, fan_out, rng)
        self._grad_weight = np.zeros_like(self.weight)
        if self.use_bias:
            self.bias = zeros_init((fan_out,), fan_in, fan_out, rng)
            self._grad_bias = np.zeros_like(self.bias)
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ShapeError(
                f"Dense {self.name!r} expected input of shape (N, {self.weight.shape[0]}), "
                f"got {x.shape}"
            )
        pre = x @ self.weight
        if self.use_bias:
            pre = pre + self.bias
        out = self.activation.forward(pre)
        if training:
            self._cache_x = x
            self._cache_act = pre if self.activation.cache_input else out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_x is None:
            raise ModelNotBuiltError(
                f"Dense {self.name!r}: backward called without a training forward pass"
            )
        grad_pre = self.activation.gradient(grad_output, self._cache_act)
        self._grad_weight[...] = self._cache_x.T @ grad_pre
        if self.use_bias:
            self._grad_bias[...] = grad_pre.sum(axis=0)
        return grad_pre @ self.weight.T

    def parameters(self) -> List[np.ndarray]:
        self._require_built()
        params = [self.weight]
        if self.use_bias:
            params.append(self.bias)
        return params

    def gradients(self) -> List[np.ndarray]:
        self._require_built()
        grads = [self._grad_weight]
        if self.use_bias:
            grads.append(self._grad_bias)
        return grads

    def parameter_refs(self) -> List[ArrayRef]:
        refs: List[ArrayRef] = [(self, "weight")]
        if self.use_bias:
            refs.append((self, "bias"))
        return refs

    def gradient_refs(self) -> List[ArrayRef]:
        refs: List[ArrayRef] = [(self, "_grad_weight")]
        if self.use_bias:
            refs.append((self, "_grad_bias"))
        return refs

    def _fresh_reset(self) -> None:
        self.weight = None
        self.bias = None
        self._grad_weight = None
        self._grad_bias = None
        self._cache_x = None
        self._cache_act = None


class Conv2D(Layer):
    """2-D convolution over NHWC tensors, implemented with im2col."""

    def __init__(
        self,
        filters: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: str = "same",
        activation=None,
        use_bias: bool = True,
        kernel_initializer="glorot_uniform",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if filters <= 0:
            raise ConfigurationError(f"filters must be positive, got {filters}")
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        if stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {stride}")
        if padding not in ("same", "valid"):
            raise ConfigurationError(f"padding must be 'same' or 'valid', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding_mode = padding
        self.activation: ActivationFunction = get_activation(activation)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = get_initializer(kernel_initializer)
        self.weight: Optional[np.ndarray] = None  # (kh*kw*cin, filters)
        self.bias: Optional[np.ndarray] = None
        self._grad_weight: Optional[np.ndarray] = None
        self._grad_bias: Optional[np.ndarray] = None
        self._padding_amount = 0
        self._cache_columns: Optional[np.ndarray] = None
        self._cache_input_shape: Optional[Tuple[int, int, int, int]] = None
        self._cache_act: Optional[np.ndarray] = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        if len(input_shape) != 3:
            raise ShapeError(f"Conv2D expects (H, W, C) inputs, got {input_shape}")
        height, width, channels = input_shape
        if self.padding_mode == "same":
            if self.stride != 1:
                raise ConfigurationError(
                    "padding='same' is only supported with stride=1 in this implementation"
                )
            self._padding_amount = (self.kernel_size - 1) // 2
        else:
            self._padding_amount = 0
        out_h = conv_output_size(height, self.kernel_size, self.stride, self._padding_amount)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self._padding_amount)
        fan_in = self.kernel_size * self.kernel_size * channels
        fan_out = self.kernel_size * self.kernel_size * self.filters
        self.weight = self.kernel_initializer(
            (fan_in, self.filters), fan_in, fan_out, rng
        )
        self._grad_weight = np.zeros_like(self.weight)
        if self.use_bias:
            self.bias = zeros_init((self.filters,), fan_in, fan_out, rng)
            self._grad_bias = np.zeros_like(self.bias)
        return (out_h, out_w, self.filters)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if x.ndim != 4 or x.shape[1:] != self.input_shape:
            raise ShapeError(
                f"Conv2D {self.name!r} expected input of shape (N, *{self.input_shape}), "
                f"got {x.shape}"
            )
        columns, (out_h, out_w) = im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self._padding_amount
        )
        pre = columns @ self.weight
        if self.use_bias:
            pre = pre + self.bias
        pre = pre.reshape(x.shape[0], out_h, out_w, self.filters)
        out = self.activation.forward(pre)
        if training:
            self._cache_columns = columns
            self._cache_input_shape = x.shape
            self._cache_act = pre if self.activation.cache_input else out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_columns is None:
            raise ModelNotBuiltError(
                f"Conv2D {self.name!r}: backward called without a training forward pass"
            )
        grad_pre = self.activation.gradient(grad_output, self._cache_act)
        batch = self._cache_input_shape[0]
        grad_matrix = grad_pre.reshape(batch * grad_pre.shape[1] * grad_pre.shape[2], self.filters)
        self._grad_weight[...] = self._cache_columns.T @ grad_matrix
        if self.use_bias:
            self._grad_bias[...] = grad_matrix.sum(axis=0)
        grad_columns = grad_matrix @ self.weight.T
        return col2im(
            grad_columns,
            self._cache_input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self._padding_amount,
        )

    def parameters(self) -> List[np.ndarray]:
        self._require_built()
        params = [self.weight]
        if self.use_bias:
            params.append(self.bias)
        return params

    def gradients(self) -> List[np.ndarray]:
        self._require_built()
        grads = [self._grad_weight]
        if self.use_bias:
            grads.append(self._grad_bias)
        return grads

    def parameter_refs(self) -> List[ArrayRef]:
        refs: List[ArrayRef] = [(self, "weight")]
        if self.use_bias:
            refs.append((self, "bias"))
        return refs

    def gradient_refs(self) -> List[ArrayRef]:
        refs: List[ArrayRef] = [(self, "_grad_weight")]
        if self.use_bias:
            refs.append((self, "_grad_bias"))
        return refs

    def _fresh_reset(self) -> None:
        self.weight = None
        self.bias = None
        self._grad_weight = None
        self._grad_bias = None
        self._padding_amount = 0
        self._cache_columns = None
        self._cache_input_shape = None
        self._cache_act = None


class _Pool2D(Layer):
    """Shared geometry handling for max/average pooling."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name=None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ConfigurationError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {stride}")

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        del rng
        if len(input_shape) != 3:
            raise ShapeError(f"{type(self).__name__} expects (H, W, C) inputs, got {input_shape}")
        height, width, channels = input_shape
        out_h = conv_output_size(height, self.pool_size, self.stride, 0)
        out_w = conv_output_size(width, self.pool_size, self.stride, 0)
        return (out_h, out_w, channels)

    def _columns(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        columns, out_hw = im2col(x, self.pool_size, self.pool_size, self.stride, 0)
        channels = x.shape[3]
        # (rows, pool_size*pool_size, C): patch window is contiguous before channels.
        return columns.reshape(columns.shape[0], self.pool_size * self.pool_size, channels), out_hw


class MaxPool2D(_Pool2D):
    """Max pooling over non-overlapping (or strided) windows."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name=None) -> None:
        super().__init__(pool_size, stride, name)
        self._cache_argmax: Optional[np.ndarray] = None
        self._cache_shape: Optional[Tuple[int, int, int, int]] = None

    def _fresh_reset(self) -> None:
        self._cache_argmax = None
        self._cache_shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        patches, (out_h, out_w) = self._columns(x)
        argmax = patches.argmax(axis=1)
        output = np.take_along_axis(patches, argmax[:, None, :], axis=1)[:, 0, :]
        output = output.reshape(x.shape[0], out_h, out_w, x.shape[3])
        if training:
            self._cache_argmax = argmax
            self._cache_shape = x.shape
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_argmax is None:
            raise ModelNotBuiltError(
                f"MaxPool2D {self.name!r}: backward called without a training forward pass"
            )
        # One flat argmax-indexed scatter instead of the patch-matrix +
        # per-kernel-position col2im loop; see nn.functional.max_pool_backward.
        return max_pool_backward(
            self._cache_argmax, grad_output, self._cache_shape, self.pool_size, self.stride
        )


class AvgPool2D(_Pool2D):
    """Average pooling over (possibly strided) windows."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name=None) -> None:
        super().__init__(pool_size, stride, name)
        self._cache_shape: Optional[Tuple[int, int, int, int]] = None

    def _fresh_reset(self) -> None:
        self._cache_shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        patches, (out_h, out_w) = self._columns(x)
        output = patches.mean(axis=1).reshape(x.shape[0], out_h, out_w, x.shape[3])
        if training:
            self._cache_shape = x.shape
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_shape is None:
            raise ModelNotBuiltError(
                f"AvgPool2D {self.name!r}: backward called without a training forward pass"
            )
        # Strided window adds of the shared gradient; see nn.functional.avg_pool_backward.
        return avg_pool_backward(
            grad_output, self._cache_shape, self.pool_size, self.stride
        )


class GlobalAvgPool2D(Layer):
    """Global average pooling: NHWC -> (N, C)."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._cache_shape: Optional[Tuple[int, int, int, int]] = None

    def _fresh_reset(self) -> None:
        self._cache_shape = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        del rng
        if len(input_shape) != 3:
            raise ShapeError(f"GlobalAvgPool2D expects (H, W, C) inputs, got {input_shape}")
        return (input_shape[2],)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if training:
            self._cache_shape = x.shape
        return global_average_pool(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_shape is None:
            raise ModelNotBuiltError(
                f"GlobalAvgPool2D {self.name!r}: backward called without a training forward pass"
            )
        batch, height, width, channels = self._cache_shape
        scale = 1.0 / float(height * width)
        grad = np.broadcast_to(
            grad_output[:, None, None, :] * scale, (batch, height, width, channels)
        )
        return np.ascontiguousarray(grad)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def _fresh_reset(self) -> None:
        self._cache_shape = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        del rng
        size = 1
        for dim in input_shape:
            size *= int(dim)
        return (size,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if training:
            self._cache_shape = x.shape
        return flatten_batch(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_shape is None:
            raise ModelNotBuiltError(
                f"Flatten {self.name!r}: backward called without a training forward pass"
            )
        return grad_output.reshape(self._cache_shape)


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float, seed: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must lie in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._cache_mask: Optional[np.ndarray] = None

    def _fresh_reset(self) -> None:
        # The RNG is stateful: a clone must advance independently of the original.
        self._rng = copy.deepcopy(self._rng)
        self._cache_mask = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        del rng
        return tuple(input_shape)

    def sample_mask(self, shape: Shape, dtype=np.float64) -> np.ndarray:
        """Draw one inverted-dropout mask for ``shape`` from the private stream.

        The single place the layer's RNG is consumed: the sequential
        :meth:`forward` and the batched kernel
        (:class:`repro.nn.batched.BatchedDropout`) both call it, so the two
        engines replay exactly the same per-worker mask stream.  The RNG draw
        itself is always float64 (dtype does not perturb the stream); the
        returned mask is materialized in ``dtype`` so a float32 activation is
        not upcast by the multiply.
        """
        keep = 1.0 - self.rate
        mask = (self._rng.random(shape) < keep).astype(dtype)
        mask /= keep
        return mask

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if not training or self.rate == 0.0:
            self._cache_mask = None
            return x
        mask = self.sample_mask(x.shape, dtype=x.dtype)
        self._cache_mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_mask is None:
            return grad_output
        return grad_output * self._cache_mask


class BatchNorm(Layer):
    """Batch normalization over the last axis (channels or features).

    Trainable scale/shift (``gamma``/``beta``) are part of the model's flat
    parameter vector; running mean/variance are exposed via :meth:`buffers`
    and synchronized alongside the parameters by the distributed strategies.
    """

    def __init__(
        self, momentum: float = 0.9, epsilon: float = 1e-5, name: Optional[str] = None
    ) -> None:
        super().__init__(name)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must lie in [0, 1), got {momentum}")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.gamma: Optional[np.ndarray] = None
        self.beta: Optional[np.ndarray] = None
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None
        self._grad_gamma: Optional[np.ndarray] = None
        self._grad_beta: Optional[np.ndarray] = None
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._reduce_axes: Optional[Tuple[int, ...]] = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        channels = int(input_shape[-1])
        self.gamma = ones_init((channels,), channels, channels, rng)
        self.beta = zeros_init((channels,), channels, channels, rng)
        self.running_mean = np.zeros(channels, dtype=np.float64)
        self.running_var = np.ones(channels, dtype=np.float64)
        self._grad_gamma = np.zeros_like(self.gamma)
        self._grad_beta = np.zeros_like(self.beta)
        self._reduce_axes = tuple(range(len(input_shape)))  # all batch+spatial axes
        return tuple(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean[...] = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var[...] = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normalized = (x - mean) * inv_std
        out = self.gamma * normalized + self.beta
        if training:
            self._cache = (normalized, inv_std, np.asarray(axes))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache is None:
            raise ModelNotBuiltError(
                f"BatchNorm {self.name!r}: backward called without a training forward pass"
            )
        normalized, inv_std, axes_array = self._cache
        axes = tuple(int(a) for a in axes_array)
        count = 1
        for axis in axes:
            count *= grad_output.shape[axis]
        self._grad_gamma[...] = (grad_output * normalized).sum(axis=axes)
        self._grad_beta[...] = grad_output.sum(axis=axes)
        grad_normalized = grad_output * self.gamma
        mean_grad = grad_normalized.mean(axis=axes)
        mean_grad_normalized = (grad_normalized * normalized).mean(axis=axes)
        grad_input = inv_std * (grad_normalized - mean_grad - normalized * mean_grad_normalized)
        return grad_input

    def parameters(self) -> List[np.ndarray]:
        self._require_built()
        return [self.gamma, self.beta]

    def gradients(self) -> List[np.ndarray]:
        self._require_built()
        return [self._grad_gamma, self._grad_beta]

    def buffers(self) -> List[np.ndarray]:
        self._require_built()
        return [self.running_mean, self.running_var]

    def parameter_refs(self) -> List[ArrayRef]:
        return [(self, "gamma"), (self, "beta")]

    def gradient_refs(self) -> List[ArrayRef]:
        return [(self, "_grad_gamma"), (self, "_grad_beta")]

    def buffer_refs(self) -> List[ArrayRef]:
        return [(self, "running_mean"), (self, "running_var")]

    def _fresh_reset(self) -> None:
        self.gamma = None
        self.beta = None
        self.running_mean = None
        self.running_var = None
        self._grad_gamma = None
        self._grad_beta = None
        self._cache = None
        self._reduce_axes = None


class Activation(Layer):
    """Standalone activation layer (useful between BatchNorm and Conv2D)."""

    def __init__(self, activation, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.activation: ActivationFunction = get_activation(activation)
        self._cache: Optional[np.ndarray] = None

    def _fresh_reset(self) -> None:
        self._cache = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        del rng
        return tuple(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        out = self.activation.forward(x)
        if training:
            self._cache = x if self.activation.cache_input else out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache is None:
            raise ModelNotBuiltError(
                f"Activation {self.name!r}: backward called without a training forward pass"
            )
        return self.activation.gradient(grad_output, self._cache)


class DenseBlock(Layer):
    """A DenseNet-style block of ``num_layers`` BN-ReLU-Conv(3x3) units.

    The output of every unit is concatenated (along channels) with its input,
    exactly like the dense connectivity pattern of DenseNet.  Used by
    :func:`repro.nn.architectures.densenet_mini` as the scaled-down stand-in
    for DenseNet121/201.
    """

    def __init__(
        self,
        num_layers: int,
        growth_rate: int,
        kernel_initializer="he_normal",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if num_layers <= 0:
            raise ConfigurationError(f"num_layers must be positive, got {num_layers}")
        if growth_rate <= 0:
            raise ConfigurationError(f"growth_rate must be positive, got {growth_rate}")
        self.num_layers = int(num_layers)
        self.growth_rate = int(growth_rate)
        self.kernel_initializer = kernel_initializer
        self._norms: List[BatchNorm] = []
        self._convs: List[Conv2D] = []
        self._cache_inputs: List[np.ndarray] = []

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        if len(input_shape) != 3:
            raise ShapeError(f"DenseBlock expects (H, W, C) inputs, got {input_shape}")
        height, width, channels = input_shape
        self._norms = []
        self._convs = []
        current_channels = channels
        for index in range(self.num_layers):
            norm = BatchNorm(name=f"{self.name}_bn{index}")
            conv = Conv2D(
                self.growth_rate,
                kernel_size=3,
                stride=1,
                padding="same",
                activation=None,
                kernel_initializer=self.kernel_initializer,
                name=f"{self.name}_conv{index}",
            )
            norm.build((height, width, current_channels), rng)
            conv.build((height, width, current_channels), rng)
            self._norms.append(norm)
            self._convs.append(conv)
            current_channels += self.growth_rate
        return (height, width, current_channels)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        features = x
        self._cache_inputs = []
        for norm, conv in zip(self._norms, self._convs):
            normalized = norm.forward(features, training)
            activated = np.maximum(normalized, 0.0)
            if training:
                self._cache_inputs.append(activated)
            new_features = conv.forward(activated, training)
            features = np.concatenate([features, new_features], axis=-1)
        return features

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if not self._cache_inputs:
            raise ModelNotBuiltError(
                f"DenseBlock {self.name!r}: backward called without a training forward pass"
            )
        grad_features = grad_output
        for index in range(self.num_layers - 1, -1, -1):
            conv = self._convs[index]
            norm = self._norms[index]
            input_channels = conv.input_shape[2]
            grad_prev = grad_features[..., :input_channels]
            grad_new = grad_features[..., input_channels:]
            grad_activated = conv.backward(np.ascontiguousarray(grad_new))
            grad_activated = grad_activated * (self._cache_inputs[index] > 0.0)
            grad_features = grad_prev + norm.backward(grad_activated)
        return grad_features

    def parameters(self) -> List[np.ndarray]:
        self._require_built()
        params: List[np.ndarray] = []
        for norm, conv in zip(self._norms, self._convs):
            params.extend(norm.parameters())
            params.extend(conv.parameters())
        return params

    def gradients(self) -> List[np.ndarray]:
        self._require_built()
        grads: List[np.ndarray] = []
        for norm, conv in zip(self._norms, self._convs):
            grads.extend(norm.gradients())
            grads.extend(conv.gradients())
        return grads

    def buffers(self) -> List[np.ndarray]:
        self._require_built()
        result: List[np.ndarray] = []
        for norm in self._norms:
            result.extend(norm.buffers())
        return result

    def parameter_refs(self) -> List[ArrayRef]:
        refs: List[ArrayRef] = []
        for norm, conv in zip(self._norms, self._convs):
            refs.extend(norm.parameter_refs())
            refs.extend(conv.parameter_refs())
        return refs

    def gradient_refs(self) -> List[ArrayRef]:
        refs: List[ArrayRef] = []
        for norm, conv in zip(self._norms, self._convs):
            refs.extend(norm.gradient_refs())
            refs.extend(conv.gradient_refs())
        return refs

    def buffer_refs(self) -> List[ArrayRef]:
        refs: List[ArrayRef] = []
        for norm in self._norms:
            refs.extend(norm.buffer_refs())
        return refs

    def _fresh_reset(self) -> None:
        self._norms = []
        self._convs = []
        self._cache_inputs = []


class TransitionDown(Layer):
    """DenseNet transition layer: BatchNorm -> 1x1 Conv (compression) -> 2x2 AvgPool."""

    def __init__(
        self,
        compression: float = 0.5,
        kernel_initializer="he_normal",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if not 0.0 < compression <= 1.0:
            raise ConfigurationError(f"compression must lie in (0, 1], got {compression}")
        self.compression = float(compression)
        self.kernel_initializer = kernel_initializer
        self._norm: Optional[BatchNorm] = None
        self._conv: Optional[Conv2D] = None
        self._pool: Optional[AvgPool2D] = None
        self._cache_normalized: Optional[np.ndarray] = None

    def _build(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        if len(input_shape) != 3:
            raise ShapeError(f"TransitionDown expects (H, W, C) inputs, got {input_shape}")
        height, width, channels = input_shape
        out_channels = max(1, int(round(channels * self.compression)))
        self._norm = BatchNorm(name=f"{self.name}_bn")
        self._conv = Conv2D(
            out_channels,
            kernel_size=1,
            stride=1,
            padding="valid",
            activation=None,
            kernel_initializer=self.kernel_initializer,
            name=f"{self.name}_conv",
        )
        self._pool = AvgPool2D(pool_size=2, name=f"{self.name}_pool")
        shape = self._norm.build((height, width, channels), rng)
        shape = self._conv.build(shape, rng)
        shape = self._pool.build(shape, rng)
        return shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        normalized = self._norm.forward(x, training)
        activated = np.maximum(normalized, 0.0)
        if training:
            self._cache_normalized = activated
        convolved = self._conv.forward(activated, training)
        return self._pool.forward(convolved, training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_normalized is None:
            raise ModelNotBuiltError(
                f"TransitionDown {self.name!r}: backward called without a training forward pass"
            )
        grad = self._pool.backward(grad_output)
        grad = self._conv.backward(grad)
        grad = grad * (self._cache_normalized > 0.0)
        return self._norm.backward(grad)

    def parameters(self) -> List[np.ndarray]:
        self._require_built()
        return self._norm.parameters() + self._conv.parameters()

    def gradients(self) -> List[np.ndarray]:
        self._require_built()
        return self._norm.gradients() + self._conv.gradients()

    def buffers(self) -> List[np.ndarray]:
        self._require_built()
        return self._norm.buffers()

    def parameter_refs(self) -> List[ArrayRef]:
        return self._norm.parameter_refs() + self._conv.parameter_refs()

    def gradient_refs(self) -> List[ArrayRef]:
        return self._norm.gradient_refs() + self._conv.gradient_refs()

    def buffer_refs(self) -> List[ArrayRef]:
        return self._norm.buffer_refs()

    def _fresh_reset(self) -> None:
        self._norm = None
        self._conv = None
        self._pool = None
        self._cache_normalized = None
