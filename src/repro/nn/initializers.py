"""Weight initializers.

The paper uses Glorot uniform initialization for LeNet-5 and VGG16*, and He
normal for the DenseNet models; both are provided here together with the
common zero/constant/LeCun variants.  Every initializer takes an explicit
``fan_in``/``fan_out`` pair (computed by the layer) and a NumPy random
generator so the whole model build is reproducible from a single seed.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

Initializer = Callable[[Sequence[int], int, int, np.random.Generator], np.ndarray]


def glorot_uniform(
    shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot (Xavier) uniform: U(-limit, limit) with limit = sqrt(6 / (fan_in + fan_out))."""
    _check_fans(fan_in, fan_out)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=tuple(shape)).astype(np.float64)


def glorot_normal(
    shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot (Xavier) normal: N(0, 2 / (fan_in + fan_out))."""
    _check_fans(fan_in, fan_out)
    stddev = float(np.sqrt(2.0 / (fan_in + fan_out)))
    return rng.normal(0.0, stddev, size=tuple(shape)).astype(np.float64)


def he_normal(
    shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """He normal: N(0, 2 / fan_in), the initializer used for the DenseNets."""
    _check_fans(fan_in, fan_out)
    stddev = float(np.sqrt(2.0 / fan_in))
    return rng.normal(0.0, stddev, size=tuple(shape)).astype(np.float64)


def he_uniform(
    shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """He uniform: U(-limit, limit) with limit = sqrt(6 / fan_in)."""
    _check_fans(fan_in, fan_out)
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=tuple(shape)).astype(np.float64)


def lecun_normal(
    shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """LeCun normal: N(0, 1 / fan_in)."""
    _check_fans(fan_in, fan_out)
    stddev = float(np.sqrt(1.0 / fan_in))
    return rng.normal(0.0, stddev, size=tuple(shape)).astype(np.float64)


def zeros_init(
    shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """All-zeros initializer (used for biases and batch-norm shifts)."""
    del fan_in, fan_out, rng
    return np.zeros(tuple(shape), dtype=np.float64)


def ones_init(
    shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """All-ones initializer (used for batch-norm scales)."""
    del fan_in, fan_out, rng
    return np.ones(tuple(shape), dtype=np.float64)


def constant_init(value: float) -> Initializer:
    """Return an initializer that fills the tensor with ``value``."""

    def _init(
        shape: Sequence[int], fan_in: int, fan_out: int, rng: np.random.Generator
    ) -> np.ndarray:
        del fan_in, fan_out, rng
        return np.full(tuple(shape), float(value), dtype=np.float64)

    return _init


_NAMED_INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "lecun_normal": lecun_normal,
    "zeros": zeros_init,
    "ones": ones_init,
}


def get_initializer(name_or_fn) -> Initializer:
    """Resolve an initializer by name or pass a callable through unchanged."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _NAMED_INITIALIZERS[name_or_fn]
    except KeyError:
        raise ConfigurationError(
            f"unknown initializer {name_or_fn!r}; known: {sorted(_NAMED_INITIALIZERS)}"
        ) from None


def _check_fans(fan_in: int, fan_out: int) -> None:
    if fan_in <= 0 or fan_out <= 0:
        raise ConfigurationError(
            f"fan_in and fan_out must be positive, got fan_in={fan_in}, fan_out={fan_out}"
        )
