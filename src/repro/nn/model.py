"""The :class:`Sequential` model.

A thin container around an ordered list of layers that adds the two things
the rest of the library needs:

* a training interface (``train_batch`` / ``evaluate`` / ``predict``), and
* *flat* views of all trainable parameters and their gradients, which is the
  representation the FDA algorithm, the optimizers, and the distributed
  AllReduce all operate on (``w`` in the paper is exactly this vector).

Since the parameter-plane refactor the flat vector is not re-materialized on
demand: :meth:`Sequential.build` moves every layer's parameters, gradients,
and buffers into one contiguous plane-dtype vector each (see
:class:`~repro.nn.plane.ParameterPlane`), and the layer arrays become views
into it.  ``parameters_view()`` / ``gradients_view()`` / ``buffers_view()``
are therefore zero-copy; the historical ``get_*``/``set_*`` API is kept as a
thin copy-in/copy-out compatibility wrapper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelNotBuiltError, ShapeError
from repro.nn.layers import Layer
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.plane import ParameterPlane
from repro.utils.rng import as_rng


class Sequential:
    """An ordered stack of layers trained with explicit backpropagation."""

    def __init__(self, layers: Sequence[Layer], name: str = "model") -> None:
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.built = False
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None
        self._plane: Optional[ParameterPlane] = None

    # -- construction ------------------------------------------------------

    def build(self, input_shape: Sequence[int], seed=0, dtype=None) -> "Sequential":
        """Build every layer for per-sample ``input_shape`` (no batch dim).

        ``dtype`` selects the plane's active dtype (float64 default, float32
        fast mode); initializers always draw in float64 from the same RNG
        stream, so a float32 build starts from the rounded float64 init.
        """
        rng = as_rng(seed)
        shape = tuple(int(dim) for dim in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(shape, rng)
        self.output_shape = shape
        # Consolidate all layer arrays into contiguous flat storage; from here
        # on the layers hold views into the plane's vectors.
        self._plane = ParameterPlane(self.layers, dtype=dtype)
        self.built = True
        return self

    def _require_built(self) -> None:
        if not self.built:
            raise ModelNotBuiltError(
                f"model {self.name!r} must be built before use (call .build(input_shape))"
            )

    @property
    def plane(self) -> ParameterPlane:
        """The contiguous flat storage backing this model's arrays."""
        self._require_built()
        return self._plane

    @property
    def dtype(self) -> np.dtype:
        """The plane's active dtype (every layer view computes in it)."""
        self._require_built()
        return self._plane.dtype

    def to_dtype(self, dtype) -> "Sequential":
        """Convert the plane (and thus every layer view) to ``dtype`` in place.

        One cast per flat space; a no-op when the dtype already matches.
        Returns ``self`` for chaining.  External storage the plane was
        rebound onto is detached (see :meth:`ParameterPlane.astype`).
        """
        self._require_built()
        self._plane.astype(dtype)
        return self

    def clone(self) -> "Sequential":
        """Structurally rebuilt copy of the model with the same parameters.

        Instead of ``copy.deepcopy`` (which would also snapshot transient
        activation caches), the clone is assembled from fresh unbuilt layers,
        built, and its flat parameter/gradient/buffer vectors overwritten with
        copies of this model's vectors.  The clone owns its own storage.
        """
        self._require_built()
        duplicate = Sequential([layer.fresh() for layer in self.layers], name=self.name)
        duplicate.build(self.input_shape, seed=0, dtype=self._plane.dtype)
        duplicate._plane.params[...] = self._plane.params
        duplicate._plane.grads[...] = self._plane.grads
        duplicate._plane.buffers[...] = self._plane.buffers
        return duplicate

    # -- compute -----------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a forward pass through every layer."""
        self._require_built()
        out = np.asarray(x, dtype=self._plane.dtype)
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` through every layer (reverse order)."""
        self._require_built()
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference-mode forward pass, processed in batches."""
        self._require_built()
        x = np.asarray(x, dtype=self._plane.dtype)
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        if not outputs:
            return np.zeros((0,) + tuple(self.output_shape))
        return np.concatenate(outputs, axis=0)

    def train_batch(self, x: np.ndarray, y: np.ndarray, loss: Optional[Loss] = None) -> float:
        """One forward/backward pass on a mini-batch; gradients are left in the layers."""
        self._require_built()
        loss = loss or SoftmaxCrossEntropy()
        outputs = self.forward(x, training=True)
        loss_value, grad = loss.gradient(outputs, y)
        self.backward(grad)
        return loss_value

    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Optional[Loss] = None,
        batch_size: int = 256,
    ) -> Tuple[float, float]:
        """Return ``(mean loss, accuracy)`` on a dataset, in inference mode."""
        self._require_built()
        loss = loss or SoftmaxCrossEntropy()
        x = np.asarray(x, dtype=self._plane.dtype)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ShapeError(
                f"x and y must have the same number of samples, got {x.shape[0]} and {y.shape[0]}"
            )
        if x.shape[0] == 0:
            return 0.0, 0.0
        total_loss = 0.0
        correct_weighted = 0.0
        for start in range(0, x.shape[0], batch_size):
            batch_x = x[start : start + batch_size]
            batch_y = y[start : start + batch_size]
            outputs = self.forward(batch_x, training=False)
            total_loss += loss.value(outputs, batch_y) * batch_x.shape[0]
            correct_weighted += accuracy(outputs, batch_y) * batch_x.shape[0]
        return total_loss / x.shape[0], correct_weighted / x.shape[0]

    # -- flat parameter views -----------------------------------------------

    def parameter_arrays(self) -> List[np.ndarray]:
        """References to every trainable parameter array, in layer order."""
        self._require_built()
        arrays: List[np.ndarray] = []
        for layer in self.layers:
            arrays.extend(layer.parameters())
        return arrays

    def gradient_arrays(self) -> List[np.ndarray]:
        """References to every gradient array, aligned with :meth:`parameter_arrays`."""
        self._require_built()
        arrays: List[np.ndarray] = []
        for layer in self.layers:
            arrays.extend(layer.gradients())
        return arrays

    def buffer_arrays(self) -> List[np.ndarray]:
        """References to every non-trainable buffer (batch-norm running stats)."""
        self._require_built()
        arrays: List[np.ndarray] = []
        for layer in self.layers:
            arrays.extend(layer.buffers())
        return arrays

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars (``d`` in the paper)."""
        self._require_built()
        return self._plane.num_parameters

    @property
    def num_buffers(self) -> int:
        """Total number of non-trainable scalars."""
        self._require_built()
        return self._plane.num_buffers

    # -- zero-copy views -----------------------------------------------------

    def parameters_view(self) -> np.ndarray:
        """The live flat parameter vector (zero-copy).

        Mutating the returned array mutates the model.  The view stays valid
        across :meth:`set_parameters` (which writes into the same storage) and
        is invalidated only by :meth:`rebind_parameter_storage`.
        """
        self._require_built()
        return self._plane.params

    def gradients_view(self) -> np.ndarray:
        """The live flat gradient vector, aligned with :meth:`parameters_view`."""
        self._require_built()
        return self._plane.grads

    def buffers_view(self) -> np.ndarray:
        """The live flat buffer vector (batch-norm running statistics)."""
        self._require_built()
        return self._plane.buffers

    def rebind_parameter_storage(self, storage: np.ndarray) -> None:
        """Move parameter storage onto caller-owned ``storage`` (values kept).

        Used by :class:`~repro.distributed.cluster.SimulatedCluster` to stack
        all workers' parameters into one ``(K, d)`` matrix.  Views previously
        returned by :meth:`parameters_view` no longer alias the model.
        """
        self._require_built()
        self._plane.rebind_parameters(storage)

    def rebind_gradient_storage(self, storage: np.ndarray) -> None:
        """Move gradient storage onto caller-owned ``storage`` (values kept).

        Used by the batched execution engine to stack all workers' gradients
        into one ``(K, d)`` matrix so a single batched backward pass writes
        every worker's gradients and a single ``step_inplace`` consumes them.
        """
        self._require_built()
        self._plane.rebind_gradients(storage)

    def rebind_buffer_storage(self, storage: np.ndarray) -> None:
        """Move buffer storage onto caller-owned ``storage`` (values kept)."""
        self._require_built()
        self._plane.rebind_buffers(storage)

    # -- copy-in / copy-out compatibility API --------------------------------

    def get_parameters(self) -> np.ndarray:
        """Copy of all trainable parameters flattened into one vector."""
        self._require_built()
        return self._plane.params.copy()

    def set_parameters(self, flat: np.ndarray) -> None:
        """Write a flat vector into the parameter storage (views stay valid)."""
        self._require_built()
        flat = np.asarray(flat, dtype=self._plane.dtype)
        expected = self._plane.num_parameters
        if flat.shape != (expected,):
            raise ShapeError(
                f"expected a flat parameter vector of shape ({expected},), got {flat.shape}"
            )
        self._plane.params[...] = flat

    def get_gradients(self) -> np.ndarray:
        """Copy of all parameter gradients flattened into one vector."""
        self._require_built()
        return self._plane.grads.copy()

    def get_buffers(self) -> np.ndarray:
        """Copy of all non-trainable buffers flattened into one vector."""
        self._require_built()
        return self._plane.buffers.copy()

    def set_buffers(self, flat: np.ndarray) -> None:
        """Write a flat vector into the buffer storage (views stay valid)."""
        self._require_built()
        flat = np.asarray(flat, dtype=self._plane.dtype)
        expected = self._plane.num_buffers
        if flat.shape != (expected,):
            raise ShapeError(
                f"expected a flat buffer vector of shape ({expected},), got {flat.shape}"
            )
        self._plane.buffers[...] = flat

    # -- introspection -------------------------------------------------------

    def summary(self) -> str:
        """Multi-line text summary: one row per layer plus the parameter total."""
        self._require_built()
        lines = [f"Model: {self.name}  (input {self.input_shape})"]
        for layer in self.layers:
            lines.append(
                f"  {layer.name:<24} {str(layer.output_shape):<20} "
                f"params={layer.num_parameters}"
            )
        lines.append(f"Total trainable parameters: {self.num_parameters}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = f"{len(self.layers)} layers"
        if self.built:
            status += f", {self.num_parameters} parameters"
        return f"Sequential(name={self.name!r}, {status})"


def average_models(models: Iterable[Sequential]) -> np.ndarray:
    """Return the average flat parameter vector of several models (the global model)."""
    vectors = [model.get_parameters() for model in models]
    if not vectors:
        raise ShapeError("average_models requires at least one model")
    return np.mean(np.stack(vectors, axis=0), axis=0)
