"""Classification metrics used by the evaluation harness."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def accuracy(logits_or_predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy.

    Accepts either a ``(N, num_classes)`` matrix of logits/probabilities or a
    1-D vector of predicted labels.
    """
    labels = np.asarray(labels)
    predictions = np.asarray(logits_or_predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions and labels must align, got {predictions.shape} and {labels.shape}"
        )
    if labels.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-``k`` accuracy over a matrix of logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, num_classes), got shape {logits.shape}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if labels.size == 0:
        return 0.0
    k = min(k, logits.shape[1])
    top_k = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(np.mean(hits))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix with true classes on rows, predicted classes on columns."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions and labels must align, got {predictions.shape} and {labels.shape}"
        )
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true_label, predicted_label in zip(labels.astype(int), predictions.astype(int)):
        matrix[true_label, predicted_label] += 1
    return matrix
