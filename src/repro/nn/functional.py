"""Low-level tensor helpers shared by the convolutional layers.

All image tensors use the NHWC layout (batch, height, width, channels).  The
conv/pool layers are implemented with im2col/col2im so the inner loop is a
single matrix multiplication, which is the standard way to get acceptable
convolution speed in pure NumPy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """Convert integer labels of shape (N,) to one-hot vectors (N, num_classes)."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ShapeError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nhwc(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NHWC tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (padding, padding), (padding, padding), (0, 0)), mode="constant")


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold NHWC patches into a matrix of shape (N * out_h * out_w, kernel_h * kernel_w * C).

    Returns the patch matrix and the (out_h, out_w) spatial output size.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects an NHWC tensor, got shape {x.shape}")
    batch, height, width, channels = x.shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    padded = pad_nhwc(x, padding)

    # Gather patches with stride tricks: shape (N, out_h, out_w, kernel_h, kernel_w, C).
    batch_stride, row_stride, col_stride, chan_stride = padded.strides
    patches = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, out_h, out_w, kernel_h, kernel_w, channels),
        strides=(
            batch_stride,
            row_stride * stride,
            col_stride * stride,
            row_stride,
            col_stride,
            chan_stride,
        ),
        writeable=False,
    )
    columns = patches.reshape(batch * out_h * out_w, kernel_h * kernel_w * channels)
    return np.ascontiguousarray(columns), (out_h, out_w)


def col2im(
    columns: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a patch-gradient matrix back into an NHWC tensor (adjoint of im2col)."""
    batch, height, width, channels = input_shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    expected_rows = batch * out_h * out_w
    expected_cols = kernel_h * kernel_w * channels
    if columns.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expected columns of shape {(expected_rows, expected_cols)}, "
            f"got {columns.shape}"
        )

    padded = np.zeros(
        (batch, height + 2 * padding, width + 2 * padding, channels), dtype=columns.dtype
    )
    patches = columns.reshape(batch, out_h, out_w, kernel_h, kernel_w, channels)
    for i in range(kernel_h):
        row_end = i + stride * out_h
        for j in range(kernel_w):
            col_end = j + stride * out_w
            padded[:, i:row_end:stride, j:col_end:stride, :] += patches[:, :, :, i, j, :]
    if padding == 0:
        return padded
    return padded[:, padding:-padding, padding:-padding, :]


def _pool_row_coordinates(
    input_shape: Tuple[int, int, int, int], out_h: int, out_w: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-output-row (sample, out-row, out-col) coordinates for pooling scatter.

    Pooling rows enumerate ``(n, oh, ow)`` in C order, exactly the layout
    produced by :func:`im2col` on an unpadded NHWC tensor.
    """
    batch = input_shape[0]
    row_ids = np.arange(batch * out_h * out_w)
    sample = row_ids // (out_h * out_w)
    remainder = row_ids % (out_h * out_w)
    return sample, remainder // out_w, remainder % out_w


def max_pool_backward(
    argmax: np.ndarray,
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    pool_size: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of max pooling via one flat ``np.add.at`` scatter.

    ``argmax`` is the ``(rows, channels)`` within-window winner index cached
    by the forward pass (``rows = N * out_h * out_w``).  Each pooled gradient
    is routed straight to its winning input element by flat indexing — no
    patch-matrix materialization, no per-kernel-position ``col2im`` loop.
    ``np.add.at`` (not plain fancy-index assignment) keeps overlapping
    windows (``stride < pool_size``) correct: coinciding winners accumulate.
    """
    batch, height, width, channels = input_shape
    out_h, out_w = grad_output.shape[1], grad_output.shape[2]
    rows = batch * out_h * out_w
    sample, out_row, out_col = _pool_row_coordinates(input_shape, out_h, out_w)
    in_row = out_row[:, None] * stride + argmax // pool_size
    in_col = out_col[:, None] * stride + argmax % pool_size
    flat_index = (
        (sample[:, None] * height + in_row) * width + in_col
    ) * channels + np.arange(channels)[None, :]
    grad_input = np.zeros(batch * height * width * channels, dtype=grad_output.dtype)
    np.add.at(grad_input, flat_index.ravel(), grad_output.reshape(rows * channels))
    return grad_input.reshape(input_shape)


def avg_pool_backward(
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    pool_size: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of average pooling via ``pool_size²`` strided window adds.

    Every input element covered by a window receives ``grad / window`` from
    that window; overlapping windows accumulate, matching ``col2im``.  Unlike
    max pooling there are no data-dependent indices here, so a gather/scatter
    (``np.add.at``) would only add overhead — each within-window offset
    ``(i, j)`` contributes the *same* share tensor to a strided slice of the
    input, which is a plain vectorized add (and skips the old path's
    materialization of the full patch matrix).
    """
    out_h, out_w = grad_output.shape[1], grad_output.shape[2]
    share = grad_output / float(pool_size * pool_size)
    grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
    for i in range(pool_size):
        row_end = i + stride * out_h
        for j in range(pool_size):
            col_end = j + stride * out_w
            grad_input[:, i:row_end:stride, j:col_end:stride, :] += share
    return grad_input


def flatten_batch(x: np.ndarray) -> np.ndarray:
    """Flatten everything but the batch dimension."""
    return x.reshape(x.shape[0], -1)


def global_average_pool(x: np.ndarray) -> np.ndarray:
    """Average over the spatial dimensions of an NHWC tensor, giving (N, C)."""
    if x.ndim != 4:
        raise ShapeError(f"global_average_pool expects an NHWC tensor, got shape {x.shape}")
    return x.mean(axis=(1, 2))
