"""Loss functions.

Losses take raw model outputs and integer labels (or regression targets) and
return a scalar loss plus the gradient with respect to the model outputs, so
the training loop is a plain ``loss.gradient`` → ``model.backward`` chain.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.activations import log_softmax, softmax


class Loss:
    """Base class: ``value`` returns the scalar loss, ``gradient`` both loss and grad."""

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def batched_gradient(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-worker losses and gradients for stacked ``(K, B, ...)`` outputs.

        Used by the batched execution engine: ``outputs`` carries one leading
        worker axis, ``targets`` is ``(K, B)``-shaped, and the return value is
        ``(losses, grads)`` with ``losses`` of shape ``(K,)`` and ``grads``
        aligned with ``outputs``.  Worker ``k``'s slice must equal what
        :meth:`gradient` computes on its mini-batch alone.  The default
        iterates; subclasses override with one vectorized evaluation.
        """
        # Per-worker losses are float64 scalars regardless of the compute
        # dtype; the gradient tensor stays in the outputs' dtype.
        losses = np.empty(outputs.shape[0], dtype=np.float64)
        grads = np.empty_like(outputs)
        for worker, (worker_out, worker_targets) in enumerate(zip(outputs, targets)):
            losses[worker], grads[worker] = self.gradient(worker_out, worker_targets)
        return losses, grads


class SoftmaxCrossEntropy(Loss):
    """Cross-entropy over logits with integrated softmax.

    ``outputs`` are raw logits of shape ``(N, num_classes)`` and ``targets``
    are integer class labels of shape ``(N,)``.  The gradient is the familiar
    ``softmax(logits) - one_hot(targets)`` divided by the batch size.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must lie in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)

    def _target_distribution(
        self, targets: np.ndarray, num_classes: int, dtype=np.float64
    ) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim != 1:
            raise ShapeError(f"targets must be 1-D integer labels, got shape {targets.shape}")
        distribution = np.full(
            (targets.shape[0], num_classes),
            self.label_smoothing / num_classes,
            dtype=dtype,
        )
        distribution[np.arange(targets.shape[0]), targets.astype(int)] += 1.0 - self.label_smoothing
        return distribution

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        if outputs.ndim != 2:
            raise ShapeError(f"outputs must be (N, num_classes) logits, got shape {outputs.shape}")
        log_probs = log_softmax(outputs, axis=1)
        distribution = self._target_distribution(targets, outputs.shape[1], outputs.dtype)
        return float(-(distribution * log_probs).sum(axis=1).mean())

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        if outputs.ndim != 2:
            raise ShapeError(f"outputs must be (N, num_classes) logits, got shape {outputs.shape}")
        probs = softmax(outputs, axis=1)
        log_probs = log_softmax(outputs, axis=1)
        distribution = self._target_distribution(targets, outputs.shape[1], outputs.dtype)
        loss = float(-(distribution * log_probs).sum(axis=1).mean())
        grad = (probs - distribution) / outputs.shape[0]
        return loss, grad

    def batched_gradient(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One softmax/log-softmax sweep over all ``K`` workers' logits at once."""
        if outputs.ndim != 3:
            raise ShapeError(
                f"batched outputs must be (K, B, num_classes) logits, got shape {outputs.shape}"
            )
        targets = np.asarray(targets)
        if targets.shape != outputs.shape[:2]:
            raise ShapeError(
                f"batched targets must have shape {outputs.shape[:2]}, got {targets.shape}"
            )
        num_workers, batch, num_classes = outputs.shape
        probs = softmax(outputs, axis=-1)
        log_probs = log_softmax(outputs, axis=-1)
        # One flattened (K*B, C) target distribution via the shared helper
        # (single source of the label-smoothing semantics), regrouped per worker.
        distribution = self._target_distribution(
            targets.reshape(-1), num_classes, outputs.dtype
        ).reshape(outputs.shape)
        losses = -(distribution * log_probs).sum(axis=-1).mean(axis=-1)
        grads = (probs - distribution) / batch
        return losses, grads


class MeanSquaredError(Loss):
    """Mean squared error for regression outputs of any shape."""

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=outputs.dtype)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"outputs and targets must have the same shape, got {outputs.shape} and {targets.shape}"
            )
        return float(np.mean((outputs - targets) ** 2))

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        targets = np.asarray(targets, dtype=outputs.dtype)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"outputs and targets must have the same shape, got {outputs.shape} and {targets.shape}"
            )
        diff = outputs - targets
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad

    def batched_gradient(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-worker MSE over a stacked ``(K, B, ...)`` prediction tensor."""
        targets = np.asarray(targets, dtype=outputs.dtype)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"outputs and targets must have the same shape, got {outputs.shape} and {targets.shape}"
            )
        diff = outputs - targets
        per_worker = diff[0].size
        losses = (diff * diff).reshape(diff.shape[0], -1).mean(axis=1)
        grads = 2.0 * diff / per_worker
        return losses, grads
