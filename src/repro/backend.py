"""Array-backend and dtype seam.

Every hot-path allocation in the library — the ``(K, d)`` parameter plane,
the stacked optimizer state, the error-feedback residual, the layer scratch
buffers — goes through one *active dtype* chosen at cluster construction.
This module is the single place that owns that choice:

* :data:`DEFAULT_DTYPE` (``float64``) is the bit-exact reference mode every
  golden trajectory is pinned against.
* ``float32`` is the supported fast mode: half the element size means half
  the memory traffic on every bandwidth-bound pass (engine steps, drifts,
  collectives, compression) and half the bytes on the fabric ledgers — the
  regime real FL deployments train and report in.
* :data:`xp` is the array namespace the library computes with.  It is plain
  NumPy today; routing every ``np.`` call in new code through ``xp`` keeps
  the door open for a torch/cupy namespace to drop in behind the same seam.

What deliberately stays float64 regardless of the active dtype:

* **Ledger accumulators** — byte counts are integers and virtual-time
  accumulators are Python floats; they count, they do not stream.
* **AMS sketch counters** (:mod:`repro.sketch.ams`) — the sketch's variance
  guarantees are proven for exact counters; its ``(depth, width)`` state is
  tiny compared to ``(K, d)``, so keeping it float64 costs nothing while the
  drift rows it consumes may arrive in either dtype.
* **Reference-path analysis** (theta calibration, KDE summaries, result
  aggregation) — offline, never on the per-step path.

Tolerances: float64 mode is compared exactly (``rtol=0, atol=0``); float32
mode is compared with :func:`tolerance`-scaled bounds derived from the
dtype's machine epsilon, so parity suites can parametrize over dtypes
without hand-tuning per-test bounds.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError

#: The array namespace the library computes with (NumPy today).  New code
#: should reach arrays through ``xp`` so an alternative backend can be
#: swapped in at this one seam.
xp = np

#: The bit-exact reference dtype; every golden trajectory is recorded in it.
DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)

#: Dtypes the (K, d) plane stack accepts.
SUPPORTED_DTYPES: Tuple[np.dtype, ...] = (np.dtype(np.float32), np.dtype(np.float64))

DTypeLike = Union[str, type, np.dtype, None]


def resolve_dtype(dtype: DTypeLike = None) -> np.dtype:
    """Normalize a user-facing dtype spec to a supported ``np.dtype``.

    Accepts ``None`` (the float64 default), the strings ``"float32"`` /
    ``"float64"``, NumPy scalar types, and ``np.dtype`` instances.  Anything
    outside :data:`SUPPORTED_DTYPES` raises :class:`ConfigurationError` —
    the plane stack is written for real floating point only.
    """
    if dtype is None:
        return DEFAULT_DTYPE
    try:
        resolved = np.dtype(dtype)
    except TypeError as error:
        raise ConfigurationError(f"unrecognized dtype {dtype!r}") from error
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(str(d) for d in SUPPORTED_DTYPES)
        raise ConfigurationError(
            f"dtype {resolved} is not supported; expected one of: {supported}"
        )
    return resolved


def itemsize(dtype: DTypeLike = None) -> int:
    """Bytes per element of ``dtype`` — what the fabric charges per scalar."""
    return resolve_dtype(dtype).itemsize


def tolerance(dtype: DTypeLike = None, scale: float = 1.0) -> dict:
    """Dtype-aware comparison bounds as ``{"rtol": ..., "atol": ...}``.

    float64 is the bit-exact reference: both bounds are zero, so comparisons
    against it assert value-exactness.  float32 gets bounds scaled from its
    machine epsilon (``eps ≈ 1.2e-7``): ``rtol = 1e3·eps·scale`` absorbs the
    per-step rounding of a cast pipeline accumulated over a training run,
    ``atol`` guards values near zero.  ``scale`` lets long trajectories widen
    the bounds proportionally.
    """
    resolved = resolve_dtype(dtype)
    if resolved == DEFAULT_DTYPE:
        return {"rtol": 0.0, "atol": 0.0}
    eps = float(np.finfo(resolved).eps)
    return {"rtol": 1e3 * eps * scale, "atol": 10.0 * eps * scale}


def parity_tolerance(dtype: DTypeLike = None, steps: int = 1) -> dict:
    """Tolerance for comparing a ``dtype`` trajectory to the float64 golden.

    Rounding error in a float32 run grows with the number of optimizer steps
    taken; ``steps`` scales the bounds sub-linearly (``sqrt``), matching the
    random-walk accumulation of independent rounding errors.
    """
    return tolerance(dtype, scale=max(1.0, float(steps)) ** 0.5)


__all__ = [
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "itemsize",
    "parity_tolerance",
    "resolve_dtype",
    "tolerance",
    "xp",
]
