"""Deterministic random-number handling.

Everything in the library that needs randomness accepts either an integer
seed, ``None``, or an existing :class:`numpy.random.Generator`.  These helpers
normalise that flexibility into concrete generators and make it easy to derive
independent per-worker streams from a single experiment seed, which is what
keeps whole training runs reproducible.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, ``None`` (fresh entropy), an existing
    generator (returned unchanged), or a :class:`numpy.random.SeedSequence`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used to give each simulated worker its own stream so that adding or
    removing workers does not perturb the data seen by the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngFactory:
    """Factory producing named, reproducible random generators.

    A single experiment seed fans out into independent streams keyed by a
    string label (``"data"``, ``"init"``, ``"worker-3"`` ...).  Requesting the
    same label twice returns generators with identical streams, so components
    can be re-created without advancing each other's randomness.
    """

    def __init__(self, seed: SeedLike = 0) -> None:
        if isinstance(seed, np.random.Generator):
            # Freeze the generator state into a root seed.
            seed = int(seed.integers(0, 2**63 - 1))
        self._root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(
            seed if seed is not None else None
        )

    def named(self, label: str) -> np.random.Generator:
        """Return a generator whose stream is a pure function of (seed, label)."""
        entropy = self._root.entropy
        digest = [int(byte) for byte in label.encode("utf-8")]
        child = np.random.SeedSequence([*_entropy_list(entropy), len(label), *digest])
        return np.random.default_rng(child)

    def worker(self, index: int) -> np.random.Generator:
        """Return the generator dedicated to worker ``index``."""
        if index < 0:
            raise ValueError(f"worker index must be non-negative, got {index}")
        return self.named(f"worker-{index}")

    def sequence(self, labels: Iterable[str]) -> List[np.random.Generator]:
        """Return one named generator per label, in order."""
        return [self.named(label) for label in labels]


def _entropy_list(entropy: Optional[object]) -> List[int]:
    """Normalise a SeedSequence entropy value into a list of ints."""
    if entropy is None:
        return [0]
    if isinstance(entropy, (list, tuple)):
        return [int(item) for item in entropy]
    return [int(entropy)]
