"""Lightweight structured run logging.

The experiment harness records one entry per evaluation point (epoch or step)
with the metrics the paper plots: training/testing accuracy, cumulative
communication bytes, and cumulative in-parallel learning steps.  The logger is
an append-only list of dictionaries, with helpers to extract metric series and
to render a compact text table, so no external logging framework is needed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence


class RunLogger:
    """Append-only structured log for a single training run."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self._entries: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> Dict[str, Any]:
        return self._entries[index]

    def log(self, **metrics: Any) -> Dict[str, Any]:
        """Append one entry and return it."""
        entry = dict(metrics)
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> List[Dict[str, Any]]:
        """All logged entries, in insertion order (a shallow copy)."""
        return list(self._entries)

    def series(self, key: str, default: Optional[float] = None) -> List[Any]:
        """Return the values logged under ``key`` across all entries."""
        return [entry.get(key, default) for entry in self._entries]

    def last(self, key: str, default: Optional[float] = None) -> Any:
        """Return the most recent value logged under ``key``."""
        for entry in reversed(self._entries):
            if key in entry:
                return entry[key]
        return default

    def keys(self) -> List[str]:
        """Return the union of metric names across entries (sorted)."""
        names = set()
        for entry in self._entries:
            names.update(entry.keys())
        return sorted(names)

    def to_table(self, columns: Optional[Sequence[str]] = None) -> str:
        """Render the log as a fixed-width text table."""
        if not self._entries:
            return f"<empty run log {self.name!r}>"
        columns = list(columns) if columns is not None else self.keys()
        rows = [columns]
        for entry in self._entries:
            rows.append([_format_cell(entry.get(column, "")) for column in columns])
        widths = [max(len(row[i]) for row in rows) for i in range(len(columns))]
        lines = []
        for row in rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
