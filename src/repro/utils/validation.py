"""Small argument-validation helpers.

These raise :class:`repro.exceptions.ConfigurationError` with a message that
names the offending argument, so that experiment misconfigurations fail fast
and readably rather than deep inside a training loop.
"""

from __future__ import annotations

from numbers import Integral, Real

from repro.exceptions import ConfigurationError


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is a finite number strictly greater than zero."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value`` is a finite number greater than or equal to zero."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Ensure ``value`` is an integer strictly greater than zero."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Ensure ``value`` is an integer greater than or equal to zero."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval ``[0, 1]``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` with probability-specific wording."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def check_choice(value: str, choices, name: str) -> str:
    """Ensure ``value`` is one of ``choices``."""
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {sorted(choices)}, got {value!r}"
        )
    return value
