"""Human-readable formatting of bytes, counts, and durations.

The experiment harness reports communication cost in bytes and computation
cost in mini-batch steps, exactly like the paper's figures; these helpers turn
the raw numbers into the units used in the paper (GB, thousands of steps).
"""

from __future__ import annotations

_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]
_COUNT_UNITS = ["", "K", "M", "B", "T"]


def format_bytes(num_bytes: float, precision: int = 2) -> str:
    """Format a byte count with a binary-free, paper-style unit (1 GB = 1e9 B)."""
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for unit in _BYTE_UNITS:
        if value < 1000.0 or unit == _BYTE_UNITS[-1]:
            return f"{value:.{precision}f} {unit}"
        value /= 1000.0
    return f"{value:.{precision}f} {_BYTE_UNITS[-1]}"


def format_count(count: float, precision: int = 2) -> str:
    """Format a large count (e.g. learning steps) with K/M/B suffixes."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    value = float(count)
    for unit in _COUNT_UNITS:
        if value < 1000.0 or unit == _COUNT_UNITS[-1]:
            text = f"{value:.{precision}f}".rstrip("0").rstrip(".")
            return f"{text}{unit}"
        value /= 1000.0
    text = f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return f"{text}{_COUNT_UNITS[-1]}"


def format_duration(seconds: float) -> str:
    """Format a duration in seconds as ``h:mm:ss.s`` or ``m:ss.s`` or ``s.s s``."""
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    if seconds < 60:
        return f"{seconds:.2f} s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m {secs:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h {minutes:02d}m {secs:04.1f}s"
