"""Shared utilities: seeded RNG handling, validation, formatting, run logs."""

from repro.utils.rng import RngFactory, as_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.formatting import format_bytes, format_count, format_duration
from repro.utils.runlog import RunLogger

__all__ = [
    "RngFactory",
    "as_rng",
    "spawn_rngs",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "format_bytes",
    "format_count",
    "format_duration",
    "RunLogger",
]
