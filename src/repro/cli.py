"""Command-line interface: run any paper experiment from the terminal.

Examples::

    python -m repro.cli list
    python -m repro.cli table2
    python -m repro.cli figure3
    python -m repro.cli figure8 --full
    python -m repro.cli compare --workload lenet --theta 8 --workers 5

``figureN`` commands run the strategies of the corresponding registry entry on
its workloads and print the per-strategy cost table; ``compare`` runs a custom
single comparison (FDA variants vs Synchronous vs the matching FedOpt
baseline) for one of the named workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import registry
from repro.experiments.reporting import format_comparison, format_results_table
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy

_WORKLOAD_BUILDERS = {
    "lenet": registry.lenet_mnist_workload,
    "vgg": registry.vgg_mnist_workload,
    "densenet-small": lambda **kw: registry.densenet_cifar_workload(variant="small", **kw),
    "densenet-large": lambda **kw: registry.densenet_cifar_workload(variant="large", **kw),
    "transfer": registry.transfer_learning_workload,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Federated Dynamic Averaging (EDBT 2025)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")
    subparsers.add_parser("table2", help="print the Table-2 summary of experiments")

    for figure_name in sorted(registry.ALL_FIGURES):
        figure_parser = subparsers.add_parser(
            figure_name, help=f"run the {figure_name} strategy comparison"
        )
        figure_parser.add_argument(
            "--full", action="store_true", help="use the full (slow) grids instead of quick mode"
        )

    compare = subparsers.add_parser("compare", help="run a custom FDA-vs-baselines comparison")
    compare.add_argument("--workload", choices=sorted(_WORKLOAD_BUILDERS), default="lenet")
    compare.add_argument("--theta", type=float, default=8.0, help="FDA variance threshold")
    compare.add_argument("--workers", type=int, default=5, help="number of workers K")
    compare.add_argument("--target", type=float, default=0.9, help="test-accuracy target")
    compare.add_argument("--max-steps", type=int, default=400, help="step budget per run")
    return parser


def _command_list() -> int:
    print("available experiments:")
    print("  table2        summary of experiments")
    for name in sorted(registry.ALL_FIGURES):
        spec = registry.ALL_FIGURES[name](quick=True)
        print(f"  {name:<12}  {spec.title}")
    print("  compare       custom FDA vs baselines comparison (see --help)")
    return 0


def _command_table2() -> int:
    rows = registry.table2()
    header = f"{'model':<28}{'d':>8}  {'dataset':<22}{'b':>4}{'K':>4}  {'optimizer':<8}  algorithms"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['model']:<28}{row['d']:>8}  {row['dataset']:<22}"
            f"{row['batch_size']:>4}{row['num_workers']:>4}  {row['optimizer']:<8}  "
            f"{', '.join(row['algorithms'])}"
        )
    return 0


def _command_figure(name: str, full: bool) -> int:
    spec = registry.ALL_FIGURES[name](quick=not full)
    print(f"{spec.experiment_id}: {spec.title}")
    for label, workload in spec.workloads.items():
        print(f"\n--- setting: {label} ---")
        results = []
        for strategy_name, factory in spec.strategy_factories.items():
            cluster, test_dataset = build_cluster(workload)
            result = spec.run.execute(
                factory(), cluster, test_dataset,
                train_dataset=workload.train_dataset, workload_name=workload.name,
            )
            results.append(result)
        print(format_results_table(results, reached_only=False))
        try:
            print(format_comparison(results, "LinearFDA", "Synchronous"))
        except Exception:  # noqa: BLE001 - reporting only
            pass
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    workload = _WORKLOAD_BUILDERS[args.workload](num_workers=args.workers)
    run = TrainingRun(
        accuracy_target=args.target, max_steps=args.max_steps, eval_every_steps=20
    )
    fedopt = "fedavgm" if "densenet" in args.workload else "fedadam"
    strategies = registry.default_strategies(args.theta, fedopt=fedopt)
    results = []
    for name, factory in strategies.items():
        cluster, test_dataset = build_cluster(workload)
        results.append(run.execute(factory(), cluster, test_dataset, workload_name=workload.name))
    print(format_results_table(results, reached_only=False))
    print(format_comparison(results, "LinearFDA", "Synchronous"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "table2":
        return _command_table2()
    if args.command == "compare":
        return _command_compare(args)
    if args.command in registry.ALL_FIGURES:
        return _command_figure(args.command, full=getattr(args, "full", False))
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
