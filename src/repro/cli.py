"""Command-line interface: run any paper experiment from the terminal.

Examples::

    python -m repro.cli list
    python -m repro.cli table2
    python -m repro.cli figure3
    python -m repro.cli figure8 --full
    python -m repro.cli compare --workload lenet --theta 8 --workers 5
    python -m repro.cli compare --workload lenet --topology ring --network fl
    python -m repro.cli compare --workload lenet --compressor topk --compression-ratio 0.1 --error-feedback
    python -m repro.cli fabric --workload lenet --topologies star ring --networks fl hpc
    python -m repro.cli compression --workload lenet --theta 8
    python -m repro.cli compare --workload lenet --crash-rate 0.1 --loss-rate 0.05
    python -m repro.cli faults --workload lenet --crash-rates 0 0.1 --loss-rates 0 0.05
    python -m repro.cli sweep --workload lenet --thetas 1 4 16 --seeds 0 1 --cache-dir runs/lenet --jobs 4

``figureN`` commands run the strategies of the corresponding registry entry on
its workloads and print the per-strategy cost table; ``compare`` runs a custom
single comparison (FDA variants vs Synchronous vs the matching FedOpt
baseline) for one of the named workloads, optionally on a non-default fabric,
execution engine, or payload compression; ``fabric`` sweeps a topology ×
network grid and reports per-category bytes plus virtual wall-clock per round
for each cell; ``compression`` sweeps payload-compression settings and
reports how many model-sync bytes each kernel removes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.compression import NAMED_COMPRESSORS, CompressionConfig
from repro.distributed.engine import EXECUTION_MODES
from repro.distributed.network import NAMED_NETWORKS
from repro.distributed.topology import NAMED_TOPOLOGIES
from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.reporting import format_comparison, format_results_table
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.experiments.executor import SweepExecutor
from repro.experiments.sweep import (
    run_compression_spec,
    run_fabric_spec,
    sweep_fabric,
    sweep_theta,
)
from repro.serving.aggregation import STALENESS_RULES
from repro.serving.config import (
    ARRIVAL_KINDS,
    PROTOCOLS,
    QUEUE_POLICIES,
    ServingConfig,
)
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy
from repro.utils.formatting import format_bytes, format_duration

_TOPOLOGY_CHOICES = sorted(NAMED_TOPOLOGIES)
_NETWORK_CHOICES = sorted(NAMED_NETWORKS) + ["none"]
_COMPRESSOR_CHOICES = sorted(NAMED_COMPRESSORS) + ["none"]

_WORKLOAD_BUILDERS = {
    "lenet": registry.lenet_mnist_workload,
    "vgg": registry.vgg_mnist_workload,
    "densenet-small": lambda **kw: registry.densenet_cifar_workload(variant="small", **kw),
    "densenet-large": lambda **kw: registry.densenet_cifar_workload(variant="large", **kw),
    "transfer": registry.transfer_learning_workload,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Federated Dynamic Averaging (EDBT 2025)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")
    subparsers.add_parser("table2", help="print the Table-2 summary of experiments")

    for figure_name in sorted(registry.ALL_FIGURES):
        figure_parser = subparsers.add_parser(
            figure_name, help=f"run the {figure_name} strategy comparison"
        )
        figure_parser.add_argument(
            "--full", action="store_true", help="use the full (slow) grids instead of quick mode"
        )

    compare = subparsers.add_parser("compare", help="run a custom FDA-vs-baselines comparison")
    compare.add_argument("--workload", choices=sorted(_WORKLOAD_BUILDERS), default="lenet")
    compare.add_argument("--theta", type=float, default=8.0, help="FDA variance threshold")
    compare.add_argument("--workers", type=int, default=5, help="number of workers K")
    compare.add_argument("--target", type=float, default=0.9, help="test-accuracy target")
    compare.add_argument("--max-steps", type=int, default=400, help="step budget per run")
    compare.add_argument(
        "--topology", choices=_TOPOLOGY_CHOICES, default="star",
        help="communication-fabric topology",
    )
    compare.add_argument(
        "--network", choices=_NETWORK_CHOICES, default="none",
        help="network model converting bytes into virtual wall-clock",
    )
    compare.add_argument(
        "--execution", choices=sorted(EXECUTION_MODES), default="sequential",
        help="execution engine: per-worker 'sequential' steps or one "
             "vectorized 'batched' pass for all K workers (A/B the engines)",
    )
    compare.add_argument(
        "--dtype", choices=("float32", "float64"), default="float64",
        help="compute dtype of the parameter plane: 'float64' (bit-exact "
             "reference) or 'float32' (fast mode; byte ledgers price 4-byte "
             "elements instead of 8)",
    )
    compare.add_argument(
        "--dropout-rate", type=float, default=0.0,
        help="per-round worker dropout probability (partial participation); "
             "runs on either engine — the batched engine executes only the "
             "active rows",
    )
    compare.add_argument(
        "--compressor", choices=_COMPRESSOR_CHOICES, default="none",
        help="collective-level payload compression applied to every "
             "strategy's sync payloads (FDA's triggered syncs included)",
    )
    compare.add_argument(
        "--compression-ratio", type=float, default=0.1,
        help="kept fraction for the sparsifying compressors "
             "(topk / randomk / layerwise-topk)",
    )
    compare.add_argument(
        "--compression-bits", type=int, default=8,
        help="bit width for the quantization compressor",
    )
    compare.add_argument(
        "--error-feedback", action="store_true",
        help="keep per-worker error-feedback memory (a (K, d) residual "
             "matrix on the cluster) so dropped mass re-enters later payloads",
    )
    compare.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="per-worker per-round crash probability (deterministic fault "
             "injection; crashed workers freeze, then rejoin after a "
             "geometric outage and pay a real model download)",
    )
    compare.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="per-link per-collective message-loss probability; lost "
             "transfers retransmit with capped exponential backoff, charged "
             "to the byte/virtual-second ledgers",
    )
    compare.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plan's own RNG streams (independent of the "
             "workload seed)",
    )
    compare.add_argument(
        "--population", type=int, default=0,
        help="register this many logical clients (population plane) and "
             "train per-round sampled cohorts instead of the materialized "
             "cluster; 0 disables",
    )
    compare.add_argument(
        "--cohort-size", type=int, default=16,
        help="worker slots per round under --population (the physical "
             "cohort window; replaces --workers for population runs)",
    )
    compare.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="write a cluster checkpoint every N in-parallel steps "
             "(requires --checkpoint-path; 0 disables)",
    )
    compare.add_argument(
        "--checkpoint-path", default=None,
        help="file the periodic checkpoint is atomically written to",
    )

    fabric = subparsers.add_parser(
        "fabric", help="sweep a topology x network grid and report bytes + wall-clock"
    )
    fabric.add_argument(
        "--spec", action="store_true",
        help="run the registry's fabric_sweep experiment spec instead of the flags below",
    )
    fabric.add_argument(
        "--full", action="store_true",
        help="with --spec: use the full (slow) topology x network grid",
    )
    fabric.add_argument("--workload", choices=sorted(_WORKLOAD_BUILDERS), default="lenet")
    fabric.add_argument("--theta", type=float, default=8.0, help="FDA variance threshold")
    fabric.add_argument("--workers", type=int, default=4, help="number of workers K")
    fabric.add_argument("--target", type=float, default=0.9, help="test-accuracy target")
    fabric.add_argument("--max-steps", type=int, default=120, help="step budget per run")
    fabric.add_argument(
        "--topologies", nargs="+", choices=_TOPOLOGY_CHOICES,
        default=list(_TOPOLOGY_CHOICES), help="topologies to sweep",
    )
    fabric.add_argument(
        "--networks", nargs="+", choices=_NETWORK_CHOICES,
        default=["fl", "hpc", "balanced"], help="network models to sweep",
    )

    compression = subparsers.add_parser(
        "compression",
        help="sweep payload-compression settings and report the byte savings",
    )
    compression.add_argument(
        "--full", action="store_true",
        help="use the full compression grid (adds top-k without error "
             "feedback, random-k, sign+norm, and layer-wise top-k)",
    )

    faults = subparsers.add_parser(
        "faults",
        help="sweep a crash-rate x loss-rate grid and report FDA-vs-BSP degradation",
    )
    faults.add_argument("--workload", choices=sorted(_WORKLOAD_BUILDERS), default="lenet")
    faults.add_argument("--theta", type=float, default=8.0, help="FDA variance threshold")
    faults.add_argument("--workers", type=int, default=4, help="number of workers K")
    faults.add_argument("--target", type=float, default=0.9, help="test-accuracy target")
    faults.add_argument("--max-steps", type=int, default=120, help="step budget per run")
    faults.add_argument(
        "--crash-rates", type=float, nargs="+", default=[0.0, 0.05, 0.1],
        help="per-worker per-round crash probabilities to sweep",
    )
    faults.add_argument(
        "--loss-rates", type=float, nargs="+", default=[0.0, 0.05],
        help="per-link per-collective loss probabilities to sweep",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plans' RNG streams",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a cached Θ x seed grid through the streaming sweep executor",
    )
    sweep.add_argument("--workload", choices=sorted(_WORKLOAD_BUILDERS), default="lenet")
    sweep.add_argument(
        "--thetas", type=float, nargs="+", default=[1.0, 4.0, 16.0],
        help="FDA variance thresholds to sweep",
    )
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="workload seeds; the grid is thetas x seeds",
    )
    sweep.add_argument("--workers", type=int, default=4, help="number of workers K")
    sweep.add_argument("--target", type=float, default=0.9, help="test-accuracy target")
    sweep.add_argument("--max-steps", type=int, default=120, help="step budget per run")
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for uncached cells (1 = serial; results are "
             "bit-identical either way)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="directory of the content-addressed run store (runs.jsonl + "
             "manifest); omit to run without persistence",
    )
    sweep.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="replay cells already present in the store (--no-resume "
             "executes everything but still records results)",
    )
    sweep.add_argument(
        "--force", action="store_true",
        help="re-execute every cell even if cached, shadowing old records",
    )

    serve = subparsers.add_parser(
        "serve",
        help="drive a workload as a served system: open-loop arrivals, "
             "bounded ingress queue, latency percentiles",
    )
    serve.add_argument("--workload", choices=sorted(_WORKLOAD_BUILDERS), default="lenet")
    serve.add_argument("--theta", type=float, default=8.0, help="FDA variance threshold")
    serve.add_argument("--workers", type=int, default=4, help="number of workers K")
    serve.add_argument(
        "--updates", type=int, default=500,
        help="how many client updates to aggregate before reporting",
    )
    serve.add_argument(
        "--arrival", choices=sorted(ARRIVAL_KINDS), default="poisson",
        help="arrival process ('closed' = degenerate pre-serving loop)",
    )
    serve.add_argument(
        "--arrival-rate", type=float, default=1.0,
        help="per-worker arrivals per virtual second",
    )
    serve.add_argument(
        "--trace", default=None,
        help="JSONL arrival trace for --arrival trace",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=None,
        help="ingress-queue capacity (omit for unbounded)",
    )
    serve.add_argument(
        "--queue-policy", choices=sorted(QUEUE_POLICIES), default="drop",
        help="overflow policy of the ingress queue",
    )
    serve.add_argument(
        "--staleness-rule", choices=sorted(STALENESS_RULES), default="uniform",
        help="staleness-aware aggregation rule",
    )
    serve.add_argument(
        "--max-staleness", type=int, default=4,
        help="rejection bound of the max-staleness rule",
    )
    serve.add_argument(
        "--poly-alpha", type=float, default=0.5,
        help="decay exponent of the polynomial rule",
    )
    serve.add_argument(
        "--service-seconds", type=float, default=0.0,
        help="coordinator aggregation time per update (virtual seconds)",
    )
    serve.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="fda",
        help="coordinator protocol: triggered-sync FDA or lockstep BSP",
    )
    serve.add_argument(
        "--variant", choices=["sketch", "linear", "exact"], default="linear",
        help="FDA variance-monitor variant",
    )
    serve.add_argument(
        "--topology", choices=_TOPOLOGY_CHOICES, default="star",
        help="communication-fabric topology",
    )
    serve.add_argument(
        "--network", choices=_NETWORK_CHOICES, default="none",
        help="network model converting bytes into virtual wall-clock",
    )
    serve.add_argument("--seed", type=int, default=0, help="workload + arrival seed")
    return parser


def _command_list() -> int:
    print("available experiments:")
    print("  table2        summary of experiments")
    for name in sorted(registry.ALL_FIGURES):
        spec = registry.ALL_FIGURES[name](quick=True)
        print(f"  {name:<12}  {spec.title}")
    print("  compare       custom FDA vs baselines comparison (see --help)")
    print("  fabric        topology x network sweep: bytes + virtual wall-clock")
    print("  compression   payload-compression sweep: bytes removed per kernel")
    print("  faults        crash x loss degradation grid: FDA vs BSP under churn")
    print("  sweep         cached theta x seed grid (resumable, parallel; see --help)")
    print("  serve         open-loop served coordinator: arrivals, queueing, latency percentiles")
    return 0


def _command_table2() -> int:
    rows = registry.table2()
    header = f"{'model':<28}{'d':>8}  {'dataset':<22}{'b':>4}{'K':>4}  {'optimizer':<8}  algorithms"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['model']:<28}{row['d']:>8}  {row['dataset']:<22}"
            f"{row['batch_size']:>4}{row['num_workers']:>4}  {row['optimizer']:<8}  "
            f"{', '.join(row['algorithms'])}"
        )
    return 0


def _command_figure(name: str, full: bool) -> int:
    spec = registry.ALL_FIGURES[name](quick=not full)
    print(f"{spec.experiment_id}: {spec.title}")
    for label, workload in spec.workloads.items():
        print(f"\n--- setting: {label} ---")
        results = []
        for strategy_name, factory in spec.strategy_factories.items():
            cluster, test_dataset = build_cluster(workload)
            result = spec.run.execute(
                factory(), cluster, test_dataset,
                train_dataset=workload.train_dataset, workload_name=workload.name,
            )
            results.append(result)
        print(format_results_table(results, reached_only=False))
        try:
            print(format_comparison(results, "LinearFDA", "Synchronous"))
        except Exception:  # noqa: BLE001 - reporting only
            pass
    return 0


def _compression_from_args(args: argparse.Namespace):
    """Build the CompressionConfig the compare flags describe (or ``None``)."""
    if args.compressor == "none":
        return None
    return CompressionConfig(
        compressor=args.compressor,
        ratio=args.compression_ratio,
        bits=args.compression_bits,
        error_feedback=args.error_feedback,
    )


def _command_compare(args: argparse.Namespace) -> int:
    workload = _WORKLOAD_BUILDERS[args.workload](num_workers=args.workers)
    workload = workload.with_fabric(topology=args.topology, network=args.network)
    workload = workload.with_execution(args.execution)
    workload = workload.with_dtype(args.dtype)
    try:
        workload = workload.with_compression(_compression_from_args(args))
    except ConfigurationError as error:  # out-of-range ratio/bits
        print(f"error: {error}")
        return 2
    if args.dropout_rate:
        try:
            workload = workload.with_timeline(dropout_rate=args.dropout_rate)
        except ConfigurationError as error:  # out-of-range rate
            print(f"error: {error}")
            return 2
    if args.crash_rate or args.loss_rate:
        from repro.faults import FaultPlan

        try:
            workload = workload.with_faults(
                FaultPlan(
                    crash_rate=args.crash_rate,
                    loss_rate=args.loss_rate,
                    seed=args.fault_seed,
                )
            )
        except ConfigurationError as error:  # out-of-range rates
            print(f"error: {error}")
            return 2
    if args.population:
        from repro.population import PopulationConfig

        try:
            workload = workload.with_population(
                PopulationConfig(
                    num_clients=args.population, cohort_size=args.cohort_size
                )
            )
        except ConfigurationError as error:  # e.g. cohort larger than N
            print(f"error: {error}")
            return 2
    try:
        run = TrainingRun(
            accuracy_target=args.target, max_steps=args.max_steps, eval_every_steps=20,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
        )
    except ConfigurationError as error:  # --checkpoint-every without a path
        print(f"error: {error}")
        return 2
    fedopt = "fedavgm" if "densenet" in args.workload else "fedadam"
    strategies = registry.default_strategies(args.theta, fedopt=fedopt)
    results = []
    for name, factory in strategies.items():
        strategy = factory()
        if args.topology not in strategy.supported_topologies:
            print(f"(skipping {strategy.name}: no support for the {args.topology} topology)")
            continue
        try:
            cluster, test_dataset = build_cluster(workload)
        except ConfigurationError as error:
            # e.g. --execution batched on a model with DenseBlock layers, or
            # an out-of-range --dropout-rate: report the incompatibility
            # cleanly instead of a traceback (the message names the cause).
            print(f"error: {error}")
            return 2
        results.append(run.execute(strategy, cluster, test_dataset, workload_name=workload.name))
    compression = workload.compression.describe() if workload.compression else "none"
    faults = workload.faults.describe() if workload.faults else "none"
    print(
        f"fabric: topology={args.topology} network={args.network} "
        f"execution={args.execution} compression={compression} dtype={args.dtype} "
        f"faults={faults}"
    )
    print(format_results_table(results, reached_only=False))
    print(format_comparison(results, "LinearFDA", "Synchronous"))
    return 0


def _print_fabric_points(label: str, points) -> None:
    header = (
        f"{'topology':<14}{'network':<10}{'model-sync':>12}{'fda-state':>12}"
        f"{'total':>12}{'wall-clock':>14}{'s/round':>12}"
    )
    print(f"\n=== {label} ===")
    print(header)
    print("-" * len(header))
    for point in points:
        result = point.result
        print(
            f"{point.topology:<14}{point.network:<10}"
            f"{format_bytes(result.model_bytes):>12}"
            f"{format_bytes(result.state_bytes):>12}"
            f"{format_bytes(result.communication_bytes):>12}"
            f"{format_duration(result.virtual_seconds):>14}"
            f"{point.seconds_per_round:>11.3f}s"
        )


def _command_fabric(args: argparse.Namespace) -> int:
    if args.spec:
        spec = registry.fabric_sweep(quick=not args.full)
        print(f"{spec.experiment_id}: {spec.title}")
        for strategy_name, points in run_fabric_spec(spec).items():
            _print_fabric_points(strategy_name, points)
        return 0
    workload = _WORKLOAD_BUILDERS[args.workload](num_workers=args.workers)
    run = TrainingRun(
        accuracy_target=args.target, max_steps=args.max_steps, eval_every_steps=20
    )
    for label, factory in (
        ("LinearFDA", lambda: FDAStrategy(threshold=args.theta, variant="linear")),
        ("Synchronous", lambda: SynchronousStrategy()),
    ):
        points = sweep_fabric(
            workload, run, factory, topologies=args.topologies, networks=args.networks
        )
        _print_fabric_points(f"{label} (theta={args.theta}, K={args.workers})", points)
    return 0


def _print_compression_points(label: str, points) -> None:
    header = (
        f"{'compression':<28}{'model-sync':>12}{'total':>12}"
        f"{'steps':>8}{'acc':>8}{'reached':>9}"
    )
    print(f"\n=== {label} ===")
    print(header)
    print("-" * len(header))
    for point in points:
        result = point.result
        print(
            f"{point.compression:<28}"
            f"{format_bytes(result.model_bytes):>12}"
            f"{format_bytes(result.communication_bytes):>12}"
            f"{result.parallel_steps:>8}"
            f"{result.final_accuracy:>8.3f}"
            f"{str(result.reached_target):>9}"
        )


def _command_sweep(args: argparse.Namespace) -> int:
    executor = SweepExecutor(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        resume=args.resume,
        force=args.force,
    )
    run = TrainingRun(
        accuracy_target=args.target, max_steps=args.max_steps, eval_every_steps=20
    )
    header = (
        f"{'theta':>8}{'seed':>6}{'bytes':>12}{'steps':>8}{'syncs':>8}"
        f"{'acc':>8}{'reached':>9}"
    )
    print(header)
    print("-" * len(header))
    for seed in args.seeds:
        workload = _WORKLOAD_BUILDERS[args.workload](num_workers=args.workers, seed=seed)
        points = sweep_theta(workload, args.thetas, run, seed=seed, executor=executor)
        for point in points:
            result = point.result
            print(
                f"{point.value:>8.2f}{seed:>6}"
                f"{format_bytes(result.communication_bytes):>12}"
                f"{result.parallel_steps:>8}{result.synchronizations:>8}"
                f"{result.final_accuracy:>8.3f}{str(result.reached_target):>9}"
            )
    print(f"\ncache: {executor.stats.describe()}")
    if executor.store is not None:
        print(f"store: {executor.store.runs_path} ({len(executor.store)} records)")
    return 0


def _command_faults(args: argparse.Namespace) -> int:
    """Crash-rate x loss-rate degradation grid: FDA vs BSP, plus retry costs."""
    from repro.faults import FaultPlan

    workload = _WORKLOAD_BUILDERS[args.workload](num_workers=args.workers)
    run = TrainingRun(
        accuracy_target=args.target, max_steps=args.max_steps, eval_every_steps=20
    )
    strategies = (
        ("LinearFDA", lambda: FDAStrategy(threshold=args.theta, variant="linear")),
        ("Synchronous", lambda: SynchronousStrategy()),
    )
    header = (
        f"{'crash':>7}{'loss':>7}  {'strategy':<14}{'bytes':>12}{'steps':>8}"
        f"{'acc':>8}{'reached':>9}{'retx':>10}{'crashes':>9}"
    )
    print(f"fault-degradation grid (theta={args.theta}, K={args.workers})")
    print(header)
    print("-" * len(header))
    for crash_rate in args.crash_rates:
        for loss_rate in args.loss_rates:
            try:
                plan = FaultPlan(
                    crash_rate=crash_rate, loss_rate=loss_rate, seed=args.fault_seed
                )
            except ConfigurationError as error:  # out-of-range rates
                print(f"error: {error}")
                return 2
            faulted = workload.with_faults(None if plan.is_null else plan)
            for name, factory in strategies:
                cluster, test_dataset = build_cluster(faulted)
                result = run.execute(
                    factory(), cluster, test_dataset, workload_name=faulted.name
                )
                log = result.fault_log or {}
                print(
                    f"{crash_rate:>7.2f}{loss_rate:>7.2f}  {name:<14}"
                    f"{format_bytes(result.communication_bytes):>12}"
                    f"{result.parallel_steps:>8}"
                    f"{result.final_accuracy:>8.3f}"
                    f"{str(result.reached_target):>9}"
                    f"{format_bytes(log.get('retransmitted_bytes', 0)):>10}"
                    f"{len(log.get('crashes', [])):>9}"
                )
    return 0


def _command_compression(args: argparse.Namespace) -> int:
    spec = registry.compression_sweep(quick=not args.full)
    print(f"{spec.experiment_id}: {spec.title}")
    for strategy_name, points in run_compression_spec(spec).items():
        _print_compression_points(strategy_name, points)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serving.harness import serve_workload

    serving = ServingConfig(
        arrival=args.arrival,
        arrival_rate=args.arrival_rate,
        trace_path=args.trace,
        queue_capacity=args.queue_capacity,
        queue_policy=args.queue_policy,
        staleness_rule=args.staleness_rule,
        max_staleness=args.max_staleness,
        poly_alpha=args.poly_alpha,
        service_seconds=args.service_seconds,
        protocol=args.protocol,
        arrival_seed=args.seed,
    )
    workload = _WORKLOAD_BUILDERS[args.workload](
        num_workers=args.workers, seed=args.seed
    )
    workload = workload.with_fabric(
        topology=args.topology,
        network=None if args.network == "none" else args.network,
    ).with_serving(serving)
    report = serve_workload(
        workload, args.theta, args.updates, variant=args.variant
    )
    latency = report.latency
    print(f"served run: {serving.describe()} on {args.workload} (K={args.workers})")
    print(f"  updates served   : {report.updates_served} / {report.updates_offered} offered")
    print(
        f"  lost             : {report.updates_dropped} dropped, "
        f"{report.updates_shed} shed, {report.stale_rejected} stale-rejected"
    )
    print(f"  synchronizations : {report.sync_count}")
    print(f"  virtual time     : {format_duration(report.virtual_seconds)}")
    print(f"  throughput       : {report.throughput:.3f} updates/s (virtual)")
    print(f"  max queue depth  : {report.max_queue_depth}")
    print(f"  bytes            : {format_bytes(report.total_bytes)}")
    if latency.get("count"):
        print(
            f"  latency p50/p95/p99 : "
            f"{latency['p50']:.4f} / {latency['p95']:.4f} / {latency['p99']:.4f} s"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "table2":
        return _command_table2()
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "fabric":
        return _command_fabric(args)
    if args.command == "compression":
        return _command_compression(args)
    if args.command == "faults":
        return _command_faults(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command in registry.ALL_FIGURES:
        return _command_figure(args.command, full=getattr(args, "full", False))
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
