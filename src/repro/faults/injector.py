"""Deterministic fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

The injector is the single mutable object behind every injected fault.  It
owns one named RNG stream per fault *category* ("faults/churn",
"faults/links", "faults/stragglers", "faults/corruption"), created lazily
only when that category's rate is non-zero, so enabling link loss never
shifts the churn stream and vice versa.  Crucially, none of these streams
touch the training RNGs (data sampling, Dropout, initialization): a faulted
run draws exactly the same training randomness as a fault-free one, which is
what makes degradation attributable to the faults alone.

Determinism contract: two runs with the same :class:`FaultPlan` (same seed)
and the same round/collective sequence produce bit-identical fault draws and
therefore identical :class:`FaultLog` contents — the `chaos-smoke` CI job
asserts exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan
from repro.utils.rng import RngFactory


@dataclass
class FaultLog:
    """Append-only record of every injected event and its charged cost.

    Persisted on :class:`~repro.experiments.run.RunResult` (via
    :meth:`to_dict`) so faulted runs are auditable after the fact: the bench
    conservation check recomputes ``retransmitted_bytes`` from the per-link
    entries and compares against the fabric ledger delta.
    """

    crashes: List[Dict[str, object]] = field(default_factory=list)
    rejoins: List[Dict[str, object]] = field(default_factory=list)
    retransmissions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    straggler_spikes: List[Dict[str, object]] = field(default_factory=list)
    corrupted_payloads: int = 0

    def record_crash(self, round_index: int, worker_id: int, time: float) -> None:
        self.crashes.append(
            {"round": round_index, "worker": worker_id, "time": time}
        )

    def record_rejoin(
        self,
        round_index: int,
        worker_id: int,
        time: float,
        recovery_latency: float,
    ) -> None:
        self.rejoins.append(
            {
                "round": round_index,
                "worker": worker_id,
                "time": time,
                "recovery_latency": recovery_latency,
                "recovery_bytes": 0,
                "recovery_seconds": 0.0,
            }
        )

    def note_recovery_cost(self, worker_id: int, num_bytes: int, seconds: float) -> None:
        """Attach the model-download cost to the worker's latest rejoin event."""
        for event in reversed(self.rejoins):
            if event["worker"] == worker_id:
                event["recovery_bytes"] = int(event["recovery_bytes"]) + int(num_bytes)
                event["recovery_seconds"] = float(event["recovery_seconds"]) + float(seconds)
                return

    def record_retransmission(
        self, link: str, retries: int, num_bytes: int, backoff_seconds: float
    ) -> None:
        entry = self.retransmissions.setdefault(
            link, {"retries": 0, "bytes": 0, "backoff_seconds": 0.0}
        )
        entry["retries"] = int(entry["retries"]) + int(retries)
        entry["bytes"] = int(entry["bytes"]) + int(num_bytes)
        entry["backoff_seconds"] = float(entry["backoff_seconds"]) + float(backoff_seconds)

    def record_straggler_spike(
        self, round_index: int, worker_id: int, extra_seconds: float
    ) -> None:
        self.straggler_spikes.append(
            {"round": round_index, "worker": worker_id, "extra_seconds": extra_seconds}
        )

    @property
    def total_retries(self) -> int:
        return sum(int(entry["retries"]) for entry in self.retransmissions.values())

    @property
    def retransmitted_bytes(self) -> int:
        return sum(int(entry["bytes"]) for entry in self.retransmissions.values())

    @property
    def total_backoff_seconds(self) -> float:
        # Summed in sorted link order: a restored log's dict is rebuilt sorted
        # (see ``to_dict``), so float accumulation order must not depend on
        # first-seen insertion order.
        return sum(
            float(self.retransmissions[link]["backoff_seconds"])
            for link in sorted(self.retransmissions)
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON snapshot (stored on ``RunResult.fault_log``)."""
        return {
            "crashes": [dict(event) for event in self.crashes],
            "rejoins": [dict(event) for event in self.rejoins],
            "retransmissions": {
                link: dict(entry) for link, entry in sorted(self.retransmissions.items())
            },
            "straggler_spikes": [dict(event) for event in self.straggler_spikes],
            "corrupted_payloads": self.corrupted_payloads,
            "total_retries": self.total_retries,
            "retransmitted_bytes": self.retransmitted_bytes,
            "total_backoff_seconds": self.total_backoff_seconds,
        }


class FaultInjector:
    """Draws faults from a plan's seeded streams and tracks cluster liveness.

    One injector serves exactly one run.  The cluster calls
    :meth:`advance_round` once per round (before stepping) to process churn;
    the fabric calls :meth:`sample_link_retries` once per link per collective
    while loss is active; straggler spikes and payload corruption are drawn
    by the cluster on their own streams.
    """

    def __init__(self, plan: FaultPlan, num_workers: int) -> None:
        if plan.is_null:
            raise ValueError("FaultInjector requires a non-null FaultPlan")
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.plan = plan
        self.num_workers = num_workers
        self.log = FaultLog()
        self.round_index = 0
        self.alive = np.ones(num_workers, dtype=bool)
        #: Round at which each dead worker rejoins (-1 while alive).
        self._recovery_round = np.full(num_workers, -1, dtype=np.int64)
        self._crash_time = np.zeros(num_workers, dtype=np.float64)
        factory = RngFactory(plan.seed)
        self._churn_rng = factory.named("faults/churn") if plan.crash_rate > 0.0 else None
        self._links_rng = factory.named("faults/links") if plan.loss_rate > 0.0 else None
        self._straggler_rng = (
            factory.named("faults/stragglers") if plan.straggler_spike_rate > 0.0 else None
        )
        self._corruption_rng = (
            factory.named("faults/corruption") if plan.corruption_rate > 0.0 else None
        )

    # -- category activity -------------------------------------------------

    @property
    def churn_active(self) -> bool:
        return self._churn_rng is not None

    @property
    def loss_active(self) -> bool:
        return self._links_rng is not None

    @property
    def straggler_active(self) -> bool:
        return self._straggler_rng is not None

    @property
    def corruption_active(self) -> bool:
        return self._corruption_rng is not None

    # -- churn --------------------------------------------------------------

    def advance_round(self, now: float) -> Tuple[List[int], List[int]]:
        """Process one round of churn; returns ``(crashed, rejoined)`` ids.

        Rejoins due this round are processed first (their outage length was
        drawn at crash time, so rejoining consumes no randomness), then one
        fixed-size vector draw decides new crashes.  Drawing for *all*
        workers — dead ones included — keeps the churn stream aligned
        regardless of liveness history, which is what makes churn
        deterministic under a fixed seed.
        """
        self.round_index += 1
        rejoined: List[int] = []
        crashed: List[int] = []
        if not self.churn_active:
            return crashed, rejoined
        due = np.flatnonzero(
            (~self.alive) & (self._recovery_round <= self.round_index)
        )
        for worker_id in due:
            worker_id = int(worker_id)
            self.alive[worker_id] = True
            self._recovery_round[worker_id] = -1
            rejoined.append(worker_id)
            self.log.record_rejoin(
                self.round_index,
                worker_id,
                now,
                recovery_latency=now - float(self._crash_time[worker_id]),
            )
        draws = self._churn_rng.random(self.num_workers)
        candidates = [
            int(i) for i in np.flatnonzero(self.alive & (draws < self.plan.crash_rate))
        ]
        # Never let the whole cluster die: spare the lowest-indexed candidate
        # if the crash set would leave no survivors.
        if candidates and len(candidates) == int(self.alive.sum()):
            candidates = candidates[1:]
        for worker_id in candidates:
            outage = int(self._churn_rng.geometric(1.0 / self.plan.recovery_rounds))
            self.alive[worker_id] = False
            self._recovery_round[worker_id] = self.round_index + max(outage, 1)
            self._crash_time[worker_id] = now
            crashed.append(worker_id)
            self.log.record_crash(self.round_index, worker_id, now)
        return crashed, rejoined

    # -- lossy links ---------------------------------------------------------

    def sample_link_retries(self) -> Tuple[int, float]:
        """Draw retransmission count and total backoff delay for one link.

        One geometric draw models repeated independent transmission attempts
        with per-attempt loss probability ``loss_rate``; failures beyond
        ``max_retries`` are capped (the transfer is then assumed delivered).
        Returns ``(retries, backoff_seconds)``.
        """
        trials = int(self._links_rng.geometric(1.0 - self.plan.loss_rate))
        retries = min(trials - 1, self.plan.max_retries)
        backoff = sum(
            min(self.plan.backoff_base_seconds * (2.0 ** i), self.plan.backoff_cap_seconds)
            for i in range(retries)
        )
        return retries, backoff

    # -- straggler spikes ----------------------------------------------------

    def sample_straggler_spike(self, now: float, round_seconds: float) -> float:
        """Draw this round's transient straggler spike; returns extra seconds.

        With probability ``straggler_spike_rate`` one uniformly chosen worker
        runs ``straggler_spike_factor`` times slower this round, stretching
        the round's critical path by ``(factor - 1) * round_seconds``.
        """
        if self._straggler_rng.random() >= self.plan.straggler_spike_rate:
            return 0.0
        worker_id = int(self._straggler_rng.integers(0, self.num_workers))
        extra = (self.plan.straggler_spike_factor - 1.0) * float(round_seconds)
        if extra > 0.0:
            self.log.record_straggler_spike(self.round_index, worker_id, extra)
        return extra

    # -- payload corruption --------------------------------------------------

    def corrupt_rows(self, matrix: np.ndarray, rows: np.ndarray) -> int:
        """Maybe corrupt the given rows of a broadcast payload in place.

        Each listed row is independently corrupted with probability
        ``corruption_rate`` by additive Gaussian noise of scale
        ``corruption_scale`` (drawn in float64, cast to the matrix dtype).
        Returns the number of corrupted rows.
        """
        rows = np.asarray(rows, dtype=np.intp)
        draws = self._corruption_rng.random(rows.size)
        hit = rows[draws < self.plan.corruption_rate]
        for row in hit:
            noise = self._corruption_rng.normal(
                0.0, self.plan.corruption_scale, size=matrix.shape[1]
            )
            matrix[int(row)] += noise.astype(matrix.dtype, copy=False)
        self.log.corrupted_payloads += int(hit.size)
        return int(hit.size)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of liveness, renewal deadlines, and RNG streams."""
        streams: Dict[str, Optional[dict]] = {}
        for name in ("churn", "links", "straggler", "corruption"):
            rng = getattr(self, f"_{name}_rng")
            streams[name] = rng.bit_generator.state if rng is not None else None
        return {
            "round_index": self.round_index,
            "alive": [bool(flag) for flag in self.alive],
            "recovery_round": [int(value) for value in self._recovery_round],
            "crash_time": [float(value) for value in self._crash_time],
            "streams": streams,
            "log": self.log.to_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`state_dict` (bit-exact streams)."""
        self.round_index = int(state["round_index"])
        self.alive[...] = np.asarray(state["alive"], dtype=bool)
        self._recovery_round[...] = np.asarray(state["recovery_round"], dtype=np.int64)
        self._crash_time[...] = np.asarray(state["crash_time"], dtype=np.float64)
        streams = state["streams"]
        for name in ("churn", "links", "straggler", "corruption"):
            rng = getattr(self, f"_{name}_rng")
            if rng is not None and streams.get(name) is not None:
                rng.bit_generator.state = streams[name]
        log_state = state["log"]
        self.log = FaultLog()
        self.log.crashes = [dict(event) for event in log_state["crashes"]]
        self.log.rejoins = [dict(event) for event in log_state["rejoins"]]
        self.log.retransmissions = {
            link: dict(entry) for link, entry in log_state["retransmissions"].items()
        }
        self.log.straggler_spikes = [dict(event) for event in log_state["straggler_spikes"]]
        self.log.corrupted_payloads = int(log_state["corrupted_payloads"])
