"""Run-level checkpoint/restore for the whole training plane.

A :class:`ClusterCheckpoint` captures everything a
:class:`~repro.experiments.run.TrainingRun` mutates while training — the
``(K, d)`` parameter and buffer matrices, every worker's optimizer moments and
step counts, every RNG stream (batch samplers, epoch iterators, Dropout
layers, the timeline, the fault injector), the timeline clocks and churn
ledger, the fabric's byte/second ledgers, the strategy's protocol state, and
the run loop's own counters — as one JSON document.  Restoring it into a
freshly constructed cluster/strategy of the same configuration continues the
trajectory *bit-exactly*: the round-trip test interrupts a run mid-flight and
asserts the continued history equals an uninterrupted run's, to the last bit.

Arrays are encoded as base64 of their raw bytes (dtype + shape alongside), so
float64 parameters survive the JSON round trip without any decimal rounding.
Writes are atomic — serialize to a temporary file in the target directory,
fsync, then rename — the same discipline as the sweep executor's manifest, so
a crash mid-snapshot never corrupts the previous checkpoint.
"""

from __future__ import annotations

import base64
import heapq
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.exceptions import ExperimentError

PathLike = Union[str, Path]

FORMAT = "repro.cluster_checkpoint"
VERSION = 1

#: Per-worker optimizer state arrays captured by the checkpoint (SGD velocity,
#: Adam moments).  On the batched engine these are row views into the stacked
#: optimizer's ``(K, d)`` state matrices, so in-place restore updates both.
_OPTIMIZER_STATE_ATTRS = ("_velocity", "_m", "_v")


# -- value encoding -------------------------------------------------------------


def encode_value(value):
    """Recursively convert a checkpoint value into plain JSON types.

    Arrays become ``{"__ndarray__": <base64>, "dtype": ..., "shape": ...}``
    (raw bytes, so the round trip is bit-exact); containers recurse; numpy
    scalars collapse to Python numbers.
    """
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode("ascii"),
            "dtype": value.dtype.name,
            "shape": list(value.shape),
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


def decode_value(value):
    """Inverse of :func:`encode_value` (lists stay lists; arrays come back exact)."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            raw = base64.b64decode(value["__ndarray__"])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def _rng_state(rng) -> dict:
    """A generator's bit-exact state (PCG64 state dicts are JSON-safe)."""
    return rng.bit_generator.state


def _model_rng_states(model) -> Dict[str, dict]:
    """Every RNG-stateful layer's stream, keyed by layer index (Dropout masks)."""
    states: Dict[str, dict] = {}
    for index, layer in enumerate(model.layers):
        rng = getattr(layer, "_rng", None)
        if isinstance(rng, np.random.Generator):
            states[str(index)] = _rng_state(rng)
    return states


def _restore_model_rng_states(model, states: Dict[str, dict]) -> None:
    for index, layer in enumerate(model.layers):
        rng = getattr(layer, "_rng", None)
        if isinstance(rng, np.random.Generator) and str(index) in states:
            rng.bit_generator.state = states[str(index)]


class ClusterCheckpoint:
    """One captured snapshot of a cluster + strategy + run loop."""

    def __init__(self, payload: dict) -> None:
        self.payload = payload

    # -- capture -----------------------------------------------------------------

    @classmethod
    def capture(cls, cluster, strategy=None, run_state: Optional[dict] = None) -> "ClusterCheckpoint":
        """Snapshot ``cluster`` (and optionally a strategy and run-loop state).

        Everything is copied at capture time, so the checkpoint stays valid
        while training continues.
        """
        workers = []
        for worker in cluster.workers:
            optimizer = worker.optimizer
            optimizer_state: Dict[str, object] = {
                "step_count": int(optimizer.step_count)
            }
            for attr in _OPTIMIZER_STATE_ATTRS:
                value = getattr(optimizer, attr, None)
                if isinstance(value, np.ndarray):
                    optimizer_state[attr] = np.array(value)
            workers.append(
                {
                    "steps_performed": int(worker.steps_performed),
                    "last_loss": worker.last_loss,
                    "optimizer": optimizer_state,
                    "sampler_rng": _rng_state(worker._sampler._rng),
                    "epoch_rng": _rng_state(worker._epoch_iterator._rng),
                    "model_rngs": _model_rng_states(worker.model),
                }
            )
        timeline = cluster.timeline
        fabric = cluster.fabric
        payload = {
            "format": FORMAT,
            "version": VERSION,
            "num_workers": cluster.num_workers,
            "model_dimension": cluster.model_dimension,
            "dtype": cluster.dtype_name,
            "parameters": np.array(cluster.parameter_matrix),
            "buffers": np.array(cluster.buffer_matrix),
            "synchronization_count": int(cluster.synchronization_count),
            "workers": workers,
            "timeline": {
                "now": float(timeline.now),
                "compute_seconds": float(timeline.compute_seconds),
                "comm_seconds": float(timeline.comm_seconds),
                "rounds_advanced": int(timeline.rounds_advanced),
                "churn_events": [
                    [float(t), kind, int(w)] for t, kind, w in timeline.churn_events
                ],
                "queue": [[float(t), int(w), int(s)] for t, w, s in timeline._queue],
                "event_seq": int(timeline._event_seq),
                "durations": np.array(timeline._durations),
                "rng": _rng_state(timeline._rng),
            },
            "fabric": {
                "bytes_by_category": dict(fabric.tracker.bytes_by_category),
                "operations_by_category": dict(fabric.tracker.operations_by_category),
                "bytes_by_link": {
                    f"{src}->{dst}": int(b)
                    for (src, dst), b in fabric.bytes_by_link.items()
                },
                "comm_seconds": float(fabric.comm_seconds),
                "seconds_by_category": dict(fabric.seconds_by_category),
            },
            "injector": cluster.faults.state_dict() if cluster.faults is not None else None,
            "strategy": strategy.checkpoint_state() if strategy is not None else None,
            "run_state": run_state,
        }
        return cls(payload)

    # -- restore -----------------------------------------------------------------

    def restore(self, cluster, strategy=None) -> Optional[dict]:
        """Write the snapshot into a freshly built cluster (and strategy).

        The target must match the captured configuration (worker count, model
        dimension, dtype).  All state arrays are written *in place* so the
        parameter plane's row bindings — and, on the batched engine, the
        stacked optimizer's row-bound moment matrices — stay intact.  Returns
        the captured run-loop state (or ``None``).
        """
        payload = self.payload
        if payload.get("format") != FORMAT:
            raise ExperimentError("not a cluster checkpoint payload")
        if int(payload["num_workers"]) != cluster.num_workers:
            raise ExperimentError(
                f"checkpoint has {payload['num_workers']} workers, cluster has "
                f"{cluster.num_workers}"
            )
        if int(payload["model_dimension"]) != cluster.model_dimension:
            raise ExperimentError(
                f"checkpoint model dimension {payload['model_dimension']} != "
                f"{cluster.model_dimension}"
            )
        if payload["dtype"] != cluster.dtype_name:
            raise ExperimentError(
                f"checkpoint dtype {payload['dtype']} != cluster dtype {cluster.dtype_name}"
            )
        cluster.parameter_matrix[...] = payload["parameters"]
        if cluster.buffer_matrix.shape[1]:
            cluster.buffer_matrix[...] = payload["buffers"]
        cluster.synchronization_count = int(payload["synchronization_count"])
        for worker, worker_state in zip(cluster.workers, payload["workers"]):
            worker.steps_performed = int(worker_state["steps_performed"])
            last_loss = worker_state["last_loss"]
            worker.last_loss = None if last_loss is None else float(last_loss)
            optimizer = worker.optimizer
            optimizer.step_count = int(worker_state["optimizer"]["step_count"])
            for attr in _OPTIMIZER_STATE_ATTRS:
                saved = worker_state["optimizer"].get(attr)
                if saved is None:
                    continue
                current = getattr(optimizer, attr, None)
                if isinstance(current, np.ndarray):
                    current[...] = saved
                else:
                    setattr(optimizer, attr, np.array(saved))
            worker._sampler._rng.bit_generator.state = worker_state["sampler_rng"]
            worker._epoch_iterator._rng.bit_generator.state = worker_state["epoch_rng"]
            _restore_model_rng_states(worker.model, worker_state["model_rngs"])
        timeline_state = payload["timeline"]
        timeline = cluster.timeline
        timeline.now = float(timeline_state["now"])
        timeline.compute_seconds = float(timeline_state["compute_seconds"])
        timeline.comm_seconds = float(timeline_state["comm_seconds"])
        timeline.rounds_advanced = int(timeline_state["rounds_advanced"])
        timeline.churn_events = [
            (float(t), str(kind), int(w)) for t, kind, w in timeline_state["churn_events"]
        ]
        # Legacy checkpoints (pre tie-break fix) stored [time, worker] pairs;
        # assign sequence numbers in list order so their relative FIFO order
        # within equal (time, worker) keys is preserved.
        timeline._queue = [
            (float(entry[0]), int(entry[1]), int(entry[2]) if len(entry) > 2 else index)
            for index, entry in enumerate(timeline_state["queue"])
        ]
        heapq.heapify(timeline._queue)
        default_seq = 1 + max((s for _, _, s in timeline._queue), default=-1)
        timeline._event_seq = int(timeline_state.get("event_seq", default_seq))
        timeline._durations[...] = timeline_state["durations"]
        timeline._rng.bit_generator.state = timeline_state["rng"]
        fabric_state = payload["fabric"]
        fabric = cluster.fabric
        fabric.tracker.bytes_by_category = {
            key: int(value) for key, value in fabric_state["bytes_by_category"].items()
        }
        fabric.tracker.operations_by_category = {
            key: int(value)
            for key, value in fabric_state["operations_by_category"].items()
        }
        fabric.bytes_by_link = {}
        for label, value in fabric_state["bytes_by_link"].items():
            src, dst = label.split("->")
            fabric.bytes_by_link[(int(src), int(dst))] = int(value)
        fabric.comm_seconds = float(fabric_state["comm_seconds"])
        fabric.seconds_by_category = {
            key: float(value)
            for key, value in fabric_state["seconds_by_category"].items()
        }
        if payload.get("injector") is not None:
            if cluster.faults is None:
                raise ExperimentError(
                    "checkpoint carries fault-injector state but the cluster "
                    "has no fault plan attached"
                )
            cluster.faults.load_state_dict(payload["injector"])
        if payload.get("strategy") is not None and strategy is not None:
            strategy.restore_state(payload["strategy"])
        return payload.get("run_state")

    # -- persistence --------------------------------------------------------------

    def save(self, path: PathLike) -> Path:
        """Atomically write the checkpoint to ``path`` (tmp → fsync → rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = encode_value(self.payload)
        tmp_path = path.with_name(path.name + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ClusterCheckpoint":
        """Read a checkpoint previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ExperimentError(f"checkpoint file {path} does not exist")
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
        payload = decode_value(document)
        if not isinstance(payload, dict) or payload.get("format") != FORMAT:
            raise ExperimentError(f"{path} is not a cluster checkpoint")
        return cls(payload)
