"""The fault-injection plane: deterministic chaos for the simulated cluster.

Three pieces, layered exactly like the rest of the library:

* :class:`~repro.faults.plan.FaultPlan` — frozen, seeded *description* of the
  faults (crash/recovery renewal processes, per-link loss with retry/backoff,
  transient straggler spikes, payload corruption).  Pure data; participates
  in sweep cache keys.
* :class:`~repro.faults.injector.FaultInjector` /
  :class:`~repro.faults.injector.FaultLog` — the mutable machinery drawing
  from the plan's own named RNG streams, plus the append-only audit log
  persisted on :class:`~repro.experiments.run.RunResult`.
* :class:`~repro.faults.checkpoint.ClusterCheckpoint` — run-level snapshot
  and bit-exact restore of the whole training plane (parameters, optimizer
  state, every RNG stream, clocks, ledgers, protocol state).
"""

from repro.faults.checkpoint import ClusterCheckpoint
from repro.faults.injector import FaultInjector, FaultLog
from repro.faults.plan import FaultPlan

__all__ = [
    "ClusterCheckpoint",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
]
