"""Declarative fault plans for the simulated cluster.

A :class:`FaultPlan` is a frozen, seeded description of *what can go wrong*
during a run: worker crash/recovery renewal processes, per-link message loss
with retry/backoff, transient straggler spikes, and payload corruption.  The
plan itself is pure data — the mutable machinery that draws from it lives in
:class:`~repro.faults.injector.FaultInjector` — so plans can participate in
content-addressed sweep cache keys (`repro.experiments.cache.canonical_value`
serializes dataclasses field-by-field) and be compared or persisted cheaply.

A plan with every rate at zero (``is_null``) is treated as "no plan at all"
throughout the stack: the cluster skips injector construction entirely, which
makes the fault-free path bit-identical to pre-faults builds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults injected into one run.

    Parameters
    ----------
    crash_rate:
        Per-round probability that each alive worker crashes (independent
        Bernoulli draws; a renewal process once recovery is folded in).
    recovery_rounds:
        Mean number of rounds a crashed worker stays dead.  The actual
        outage length is geometric with mean ``recovery_rounds`` (minimum 1
        round), so recoveries form a memoryless renewal process.
    loss_rate:
        Per-link, per-collective probability that a message transmission
        fails and must be retransmitted.  Retries are drawn from a geometric
        distribution capped at ``max_retries``.
    max_retries:
        Upper bound on retransmissions per link per collective.  After the
        cap the transfer is assumed delivered (the simulation never
        deadlocks on an unlucky stream).
    backoff_base_seconds / backoff_cap_seconds:
        Capped exponential backoff: retry *i* (0-based) waits
        ``min(base * 2**i, cap)`` virtual seconds before retransmitting.
    straggler_spike_rate:
        Per-round probability of a transient straggler spike: one worker's
        step takes ``straggler_spike_factor`` times longer, stretching the
        round's critical path on the timeline.
    straggler_spike_factor:
        Slowdown multiplier applied to the spiked worker's step time.
    corruption_rate:
        Per-model-broadcast probability that a worker's received payload is
        corrupted with additive Gaussian noise of scale ``corruption_scale``.
    corruption_scale:
        Standard deviation of the corruption noise.
    seed:
        Root seed for the injector's RNG streams.  Faults draw from their
        own named streams ("faults/churn", "faults/links", ...) so enabling
        one fault category never perturbs another — or the training RNG.
    """

    crash_rate: float = 0.0
    recovery_rounds: float = 10.0
    loss_rate: float = 0.0
    max_retries: int = 5
    backoff_base_seconds: float = 0.1
    backoff_cap_seconds: float = 2.0
    straggler_spike_rate: float = 0.0
    straggler_spike_factor: float = 4.0
    corruption_rate: float = 0.0
    corruption_scale: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "loss_rate", "straggler_spike_rate", "corruption_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1), got {value}"
                )
        if self.recovery_rounds < 1.0:
            raise ConfigurationError(
                f"recovery_rounds must be >= 1, got {self.recovery_rounds}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base_seconds < 0.0 or self.backoff_cap_seconds < 0.0:
            raise ConfigurationError("backoff seconds must be non-negative")
        if self.straggler_spike_factor < 1.0:
            raise ConfigurationError(
                f"straggler_spike_factor must be >= 1, got {self.straggler_spike_factor}"
            )
        if self.corruption_scale < 0.0:
            raise ConfigurationError(
                f"corruption_scale must be non-negative, got {self.corruption_scale}"
            )

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing (pure-observer / no-op plan)."""
        return (
            self.crash_rate == 0.0
            and self.loss_rate == 0.0
            and self.straggler_spike_rate == 0.0
            and self.corruption_rate == 0.0
        )

    def describe(self) -> str:
        """Compact human-readable label (used by CLI tables and logs)."""
        if self.is_null:
            return "none"
        parts = []
        if self.crash_rate:
            parts.append(f"crash={self.crash_rate:g}/round(recover~{self.recovery_rounds:g})")
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate:g}/link")
        if self.straggler_spike_rate:
            parts.append(f"spike={self.straggler_spike_rate:g}x{self.straggler_spike_factor:g}")
        if self.corruption_rate:
            parts.append(f"corrupt={self.corruption_rate:g}")
        return ",".join(parts)
