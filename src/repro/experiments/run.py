"""The training-run loop: execute a strategy until an accuracy target is hit.

This mirrors the paper's evaluation methodology exactly: a *training run*
executes one DDL algorithm on one workload until the final evaluation point at
which the trained (global) model reaches the target test accuracy, and the
run's cost is reported as (communication bytes, in-parallel learning steps) at
that point.  Runs that never reach the target within the step budget are
marked accordingly and report their best accuracy instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.exceptions import ConfigurationError
from repro.strategies.base import Strategy
from repro.utils.runlog import RunLogger


@dataclass
class RunResult:
    """Outcome of one training run (one strategy on one workload)."""

    strategy: str
    workload: str
    reached_target: bool
    accuracy_target: float
    final_accuracy: float
    best_accuracy: float
    communication_bytes: int
    parallel_steps: int
    synchronizations: int
    evaluations: int
    state_bytes: int = 0
    model_bytes: int = 0
    final_train_accuracy: Optional[float] = None
    #: Virtual wall-clock accounting from the shared timeline: total seconds,
    #: split into compute and communication, plus the fabric that produced it.
    virtual_seconds: float = 0.0
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    topology: str = "star"
    network: str = "none"
    #: Execution engine the cluster was *configured* with ("sequential" or
    #: "batched").  The engines must produce equivalent results (see the
    #: parity suite), so this documents configuration, not arithmetic.  On
    #: "batched", lockstep strategies (FDA, BSP, Local-SGD, compression) run
    #: stacked (K, d) passes — masked to the participating rows under
    #: timeline dropout — and per-worker driving (FedOpt local epochs, the
    #: asynchronous trainer's event completions) runs single-row slices of
    #: the same kernels; only strategies that bypass the engine entirely
    #: (FedProx/SCAFFOLD's transformed local epochs) stay per-worker.
    execution: str = "sequential"
    #: Collective-level payload compression the cluster carried ("none", or a
    #: compact label like "topk(ratio=0.1)+ef") — the byte totals above
    #: already reflect it.
    compression: str = "none"
    #: Compute dtype of the cluster's parameter plane ("float64" or
    #: "float32"); byte totals reflect its itemsize under the default
    #: cost model.
    dtype: str = "float64"
    #: Compact label of the fault plan the run was injected with ("none"
    #: without one), and the injector's full audit log (crashes, rejoins,
    #: per-link retransmissions, spikes) as a plain dict — see
    #: :class:`~repro.faults.injector.FaultLog`.
    faults: str = "none"
    fault_log: Optional[dict] = None
    #: Compact label of the population the run trained over ("none" for a
    #: materialized cluster; e.g. "pop(N=100000,C=16,fixed,data-size)").
    population: str = "none"
    history: RunLogger = field(default_factory=RunLogger)

    @property
    def communication_gb(self) -> float:
        """Communication cost in gigabytes (the unit used in the figures)."""
        return self.communication_bytes / 1e9

    @property
    def seconds_per_round(self) -> float:
        """Mean virtual seconds per in-parallel learning step (round pacing)."""
        return self.virtual_seconds / max(self.parallel_steps, 1)

    @property
    def generalization_gap(self) -> Optional[float]:
        """Train-minus-test accuracy at the end of the run (Figure 7's metric)."""
        if self.final_train_accuracy is None:
            return None
        return self.final_train_accuracy - self.final_accuracy

    def summary(self) -> dict:
        """Plain-dict view used by the results tables and benchmarks."""
        return {
            "strategy": self.strategy,
            "workload": self.workload,
            "reached_target": self.reached_target,
            "accuracy_target": self.accuracy_target,
            "final_accuracy": round(self.final_accuracy, 4),
            "communication_bytes": self.communication_bytes,
            "parallel_steps": self.parallel_steps,
            "synchronizations": self.synchronizations,
            "virtual_seconds": round(self.virtual_seconds, 6),
            "topology": self.topology,
            "network": self.network,
        }


class TrainingRun:
    """Runs a strategy until the accuracy target (or the step budget) is reached."""

    def __init__(
        self,
        accuracy_target: float = 0.9,
        max_steps: int = 2000,
        eval_every_steps: int = 20,
        track_train_accuracy: bool = False,
        train_eval_samples: int = 512,
        checkpoint_every: int = 0,
        checkpoint_path=None,
    ) -> None:
        if not 0.0 < accuracy_target <= 1.0:
            raise ConfigurationError(
                f"accuracy_target must lie in (0, 1], got {accuracy_target}"
            )
        if max_steps <= 0:
            raise ConfigurationError(f"max_steps must be positive, got {max_steps}")
        if eval_every_steps <= 0:
            raise ConfigurationError(
                f"eval_every_steps must be positive, got {eval_every_steps}"
            )
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be non-negative, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_path is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_path to write snapshots to"
            )
        self.accuracy_target = float(accuracy_target)
        self.max_steps = int(max_steps)
        self.eval_every_steps = int(eval_every_steps)
        self.track_train_accuracy = bool(track_train_accuracy)
        self.train_eval_samples = int(train_eval_samples)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_path = checkpoint_path

    def spec(self) -> dict:
        """The run budget as a plain dict, fingerprinted into every run key.

        Checkpoint cadence and path are deliberately absent: snapshots are an
        observer of the trajectory (a checkpointed run and an uncheckpointed
        one are bit-identical), so they must not invalidate sweep cache keys.
        """
        return {
            "class": type(self).__name__,
            "accuracy_target": self.accuracy_target,
            "max_steps": self.max_steps,
            "eval_every_steps": self.eval_every_steps,
            "track_train_accuracy": self.track_train_accuracy,
            "train_eval_samples": self.train_eval_samples,
        }

    def execute(
        self,
        strategy: Strategy,
        cluster: SimulatedCluster,
        test_dataset: Dataset,
        train_dataset: Optional[Dataset] = None,
        workload_name: str = "workload",
        resume_from=None,
    ) -> RunResult:
        """Attach ``strategy`` to ``cluster`` and train until target or budget.

        ``resume_from`` (a path or a loaded
        :class:`~repro.faults.checkpoint.ClusterCheckpoint`) restores a
        snapshot taken by a previous ``execute`` of the *same configuration*
        into the freshly attached cluster/strategy and continues mid-run: the
        continued trajectory, history, and ledgers are bit-identical to an
        uninterrupted run.  With ``checkpoint_every > 0`` the run writes a
        snapshot to ``checkpoint_path`` every that-many in-parallel steps.
        """
        strategy.attach(cluster)
        population = getattr(cluster, "population", None)
        if population is not None:
            # Attach after the strategy's initial broadcast so the captured
            # fresh-client model is the shared w₀; from here each round draws
            # a cohort, binds it onto the slots, and runs the strategy round.
            population.attach(cluster, strategy)
        history = RunLogger(name=f"{strategy.name}-{workload_name}")
        best_accuracy = 0.0
        final_accuracy = 0.0
        final_train_accuracy: Optional[float] = None
        reached = False
        evaluations = 0
        mean_loss = 0.0
        #: Target of a partially completed evaluation block being resumed.
        pending_target: Optional[int] = None

        if resume_from is not None:
            from repro.faults.checkpoint import ClusterCheckpoint

            checkpoint = (
                resume_from
                if isinstance(resume_from, ClusterCheckpoint)
                else ClusterCheckpoint.load(resume_from)
            )
            run_state = checkpoint.restore(cluster, strategy)
            if run_state:
                best_accuracy = float(run_state["best_accuracy"])
                final_accuracy = float(run_state["final_accuracy"])
                train_acc = run_state.get("final_train_accuracy")
                final_train_accuracy = None if train_acc is None else float(train_acc)
                reached = bool(run_state["reached"])
                evaluations = int(run_state["evaluations"])
                mean_loss = float(run_state["mean_loss"])
                pending_target = run_state.get("block_target")
                for entry in run_state.get("history", []):
                    history.log(**entry)

        train_eval = None
        if self.track_train_accuracy and train_dataset is not None:
            subset_size = min(self.train_eval_samples, len(train_dataset))
            train_eval = train_dataset.subset(range(subset_size), name="train-eval")

        last_snapshot_steps = cluster.parallel_steps

        def maybe_snapshot(block_target: int) -> None:
            nonlocal last_snapshot_steps
            if not self.checkpoint_every:
                return
            if cluster.parallel_steps - last_snapshot_steps < self.checkpoint_every:
                return
            from repro.faults.checkpoint import ClusterCheckpoint

            run_state = {
                "best_accuracy": best_accuracy,
                "final_accuracy": final_accuracy,
                "final_train_accuracy": final_train_accuracy,
                "reached": reached,
                "evaluations": evaluations,
                "mean_loss": mean_loss,
                "block_target": int(block_target),
                "history": list(history.entries),
            }
            ClusterCheckpoint.capture(cluster, strategy, run_state).save(
                self.checkpoint_path
            )
            last_snapshot_steps = cluster.parallel_steps

        while not reached and cluster.parallel_steps < self.max_steps:
            if pending_target is not None:
                # Resume the interrupted evaluation block where it left off,
                # keeping evaluation points aligned with the original run.
                target_steps = int(pending_target)
                pending_target = None
            else:
                target_steps = min(
                    cluster.parallel_steps + self.eval_every_steps, self.max_steps
                )
                mean_loss = 0.0
            while cluster.parallel_steps < target_steps:
                if population is not None:
                    round_result = population.run_round()
                else:
                    round_result = strategy.run_round()
                mean_loss = round_result.mean_loss
                maybe_snapshot(target_steps)

            _, test_accuracy = cluster.evaluate_global(test_dataset)
            evaluations += 1
            final_accuracy = test_accuracy
            best_accuracy = max(best_accuracy, test_accuracy)
            entry = {
                "steps": cluster.parallel_steps,
                "communication_bytes": cluster.total_bytes,
                "test_accuracy": test_accuracy,
                "train_loss": mean_loss,
                "synchronizations": cluster.synchronization_count,
                "virtual_seconds": cluster.virtual_time,
            }
            if train_eval is not None:
                _, train_accuracy = cluster.evaluate_global(train_eval)
                entry["train_accuracy"] = train_accuracy
                final_train_accuracy = train_accuracy
            history.log(**entry)

            if test_accuracy >= self.accuracy_target:
                reached = True
                break

        strategy.finalize()
        return RunResult(
            strategy=strategy.name,
            workload=workload_name,
            reached_target=reached,
            accuracy_target=self.accuracy_target,
            final_accuracy=final_accuracy,
            best_accuracy=best_accuracy,
            communication_bytes=cluster.total_bytes,
            parallel_steps=cluster.parallel_steps,
            synchronizations=cluster.synchronization_count,
            evaluations=evaluations,
            state_bytes=cluster.tracker.bytes_for("fda-state"),
            model_bytes=cluster.tracker.bytes_for("model-sync"),
            final_train_accuracy=final_train_accuracy,
            virtual_seconds=cluster.virtual_time,
            compute_seconds=cluster.timeline.compute_seconds,
            comm_seconds=cluster.timeline.comm_seconds,
            topology=cluster.fabric.topology.name,
            network=cluster.fabric.network_name,
            execution=cluster.execution,
            compression=cluster.compression_label,
            dtype=cluster.dtype_name,
            faults=(
                cluster.faults.plan.describe() if cluster.faults is not None else "none"
            ),
            fault_log=(
                cluster.faults.log.to_dict() if cluster.faults is not None else None
            ),
            population=(
                population.describe() if population is not None else "none"
            ),
            history=history,
        )
