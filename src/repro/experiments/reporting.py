"""Text reporting of experiment results in the paper's units.

Benchmarks and examples print these tables so their stdout can be compared
side-by-side with the paper's figures: strategies as rows, communication in
GB, computation in in-parallel learning steps, plus the pairwise ratios the
paper quotes ("1-2 orders of magnitude less communication").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.experiments.results import ResultsTable, StrategySummary, compare_strategies
from repro.experiments.run import RunResult
from repro.utils.formatting import format_bytes, format_count, format_duration


def format_results_table(results: Sequence[RunResult], reached_only: bool = True) -> str:
    """Per-strategy summary table (one row per strategy)."""
    table = ResultsTable(results)
    summaries = table.summaries(reached_only=reached_only)
    return format_summaries(summaries)


def format_summaries(summaries: Iterable[StrategySummary]) -> str:
    """Render :class:`StrategySummary` rows as a fixed-width text table."""
    header = [
        "strategy",
        "runs",
        "reach",
        "comm (median)",
        "steps (median)",
        "syncs (median)",
        "wall-clock",
        "accuracy",
    ]
    rows: List[List[str]] = [header]
    for summary in summaries:
        rows.append(
            [
                summary.strategy,
                str(summary.num_runs),
                f"{summary.reach_rate:.0%}",
                format_bytes(summary.median_communication_bytes),
                format_count(summary.median_parallel_steps),
                format_count(summary.median_synchronizations),
                format_duration(summary.median_virtual_seconds),
                f"{summary.median_final_accuracy:.3f}",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_comparison(
    results: Sequence[RunResult], candidate: str, baseline: str
) -> str:
    """One-line comparison: how much cheaper the candidate is than the baseline."""
    ratios = compare_strategies(results, candidate, baseline)
    return (
        f"{candidate} vs {baseline}: "
        f"{ratios['communication_ratio']:.1f}x less communication, "
        f"{ratios['computation_ratio']:.1f}x less computation "
        f"(reach rates: {ratios['candidate_reach_rate']:.0%} vs "
        f"{ratios['baseline_reach_rate']:.0%})"
    )


def format_run_history(result: RunResult, max_rows: int = 12) -> str:
    """Render a run's evaluation history (used by the Figure-7 style outputs)."""
    entries = result.history.entries
    if not entries:
        return f"<no evaluations recorded for {result.strategy}>"
    step = max(1, len(entries) // max_rows)
    selected = entries[::step]
    if entries[-1] not in selected:
        selected.append(entries[-1])
    lines = [f"{result.strategy} on {result.workload} (target {result.accuracy_target}):"]
    for entry in selected:
        parts = [
            f"steps={entry.get('steps', 0):>6}",
            f"comm={format_bytes(entry.get('communication_bytes', 0))}",
            f"test_acc={entry.get('test_accuracy', 0.0):.3f}",
        ]
        if "train_accuracy" in entry:
            parts.append(f"train_acc={entry['train_accuracy']:.3f}")
        lines.append("  " + "  ".join(parts))
    return "\n".join(lines)


def comparison_ratios(
    results: Sequence[RunResult], candidate: str, baselines: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """All pairwise comparisons of one candidate against several baselines."""
    return {
        baseline: compare_strategies(results, candidate, baseline) for baseline in baselines
    }
