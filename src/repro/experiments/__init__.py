"""Experiment harness: the paper's evaluation methodology as code.

A *training run* (Section 4.1) executes one DDL algorithm on one workload
until the global model reaches a target test accuracy, and reports two costs:
communication (total bytes transmitted by all workers) and computation
(in-parallel learning steps).  This subpackage provides the workload builder,
the run loop, sweeps over Θ and K, result aggregation, KDE summaries of the
cost distributions, and the registry that maps every figure/table of the
paper to a concrete configuration.
"""

from repro.experiments.setup import (
    SetupCache,
    WorkloadConfig,
    build_cluster,
    make_optimizer,
)
from repro.experiments.run import RunResult, TrainingRun
from repro.experiments.results import (
    ResultsTable,
    compare_strategies,
    summarize_results,
)
from repro.experiments.cache import CODE_VERSION, RunStore
from repro.experiments.executor import SweepCell, SweepExecutor, execute_cells
from repro.experiments.sweep import (
    CompressionSweepPoint,
    FabricSweepPoint,
    SweepPoint,
    run_compression_spec,
    run_fabric_spec,
    sweep_compression,
    sweep_fabric,
    sweep_theta,
    sweep_workers,
)
from repro.experiments.kde import kde_density, log_kde_summary
from repro.experiments.persistence import (
    load_results,
    load_sweep,
    save_results,
    save_sweep,
)
from repro.experiments.reporting import format_results_table, format_comparison
from repro.experiments import registry

__all__ = [
    "WorkloadConfig",
    "build_cluster",
    "make_optimizer",
    "TrainingRun",
    "RunResult",
    "ResultsTable",
    "summarize_results",
    "compare_strategies",
    "SetupCache",
    "RunStore",
    "CODE_VERSION",
    "SweepCell",
    "SweepExecutor",
    "execute_cells",
    "SweepPoint",
    "FabricSweepPoint",
    "CompressionSweepPoint",
    "sweep_theta",
    "sweep_workers",
    "sweep_fabric",
    "sweep_compression",
    "run_fabric_spec",
    "run_compression_spec",
    "kde_density",
    "log_kde_summary",
    "save_results",
    "load_results",
    "save_sweep",
    "load_sweep",
    "format_results_table",
    "format_comparison",
    "registry",
]
