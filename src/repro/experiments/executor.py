"""The streaming sweep executor: cache, resume, memoize, parallelize.

The paper's evaluation aggregates over 1000 training runs (Table 2 grids ×
seeds); on a single box such grids are only tractable when unchanged cells
cost zero and independent cells use every core.  :class:`SweepExecutor`
provides exactly that, as the execution substrate under every sweep in
:mod:`repro.experiments.sweep`:

1. **Content-addressed run keys** — every cell (workload × strategy ×
   training-run budget) is hashed into a canonical key covering the dataset
   *content*, the initial model, the partition/fabric/compression/dtype/
   execution configuration, the seeds, and a code-version salt
   (:mod:`repro.experiments.cache`).  A cell whose key is already in the
   store is never executed again; its :class:`RunResult` replays from disk.

2. **Incremental crash-resumable JSONL store** — each completed cell is
   durably appended to ``runs.jsonl`` *as it finishes* (write + fsync), so a
   sweep killed mid-grid resumes exactly at its last durable cell on the
   next invocation.

3. **Shared-setup memoization** — dataset digests, partitions, and initial
   model state are built once per workload fingerprint and rebound per cell
   (:class:`~repro.experiments.setup.SetupCache`), eliminating the per-cell
   ``build_cluster`` rebuild that dominates small-cell grids.

4. **Process-parallel cells** — with ``jobs > 1`` pending cells dispatch
   over a fork-based :class:`~concurrent.futures.ProcessPoolExecutor`.
   Every cell is deterministically seeded by its own configuration, so
   parallel results are bit-identical to serial ones; the parent records
   completions into the store as they arrive, preserving crash-resumability.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments.cache import CODE_VERSION, RunStore, canonical_value, fingerprint_digest
from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.run import RunResult, TrainingRun
from repro.experiments.setup import SetupCache, WorkloadConfig, build_cluster
from repro.strategies.base import Strategy

StrategyFactory = Callable[[], Strategy]


@dataclass(frozen=True)
class SweepCell:
    """One independently executable grid cell of a sweep."""

    workload: WorkloadConfig
    strategy_factory: StrategyFactory
    run: TrainingRun
    #: Human-readable label stored with the cell's record (e.g. ``theta=4``).
    label: str = ""
    #: Structured tags replayed into sweep points (e.g. ``{"value": 4.0}``).
    tags: Dict[str, object] = field(default_factory=dict)


@dataclass
class SweepStats:
    """Counters accumulated across an executor's :meth:`~SweepExecutor.execute` calls."""

    cells: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    parallel_cells: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requested cells served from the store."""
        return self.cache_hits / self.cells if self.cells else 0.0

    def describe(self) -> str:
        return (
            f"{self.cells} cells: {self.cache_hits} cache hits "
            f"({self.hit_rate:.0%}), {self.executed} executed"
            + (f" ({self.parallel_cells} in parallel)" if self.parallel_cells else "")
            + (f", {self.failed} failed" if self.failed else "")
        )


def workload_fingerprint(config: WorkloadConfig, setup: SetupCache) -> Dict[str, object]:
    """Canonical fingerprint of a workload, content-addressed where it matters.

    Datasets and the initial model are digested by content (not by factory
    identity), so two separately constructed but equal workloads share a
    fingerprint; every configuration field that can change a run's outcome —
    partitioning, fabric, timeline, engine, compression, dtype, faults, seed
    — is
    included, so any single-field change produces a different key.
    """
    return {
        "name": config.name,
        "num_workers": int(config.num_workers),
        "batch_size": int(config.batch_size),
        "partition_scheme": str(config.partition_scheme),
        "partition_kwargs": canonical_value(config.partition_kwargs),
        "loss": canonical_value(config.loss),
        "cost_model": canonical_value(config.cost_model),
        "topology": canonical_value(config.topology),
        "network": canonical_value(config.network),
        "compute_profile": canonical_value(config.compute_profile),
        "dropout_rate": float(config.dropout_rate),
        "execution": str(config.execution),
        "compression": canonical_value(config.compression),
        "dtype": str(config.dtype),
        "faults": canonical_value(config.faults),
        "population": canonical_value(config.population),
        "serving": canonical_value(config.serving),
        "seed": int(config.seed),
        "train_dataset": setup.dataset_digest(config.train_dataset),
        "test_dataset": setup.dataset_digest(config.test_dataset),
        "model": canonical_value(setup.model_digest(config)),
        "optimizer": canonical_value(config.optimizer_factory()),
    }


def _execute_cell(cell: SweepCell, setup: Optional[SetupCache]) -> RunResult:
    """Run one cell to completion (the serial and per-process work unit)."""
    cluster, test_dataset = build_cluster(cell.workload, setup=setup)
    return cell.run.execute(
        cell.strategy_factory(),
        cluster,
        test_dataset,
        train_dataset=cell.workload.train_dataset,
        workload_name=cell.workload.name,
    )


# ---------------------------------------------------------------------------
# Fork-based parallel dispatch
#
# Cells carry workload factories (closures) that cannot cross a pickle
# boundary, so the cell list is published in a module global *before* the
# fork-context pool spawns its workers: children inherit it (and the parent's
# already-populated setup cache) through copy-on-write memory and receive
# only the cell index over the pipe.  Results travel back as plain dicts.
# ---------------------------------------------------------------------------

_FORK_CELLS: Optional[List[SweepCell]] = None
_FORK_SETUP: Optional[SetupCache] = None


def _run_forked_cell(index: int):
    result = _execute_cell(_FORK_CELLS[index], _FORK_SETUP)
    return index, result_to_dict(result)


def fork_parallelism_available() -> bool:
    """Whether process-parallel cells are supported on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class SweepExecutor:
    """Streaming executor for sweep cells: skip, replay, memoize, parallelize.

    Parameters
    ----------
    cache_dir:
        Directory of the content-addressed result store (``manifest.json`` +
        ``runs.jsonl``).  ``None`` disables persistence: every miss executes
        and nothing is written (shared-setup memoization still applies).
    jobs:
        Worker processes for pending cells.  ``1`` (default) runs serially
        in-process; ``None`` uses ``os.cpu_count()``.  Falls back to serial
        where fork is unavailable.
    resume:
        Replay cells already present in the store (default).  With
        ``resume=False`` the store is write-only for this invocation.
    force:
        Re-execute every cell even if cached, appending fresh records that
        shadow the old ones on the next load.
    setup:
        Shared-setup cache; a private one is created by default.  Pass an
        existing instance to share memoized partitions/models across several
        executors in one process.
    """

    def __init__(
        self,
        cache_dir=None,
        jobs: Optional[int] = 1,
        resume: bool = True,
        force: bool = False,
        setup: Optional[SetupCache] = None,
    ) -> None:
        if jobs is not None and jobs <= 0:
            raise ConfigurationError(f"jobs must be positive (or None for auto), got {jobs}")
        self.store = RunStore(cache_dir) if cache_dir is not None else None
        self.jobs = int(jobs) if jobs is not None else max(1, os.cpu_count() or 1)
        self.resume = bool(resume)
        self.force = bool(force)
        self.setup = setup if setup is not None else SetupCache()
        self.stats = SweepStats()

    # -- keys --------------------------------------------------------------

    def run_key(self, cell: SweepCell) -> str:
        """Content-addressed key of one cell (hex SHA-256).

        Strategies are fingerprinted through a freshly constructed instance
        (:meth:`repro.strategies.base.Strategy.spec`), the training-run
        budget through :meth:`repro.experiments.run.TrainingRun.spec`, and
        the workload through :func:`workload_fingerprint`; the code-version
        salt invalidates the whole store when run semantics change.
        """
        return fingerprint_digest(
            {
                "code_version": CODE_VERSION,
                "workload": workload_fingerprint(cell.workload, self.setup),
                "strategy": canonical_value(cell.strategy_factory().spec()),
                "run": canonical_value(cell.run.spec()),
            }
        )

    # -- execution ---------------------------------------------------------

    def execute(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        """Execute (or replay) every cell, returning results in cell order.

        Completed cells are appended to the store *as they finish*, before
        any later cell runs — an exception mid-grid therefore loses only the
        failing cell, and the next invocation resumes from the store.
        """
        cells = list(cells)
        if not cells:
            return []
        for cell in cells:
            if not isinstance(cell, SweepCell):
                raise ExperimentError(f"expected a SweepCell, got {type(cell).__name__}")
        keys = [self.run_key(cell) for cell in cells]
        results: List[Optional[RunResult]] = [None] * len(cells)
        self.stats.cells += len(cells)

        index = {}
        if self.store is not None and self.resume and not self.force:
            index = self.store.load_index()
        pending: List[int] = []
        for position, key in enumerate(keys):
            record = index.get(key)
            if record is not None:
                results[position] = result_from_dict(record["result"])
                self.stats.cache_hits += 1
            else:
                pending.append(position)

        if pending:
            if self.jobs > 1 and len(pending) > 1 and fork_parallelism_available():
                self._execute_parallel(cells, keys, pending, results)
            else:
                for position in pending:
                    try:
                        result = _execute_cell(cells[position], self.setup)
                    except Exception:
                        self.stats.failed += 1
                        raise
                    self._record(keys[position], cells[position], result)
                    results[position] = result
        return results  # type: ignore[return-value]

    def _record(self, key: str, cell: SweepCell, result: RunResult) -> None:
        self.stats.executed += 1
        if self.store is not None:
            self.store.append(key, result_to_dict(result), label=cell.label, tags=cell.tags)

    def _execute_parallel(
        self,
        cells: List[SweepCell],
        keys: List[str],
        pending: List[int],
        results: List[Optional[RunResult]],
    ) -> None:
        global _FORK_CELLS, _FORK_SETUP
        workers = min(self.jobs, len(pending))
        _FORK_CELLS = cells
        _FORK_SETUP = self.setup
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                futures = {
                    pool.submit(_run_forked_cell, position): position
                    for position in pending
                }
                first_error: Optional[BaseException] = None
                for future in as_completed(futures):
                    error = future.exception()
                    if error is not None:
                        self.stats.failed += 1
                        if first_error is None:
                            first_error = error
                        continue
                    position, payload = future.result()
                    result = result_from_dict(payload)
                    self._record(keys[position], cells[position], result)
                    self.stats.parallel_cells += 1
                    results[position] = result
                if first_error is not None:
                    raise first_error
        finally:
            _FORK_CELLS = None
            _FORK_SETUP = None


def execute_cells(
    cells: Sequence[SweepCell], executor: Optional[SweepExecutor] = None
) -> List[RunResult]:
    """Run cells through ``executor``, or a fresh default one.

    The default executor persists nothing and runs serially, but still
    memoizes shared setup within the call — the drop-in replacement for the
    historical run-every-cell-eagerly loop, at lower cost and identical bits.
    """
    return (executor if executor is not None else SweepExecutor()).execute(cells)
