"""Experiment registry: one entry per table and figure of the paper.

Every benchmark in ``benchmarks/`` pulls its configuration from here, so the
mapping between the paper's evaluation and this reproduction lives in a single
place (and is cross-referenced from DESIGN.md).  The configurations are
scaled-down versions of Table 2: synthetic datasets stand in for MNIST /
CIFAR-10 / CIFAR-100, the architectures are the miniatures from
:mod:`repro.nn.architectures`, and the Θ grids / worker counts are chosen so a
full figure reproduction runs in seconds to minutes on a CPU while preserving
the qualitative trends (see the "expected shapes" list in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.data.datasets import train_test_split
from repro.data.synthetic import (
    synthetic_cifar,
    synthetic_digits,
    synthetic_features,
)
from repro.data.features import PretrainedFeatureExtractor
from repro.experiments.run import TrainingRun
from repro.experiments.setup import WorkloadConfig, make_optimizer
from repro.nn.architectures import densenet_mini, lenet5, transfer_head, vgg_mini
from repro.optim.server import FedAdam, FedAvgM
from repro.strategies.base import Strategy
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import FedOptStrategy
from repro.strategies.synchronous import SynchronousStrategy

StrategyFactory = Callable[[], Strategy]


@dataclass
class ExperimentSpec:
    """A figure/table reproduction: workloads, strategies, thresholds, run budget.

    ``topologies`` and ``networks`` define an optional fabric grid: when both
    are non-empty, :func:`repro.experiments.sweep.run_fabric_spec` (exposed as
    ``python -m repro.cli fabric --spec``) sweeps every strategy over every
    (topology, network) cell, reporting per-category bytes and virtual
    wall-clock per round for each fabric.  ``compressions`` analogously
    defines an optional payload-compression grid for
    :func:`repro.experiments.sweep.run_compression_spec`
    (``python -m repro.cli compression``); entries are kernel names,
    :class:`~repro.compression.config.CompressionConfig` objects, or
    ``"none"``.
    """

    experiment_id: str
    title: str
    workloads: Dict[str, WorkloadConfig]
    strategy_factories: Dict[str, StrategyFactory]
    run: TrainingRun
    fda_thetas: Sequence[float] = field(default_factory=tuple)
    worker_counts: Sequence[int] = field(default_factory=tuple)
    topologies: Sequence[str] = field(default_factory=tuple)
    networks: Sequence[str] = field(default_factory=tuple)
    compressions: Sequence = field(default_factory=tuple)
    #: Workload seeds for repeated-grid runs (``python -m repro.cli sweep
    #: --seeds``); each seed re-derives the workload's partition/timeline/
    #: worker RNG streams, multiplying the grid for aggregate statistics.
    seeds: Sequence[int] = (0,)
    notes: str = ""


# ---------------------------------------------------------------------------
# Workload builders (the rows of Table 2, scaled down)
# ---------------------------------------------------------------------------


def lenet_mnist_workload(
    num_workers: int = 5,
    partition_scheme: str = "iid",
    partition_kwargs: Optional[dict] = None,
    num_train: int = 900,
    num_test: int = 300,
    seed: int = 0,
) -> WorkloadConfig:
    """LeNet-5 on (synthetic) MNIST with Adam — the paper's first row of Table 2."""
    full = synthetic_digits(num_train + num_test, seed=seed, name="synthetic-mnist")
    train, test = train_test_split(
        full, test_fraction=num_test / (num_train + num_test), seed=seed
    )
    return WorkloadConfig(
        name="lenet5-mnist",
        model_factory=lambda: lenet5(input_shape=(14, 14, 1), num_classes=10, seed=seed),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam"),
        num_workers=num_workers,
        batch_size=32,
        partition_scheme=partition_scheme,
        partition_kwargs=dict(partition_kwargs or {}),
        seed=seed,
    )


def vgg_mnist_workload(
    num_workers: int = 5,
    partition_scheme: str = "iid",
    partition_kwargs: Optional[dict] = None,
    num_train: int = 900,
    num_test: int = 300,
    seed: int = 0,
) -> WorkloadConfig:
    """VGG16* on (synthetic) MNIST with Adam — the paper's second Table 2 row."""
    full = synthetic_digits(num_train + num_test, seed=seed, name="synthetic-mnist")
    train, test = train_test_split(
        full, test_fraction=num_test / (num_train + num_test), seed=seed
    )
    return WorkloadConfig(
        name="vgg-mini-mnist",
        model_factory=lambda: vgg_mini(input_shape=(14, 14, 1), num_classes=10, seed=seed),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam"),
        num_workers=num_workers,
        batch_size=32,
        partition_scheme=partition_scheme,
        partition_kwargs=dict(partition_kwargs or {}),
        seed=seed,
    )


def densenet_cifar_workload(
    variant: str = "small",
    num_workers: int = 5,
    partition_scheme: str = "iid",
    partition_kwargs: Optional[dict] = None,
    num_train: int = 800,
    num_test: int = 240,
    seed: int = 0,
) -> WorkloadConfig:
    """DenseNet on (synthetic) CIFAR-10 with SGD-Nesterov momentum.

    ``variant="small"`` plays the role of DenseNet121 and ``"large"`` of
    DenseNet201 (more dense blocks, larger ``d``).
    """
    blocks = (2, 2) if variant == "small" else (3, 3)
    full = synthetic_cifar(
        num_train + num_test, image_size=10, noise=0.6, seed=seed, name="synthetic-cifar"
    )
    train, test = train_test_split(
        full, test_fraction=num_test / (num_train + num_test), seed=seed
    )
    return WorkloadConfig(
        name=f"densenet-{variant}-cifar",
        model_factory=lambda: densenet_mini(
            input_shape=(10, 10, 3), num_classes=10, blocks=blocks, seed=seed
        ),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("sgd-nm", learning_rate=0.05),
        num_workers=num_workers,
        batch_size=32,
        partition_scheme=partition_scheme,
        partition_kwargs=dict(partition_kwargs or {}),
        seed=seed,
    )


def transfer_learning_workload(
    num_workers: int = 3,
    num_train: int = 1200,
    num_test: int = 400,
    num_classes: int = 20,
    seed: int = 0,
) -> WorkloadConfig:
    """ConvNeXt-style fine-tuning on (synthetic) CIFAR-100 features with AdamW.

    A frozen :class:`PretrainedFeatureExtractor` plays the ImageNet-pretrained
    backbone; the trainable head is fine-tuned by every strategy (Figure 13).
    """
    raw_full = synthetic_features(
        num_train + num_test, feature_dim=24, num_classes=num_classes,
        class_separation=3.0, seed=seed, name="synthetic-cifar100",
    )
    raw_train, raw_test = train_test_split(
        raw_full, test_fraction=num_test / (num_train + num_test), seed=seed
    )
    extractor = PretrainedFeatureExtractor(input_dim=24, hidden_dims=(48, 32), seed=seed)
    train = extractor.transform_dataset(raw_train)
    test = extractor.transform_dataset(raw_test)
    return WorkloadConfig(
        name="convnext-transfer-cifar100",
        model_factory=lambda: transfer_head(
            feature_dim=extractor.output_dim, num_classes=num_classes, seed=seed
        ),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adamw", learning_rate=0.005),
        num_workers=num_workers,
        batch_size=32,
        partition_scheme="iid",
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Strategy factories used across figures
# ---------------------------------------------------------------------------


#: Sketch geometry used by the registry's SketchFDA configurations.  The paper
#: recommends 5 x 250 for models with millions of parameters; the miniature
#: models here have thousands, so the width is scaled down proportionally to
#: keep the local state small relative to the model dimension (see DESIGN.md).
REGISTRY_SKETCH_DEPTH = 5
REGISTRY_SKETCH_WIDTH = 64


def default_strategies(
    theta: float,
    fedopt: str = "fedadam",
    seed: int = 0,
    sketch_depth: int = REGISTRY_SKETCH_DEPTH,
    sketch_width: int = REGISTRY_SKETCH_WIDTH,
) -> Dict[str, StrategyFactory]:
    """The paper's strategy line-up for one workload at one Θ.

    ``fedopt`` picks the federated baseline matching the local optimizer
    (FedAdam for the Adam workloads, FedAvgM for the SGD-NM workloads).
    """
    factories: Dict[str, StrategyFactory] = {
        "LinearFDA": lambda: FDAStrategy(threshold=theta, variant="linear", seed=seed),
        "SketchFDA": lambda: FDAStrategy(
            threshold=theta,
            variant="sketch",
            seed=seed,
            sketch_depth=sketch_depth,
            sketch_width=sketch_width,
        ),
        "Synchronous": lambda: SynchronousStrategy(),
    }
    if fedopt == "fedadam":
        factories["FedAdam"] = lambda: FedOptStrategy(FedAdam(learning_rate=0.01), local_epochs=1)
    elif fedopt == "fedavgm":
        factories["FedAvgM"] = lambda: FedOptStrategy(
            FedAvgM(learning_rate=0.316, momentum=0.9), local_epochs=1
        )
    else:
        raise ValueError(f"unknown fedopt baseline {fedopt!r}")
    return factories


# ---------------------------------------------------------------------------
# Table 2: summary of experiments
# ---------------------------------------------------------------------------


def table2() -> List[Dict[str, object]]:
    """The reproduction's analogue of Table 2 (one row per learning task)."""
    rows = []
    specs = [
        ("LeNet-5 (mini)", lenet_mnist_workload, dict(), (4.0, 8.0, 16.0), "adam", "FedAdam"),
        ("VGG16* (mini)", vgg_mnist_workload, dict(), (4.0, 8.0, 16.0), "adam", "FedAdam"),
        ("DenseNet121 (mini)", densenet_cifar_workload, dict(variant="small"),
         (2.0, 6.0, 12.0), "sgd-nm", "FedAvgM"),
        ("DenseNet201 (mini)", densenet_cifar_workload, dict(variant="large"),
         (2.0, 6.0, 12.0), "sgd-nm", "FedAvgM"),
        ("ConvNeXt head (transfer)", transfer_learning_workload, dict(),
         (0.5, 1.0, 2.0), "adamw", "—"),
    ]
    for title, builder, kwargs, thetas, optimizer, fedopt in specs:
        workload = builder(**kwargs)
        model = workload.model_factory()
        rows.append(
            {
                "model": title,
                "d": model.num_parameters,
                "dataset": workload.train_dataset.name,
                "theta_grid": list(thetas),
                "batch_size": workload.batch_size,
                "num_workers": workload.num_workers,
                "optimizer": optimizer,
                "algorithms": ["LinearFDA", "SketchFDA", "Synchronous", fedopt],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 3-6: KDE comparisons per workload and heterogeneity setting
# ---------------------------------------------------------------------------


def figure3(quick: bool = True) -> ExperimentSpec:
    """LeNet-5 on MNIST across IID / Non-IID label / Non-IID 60 % (Figure 3)."""
    num_workers = 5
    workloads = {
        "iid": lenet_mnist_workload(num_workers=num_workers, partition_scheme="iid"),
        "noniid-label": lenet_mnist_workload(
            num_workers=num_workers,
            partition_scheme="noniid-label",
            partition_kwargs={"label": 0, "num_holders": 1},
        ),
        "noniid-60": lenet_mnist_workload(
            num_workers=num_workers,
            partition_scheme="noniid-fraction",
            partition_kwargs={"fraction": 0.6},
        ),
    }
    theta = 8.0
    return ExperimentSpec(
        experiment_id="figure3",
        title="LeNet-5 on MNIST: communication vs computation across heterogeneity settings",
        workloads=workloads,
        strategy_factories=default_strategies(theta, fedopt="fedadam"),
        run=TrainingRun(
            accuracy_target=0.9,
            max_steps=240 if quick else 800,
            eval_every_steps=20,
        ),
        fda_thetas=(4.0, 8.0) if quick else (2.0, 4.0, 8.0, 16.0),
        notes="Accuracy target 0.985 in the paper; scaled to the synthetic digits task.",
    )


def figure4(quick: bool = True) -> ExperimentSpec:
    """VGG16* on MNIST, two accuracy targets, three heterogeneity settings (Figure 4)."""
    num_workers = 5
    workloads = {
        "iid": vgg_mnist_workload(num_workers=num_workers, partition_scheme="iid"),
        "noniid-label0": vgg_mnist_workload(
            num_workers=num_workers,
            partition_scheme="noniid-label",
            partition_kwargs={"label": 0, "num_holders": 1},
        ),
        "noniid-label8": vgg_mnist_workload(
            num_workers=num_workers,
            partition_scheme="noniid-label",
            partition_kwargs={"label": 8, "num_holders": 1},
        ),
    }
    theta = 8.0
    return ExperimentSpec(
        experiment_id="figure4",
        title="VGG16* on MNIST: two accuracy targets, diminishing returns",
        workloads=workloads,
        strategy_factories=default_strategies(theta, fedopt="fedadam"),
        run=TrainingRun(
            accuracy_target=0.9,
            max_steps=240 if quick else 900,
            eval_every_steps=20,
        ),
        fda_thetas=(4.0, 8.0) if quick else (4.0, 8.0, 16.0, 32.0),
        notes="The bench also evaluates a second, higher accuracy target for the "
        "diminishing-returns comparison.",
    )


def figure5(quick: bool = True) -> ExperimentSpec:
    """DenseNet121 on CIFAR-10, IID (Figure 5)."""
    workload = densenet_cifar_workload(variant="small", num_workers=4)
    theta = 6.0
    return ExperimentSpec(
        experiment_id="figure5",
        title="DenseNet121 on CIFAR-10 (IID)",
        workloads={"iid": workload},
        strategy_factories=default_strategies(theta, fedopt="fedavgm"),
        run=TrainingRun(
            accuracy_target=0.72,
            max_steps=160 if quick else 600,
            eval_every_steps=20,
        ),
        fda_thetas=(3.0, 6.0) if quick else (2.0, 4.0, 6.0, 12.0),
    )


def figure6(quick: bool = True) -> ExperimentSpec:
    """DenseNet201 on CIFAR-10, IID (Figure 6)."""
    workload = densenet_cifar_workload(variant="large", num_workers=4)
    theta = 6.0
    return ExperimentSpec(
        experiment_id="figure6",
        title="DenseNet201 on CIFAR-10 (IID)",
        workloads={"iid": workload},
        strategy_factories=default_strategies(theta, fedopt="fedavgm"),
        run=TrainingRun(
            accuracy_target=0.72,
            max_steps=160 if quick else 600,
            eval_every_steps=20,
        ),
        fda_thetas=(3.0, 6.0) if quick else (2.0, 4.0, 6.0, 12.0),
    )


def figure7(quick: bool = True) -> ExperimentSpec:
    """Training-accuracy progression and generalization gap (Figure 7)."""
    workload = densenet_cifar_workload(variant="small", num_workers=4)
    theta = 6.0
    return ExperimentSpec(
        experiment_id="figure7",
        title="Training-accuracy progression and generalization gap",
        workloads={"iid": workload},
        strategy_factories=default_strategies(theta, fedopt="fedavgm"),
        run=TrainingRun(
            accuracy_target=0.72,
            max_steps=160 if quick else 500,
            eval_every_steps=20,
            track_train_accuracy=True,
        ),
        fda_thetas=(theta,),
    )


# ---------------------------------------------------------------------------
# Figures 8-11: varying K and Θ
# ---------------------------------------------------------------------------


def figure8(quick: bool = True) -> ExperimentSpec:
    """LeNet-5 on MNIST: varying the number of workers and Θ (Figure 8)."""
    workload = lenet_mnist_workload(num_workers=4)
    theta = 8.0
    return ExperimentSpec(
        experiment_id="figure8",
        title="LeNet-5 on MNIST: varying K and Theta",
        workloads={"iid": workload},
        strategy_factories=default_strategies(theta, fedopt="fedadam"),
        run=TrainingRun(
            accuracy_target=0.88,
            max_steps=200 if quick else 600,
            eval_every_steps=20,
        ),
        fda_thetas=(2.0, 8.0, 32.0) if quick else (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        worker_counts=(3, 5) if quick else (3, 5, 8, 12),
    )


def figure9(quick: bool = True) -> ExperimentSpec:
    """VGG16* on MNIST: varying the number of workers and Θ (Figure 9)."""
    workload = vgg_mnist_workload(num_workers=4)
    theta = 8.0
    return ExperimentSpec(
        experiment_id="figure9",
        title="VGG16* on MNIST: varying K and Theta",
        workloads={"iid": workload},
        strategy_factories=default_strategies(theta, fedopt="fedadam"),
        run=TrainingRun(
            accuracy_target=0.88,
            max_steps=200 if quick else 600,
            eval_every_steps=20,
        ),
        fda_thetas=(2.0, 8.0, 32.0) if quick else (2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        worker_counts=(3, 5) if quick else (3, 5, 8, 12),
    )


def figure10(quick: bool = True) -> ExperimentSpec:
    """DenseNet121 on CIFAR-10: varying the number of workers and Θ (Figure 10)."""
    workload = densenet_cifar_workload(variant="small", num_workers=4)
    theta = 6.0
    return ExperimentSpec(
        experiment_id="figure10",
        title="DenseNet121 on CIFAR-10: varying K and Theta",
        workloads={"iid": workload},
        strategy_factories=default_strategies(theta, fedopt="fedavgm"),
        run=TrainingRun(
            accuracy_target=0.68,
            max_steps=140 if quick else 500,
            eval_every_steps=20,
        ),
        fda_thetas=(2.0, 6.0, 18.0) if quick else (2.0, 4.0, 6.0, 9.0, 12.0, 18.0),
        worker_counts=(3, 5) if quick else (3, 5, 8),
    )


def figure11(quick: bool = True) -> ExperimentSpec:
    """DenseNet201 on CIFAR-10: varying the number of workers and Θ (Figure 11)."""
    workload = densenet_cifar_workload(variant="large", num_workers=4)
    theta = 6.0
    return ExperimentSpec(
        experiment_id="figure11",
        title="DenseNet201 on CIFAR-10: varying K and Theta",
        workloads={"iid": workload},
        strategy_factories=default_strategies(theta, fedopt="fedavgm"),
        run=TrainingRun(
            accuracy_target=0.68,
            max_steps=140 if quick else 500,
            eval_every_steps=20,
        ),
        fda_thetas=(2.0, 6.0, 18.0) if quick else (2.0, 4.0, 6.0, 9.0, 12.0, 18.0),
        worker_counts=(3, 5) if quick else (3, 5, 8),
    )


# ---------------------------------------------------------------------------
# Figure 12: the Θ guideline, and Figure 13: transfer learning
# ---------------------------------------------------------------------------


def figure12(quick: bool = True) -> Dict[str, object]:
    """Workloads of increasing model dimension for the Θ-vs-d fit (Figure 12)."""
    workloads = [
        ("densenet", densenet_cifar_workload(variant="small", num_workers=4)),
        ("lenet", lenet_mnist_workload(num_workers=4)),
        ("vgg", vgg_mnist_workload(num_workers=4)),
    ]
    theta_grid = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0) if not quick else (2.0, 8.0, 32.0)
    return {
        "experiment_id": "figure12",
        "title": "Empirical estimation of the variance threshold (Theta vs d)",
        "workloads": workloads,
        "theta_grid": theta_grid,
        "run": TrainingRun(
            accuracy_target=0.85,
            max_steps=160 if quick else 500,
            eval_every_steps=20,
        ),
        "paper_slopes": {"fl": 4.91e-5, "balanced": 3.89e-5, "hpc": 2.74e-5},
    }


def figure13(quick: bool = True) -> ExperimentSpec:
    """ConvNeXt fine-tuning on CIFAR-100 (transfer learning), Figure 13."""
    workloads = {
        "K=3": transfer_learning_workload(num_workers=3),
        "K=5": transfer_learning_workload(num_workers=5),
    }
    theta = 1.0
    return ExperimentSpec(
        experiment_id="figure13",
        title="Transfer learning: ConvNeXt head fine-tuning on CIFAR-100 features",
        workloads=workloads,
        strategy_factories={
            "LinearFDA": lambda: FDAStrategy(threshold=theta, variant="linear"),
            "SketchFDA": lambda: FDAStrategy(
                threshold=theta,
                variant="sketch",
                sketch_depth=REGISTRY_SKETCH_DEPTH,
                sketch_width=REGISTRY_SKETCH_WIDTH,
            ),
            "Synchronous": lambda: SynchronousStrategy(),
        },
        run=TrainingRun(
            accuracy_target=0.55,
            max_steps=320 if quick else 900,
            eval_every_steps=40,
        ),
        fda_thetas=(0.25, 1.0, 4.0) if quick else (0.25, 0.5, 1.0, 2.0, 4.0),
    )


# ---------------------------------------------------------------------------
# The fabric grid: topology × network (the wall-clock discussion of Section 4)
# ---------------------------------------------------------------------------


def fabric_sweep(quick: bool = True) -> ExperimentSpec:
    """Topology × network sweep: where do FDA's byte savings buy wall-clock?

    One workload, the FDA-vs-Synchronous pair, and a grid over every fabric
    topology crossed with the paper's three interconnects.  Per cell the
    harness reports the model-sync / FDA-state byte split and the virtual
    wall-clock per round — the reproduction's answer to the paper's
    observation that communication savings matter on the 0.5 Gbps federated
    channel and vanish on InfiniBand.
    """
    workload = lenet_mnist_workload(num_workers=4 if quick else 8)
    theta = 8.0
    return ExperimentSpec(
        experiment_id="fabric",
        title="Communication fabric: topology x network wall-clock comparison",
        workloads={"iid": workload},
        strategy_factories={
            "LinearFDA": lambda: FDAStrategy(threshold=theta, variant="linear"),
            "Synchronous": lambda: SynchronousStrategy(),
        },
        run=TrainingRun(
            accuracy_target=0.88,
            max_steps=80 if quick else 300,
            eval_every_steps=20,
        ),
        fda_thetas=(theta,),
        topologies=("star", "ring") if quick else ("star", "ring", "hierarchical", "gossip"),
        networks=("fl", "hpc") if quick else ("fl", "hpc", "balanced"),
        notes="Quick mode trims the grid to 2x2; full mode runs all four "
        "topologies against all three networks.",
    )


# ---------------------------------------------------------------------------
# The compression grid: what-is-sent × when-to-send (Section 2 orthogonality)
# ---------------------------------------------------------------------------


def compression_sweep(quick: bool = True) -> ExperimentSpec:
    """Compression × strategy sweep: how much traffic does each kernel remove?

    One workload, the FDA-vs-Synchronous pair, and a grid over payload
    compression settings (exact, 8-bit quantization, top-k with and without
    error feedback).  Per cell the harness reports the model-sync byte ledger
    and the reached accuracy — the reproduction's answer to the paper's
    Section-2 claim that compression composes multiplicatively with FDA's
    dynamic synchronization schedule.
    """
    from repro.compression import CompressionConfig

    workload = lenet_mnist_workload(num_workers=4 if quick else 8)
    theta = 8.0
    grid = (
        "none",
        "quantization",
        CompressionConfig("topk", ratio=0.1, error_feedback=True),
    )
    if not quick:
        grid = grid + (
            CompressionConfig("topk", ratio=0.1),
            CompressionConfig("randomk", ratio=0.1, error_feedback=True),
            "signsgd",
            CompressionConfig("layerwise-topk", ratio=0.1, error_feedback=True),
        )
    return ExperimentSpec(
        experiment_id="compression",
        title="Payload compression x dynamic averaging: bytes per reached accuracy",
        workloads={"iid": workload},
        strategy_factories={
            "LinearFDA": lambda: FDAStrategy(threshold=theta, variant="linear"),
            "Synchronous": lambda: SynchronousStrategy(),
        },
        run=TrainingRun(
            accuracy_target=0.88,
            max_steps=80 if quick else 300,
            eval_every_steps=20,
        ),
        fda_thetas=(theta,),
        compressions=grid,
        notes="Quick mode runs exact vs quantization vs error-feedback top-k; "
        "full mode adds plain top-k, random-k, sign+norm, and layer-wise top-k.",
    )


ALL_FIGURES = {
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure13": figure13,
}
