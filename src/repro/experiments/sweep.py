"""Parameter sweeps over Θ, K, the communication fabric, and compression.

The paper studies how communication and computation respond to the variance
threshold Θ (at fixed K) and to the number of workers K (at fixed Θ); the
fabric refactor adds the topology × network axis the wall-clock discussion
needs, and the compression subsystem adds the *what-is-sent* axis (Section 2:
orthogonal to FDA's *when-to-send*).  These helpers run those sweeps for any
strategy factory and return one point per grid value, which the benchmarks
then check for the monotone trends the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.executor import SweepCell, SweepExecutor, execute_cells
from repro.experiments.run import RunResult, TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster
from repro.strategies.base import Strategy
from repro.strategies.fda_strategy import FDAStrategy

StrategyFactory = Callable[[], Strategy]

#: Default grids for :func:`sweep_fabric`.
DEFAULT_TOPOLOGIES = ("star", "ring", "hierarchical", "gossip")
DEFAULT_NETWORKS = ("fl", "hpc", "balanced")


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: the swept value plus the run result."""

    parameter: str
    value: float
    result: RunResult

    @property
    def communication_bytes(self) -> int:
        return self.result.communication_bytes

    @property
    def parallel_steps(self) -> int:
        return self.result.parallel_steps

    @property
    def synchronizations(self) -> int:
        return self.result.synchronizations


def _run_one(
    workload: WorkloadConfig,
    strategy: Strategy,
    run: TrainingRun,
) -> RunResult:
    """Eagerly execute one cell, rebuilding all setup from scratch.

    This is the historical pre-executor path, kept as the uncached reference
    that the sweep benchmarks measure the executor's memoization against.
    Sweeps themselves now route through :class:`SweepExecutor`.
    """
    cluster, test_dataset = build_cluster(workload)
    return run.execute(
        strategy,
        cluster,
        test_dataset,
        train_dataset=workload.train_dataset,
        workload_name=workload.name,
    )


def sweep_theta(
    workload: WorkloadConfig,
    thetas: Sequence[float],
    run: TrainingRun,
    variant: str = "linear",
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> List[SweepPoint]:
    """Run an FDA variant across a grid of variance thresholds Θ (fixed K)."""
    if not thetas:
        raise ConfigurationError("thetas must contain at least one value")
    cells = [
        SweepCell(
            workload=workload,
            strategy_factory=lambda theta=theta: FDAStrategy(
                threshold=float(theta), variant=variant, seed=seed
            ),
            run=run,
            label=f"theta={float(theta)}",
            tags={"parameter": "theta", "value": float(theta)},
        )
        for theta in thetas
    ]
    results = execute_cells(cells, executor)
    return [
        SweepPoint(parameter="theta", value=float(theta), result=result)
        for theta, result in zip(thetas, results)
    ]


def sweep_workers(
    workload: WorkloadConfig,
    worker_counts: Sequence[int],
    run: TrainingRun,
    strategy_factory: StrategyFactory,
    executor: Optional[SweepExecutor] = None,
) -> List[SweepPoint]:
    """Run one strategy across a grid of worker counts K (fixed Θ / schedule)."""
    if not worker_counts:
        raise ConfigurationError("worker_counts must contain at least one value")
    cells = []
    for num_workers in worker_counts:
        if num_workers <= 0:
            raise ConfigurationError(f"worker counts must be positive, got {num_workers}")
        cells.append(
            SweepCell(
                workload=workload.with_workers(int(num_workers)),
                strategy_factory=strategy_factory,
                run=run,
                label=f"num_workers={int(num_workers)}",
                tags={"parameter": "num_workers", "value": float(num_workers)},
            )
        )
    results = execute_cells(cells, executor)
    return [
        SweepPoint(parameter="num_workers", value=float(num_workers), result=result)
        for num_workers, result in zip(worker_counts, results)
    ]


@dataclass(frozen=True)
class FabricSweepPoint:
    """One cell of a topology × network grid: the fabric plus the run result."""

    topology: str
    network: str
    result: RunResult

    @property
    def bytes_by_category(self) -> Dict[str, int]:
        """Per-category traffic: model-sync vs FDA-state bytes."""
        return {
            "model-sync": self.result.model_bytes,
            "fda-state": self.result.state_bytes,
        }

    @property
    def virtual_seconds(self) -> float:
        return self.result.virtual_seconds

    @property
    def seconds_per_round(self) -> float:
        """Virtual wall-clock per in-parallel learning step."""
        return self.result.seconds_per_round


def sweep_fabric(
    workload: WorkloadConfig,
    run: TrainingRun,
    strategy_factory: StrategyFactory,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    networks: Sequence[str] = DEFAULT_NETWORKS,
    executor: Optional[SweepExecutor] = None,
) -> List[FabricSweepPoint]:
    """Run one strategy across a topology × network grid on one workload.

    Every cell rebuilds the cluster on the requested fabric and reports the
    per-category byte split plus the virtual wall-clock series, which is how
    a single experiment spec answers the paper's "does the saving translate
    into time?" question for an arbitrary interconnect.
    """
    if not topologies:
        raise ConfigurationError("topologies must contain at least one name")
    if not networks:
        raise ConfigurationError("networks must contain at least one name")
    grid = [(str(topology), str(network)) for topology in topologies for network in networks]
    cells = [
        SweepCell(
            workload=workload.with_fabric(topology=topology, network=network),
            strategy_factory=strategy_factory,
            run=run,
            label=f"fabric={topology}/{network}",
            tags={"topology": topology, "network": network},
        )
        for topology, network in grid
    ]
    results = execute_cells(cells, executor)
    return [
        FabricSweepPoint(topology=topology, network=network, result=result)
        for (topology, network), result in zip(grid, results)
    ]


@dataclass(frozen=True)
class CompressionSweepPoint:
    """One cell of a compression sweep: the compression label plus the result."""

    compression: str
    result: RunResult

    @property
    def communication_bytes(self) -> int:
        return self.result.communication_bytes

    @property
    def model_bytes(self) -> int:
        """Bytes of (compressed) model-sync traffic at this cell."""
        return self.result.model_bytes

    @property
    def parallel_steps(self) -> int:
        return self.result.parallel_steps


def sweep_compression(
    workload: WorkloadConfig,
    run: TrainingRun,
    strategy_factory: StrategyFactory,
    compressions: Sequence = ("none", "quantization", "topk"),
    executor: Optional[SweepExecutor] = None,
) -> List[CompressionSweepPoint]:
    """Run one strategy across a grid of compression settings on one workload.

    Every cell rebuilds the cluster with the requested compression spec (a
    kernel name, a :class:`~repro.compression.config.CompressionConfig`, or
    ``"none"``/``None``), so the per-cell byte ledgers answer how much of a
    strategy's traffic each kernel removes — multiplicatively with FDA's
    dynamic sync schedule.
    """
    if not compressions:
        raise ConfigurationError("compressions must contain at least one spec")
    cells = [
        SweepCell(
            workload=workload.with_compression(None if spec == "none" else spec),
            strategy_factory=strategy_factory,
            run=run,
            label=f"compression={spec}",
            tags={"compression": str(spec)},
        )
        for spec in compressions
    ]
    results = execute_cells(cells, executor)
    return [
        CompressionSweepPoint(compression=result.compression, result=result)
        for result in results
    ]


def run_fabric_spec(
    spec, executor: Optional[SweepExecutor] = None
) -> Dict[str, List[FabricSweepPoint]]:
    """Execute an :class:`~repro.experiments.registry.ExperimentSpec`'s fabric grid.

    Runs every strategy of the spec over every workload × topology × network
    cell (``spec.topologies`` / ``spec.networks`` must be non-empty) and
    returns the :class:`FabricSweepPoint` lists keyed by strategy name — the
    single-spec entry point behind ``python -m repro.cli fabric --spec``.
    """
    if not getattr(spec, "topologies", None) or not getattr(spec, "networks", None):
        raise ConfigurationError(
            f"spec {getattr(spec, 'experiment_id', '?')!r} declares no fabric grid "
            "(topologies and networks must both be non-empty)"
        )
    results: Dict[str, List[FabricSweepPoint]] = {}
    for strategy_name, factory in spec.strategy_factories.items():
        points: List[FabricSweepPoint] = []
        for workload in spec.workloads.values():
            points.extend(
                sweep_fabric(
                    workload,
                    spec.run,
                    factory,
                    topologies=spec.topologies,
                    networks=spec.networks,
                    executor=executor,
                )
            )
        results[strategy_name] = points
    return results


def run_compression_spec(
    spec, executor: Optional[SweepExecutor] = None
) -> Dict[str, List[CompressionSweepPoint]]:
    """Execute an :class:`~repro.experiments.registry.ExperimentSpec`'s compression grid.

    Runs every strategy of the spec over every workload × compression cell
    (``spec.compressions`` must be non-empty) and returns the
    :class:`CompressionSweepPoint` lists keyed by strategy name — the
    single-spec entry point behind ``python -m repro.cli compression``.
    """
    if not getattr(spec, "compressions", None):
        raise ConfigurationError(
            f"spec {getattr(spec, 'experiment_id', '?')!r} declares no compression grid "
            "(compressions must be non-empty)"
        )
    results: Dict[str, List[CompressionSweepPoint]] = {}
    for strategy_name, factory in spec.strategy_factories.items():
        points: List[CompressionSweepPoint] = []
        for workload in spec.workloads.values():
            points.extend(
                sweep_compression(
                    workload,
                    spec.run,
                    factory,
                    compressions=spec.compressions,
                    executor=executor,
                )
            )
        results[strategy_name] = points
    return results


def sweep_strategies(
    workload: WorkloadConfig,
    strategy_factories: Sequence[StrategyFactory],
    run: TrainingRun,
    executor: Optional[SweepExecutor] = None,
) -> List[RunResult]:
    """Run several strategies on identical copies of one workload."""
    if not strategy_factories:
        raise ConfigurationError("strategy_factories must contain at least one factory")
    cells = [
        SweepCell(workload=workload, strategy_factory=factory, run=run)
        for factory in strategy_factories
    ]
    return execute_cells(cells, executor)
