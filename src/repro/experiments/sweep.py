"""Parameter sweeps over Θ and K (Figures 8-11 and 13).

The paper studies how communication and computation respond to the variance
threshold Θ (at fixed K) and to the number of workers K (at fixed Θ).  These
helpers run those one-dimensional sweeps for any strategy factory and return
one :class:`SweepPoint` per grid value, which the benchmarks then check for
the monotone trends the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.run import RunResult, TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster
from repro.strategies.base import Strategy
from repro.strategies.fda_strategy import FDAStrategy

StrategyFactory = Callable[[], Strategy]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: the swept value plus the run result."""

    parameter: str
    value: float
    result: RunResult

    @property
    def communication_bytes(self) -> int:
        return self.result.communication_bytes

    @property
    def parallel_steps(self) -> int:
        return self.result.parallel_steps

    @property
    def synchronizations(self) -> int:
        return self.result.synchronizations


def _run_one(
    workload: WorkloadConfig,
    strategy: Strategy,
    run: TrainingRun,
) -> RunResult:
    cluster, test_dataset = build_cluster(workload)
    return run.execute(
        strategy,
        cluster,
        test_dataset,
        train_dataset=workload.train_dataset,
        workload_name=workload.name,
    )


def sweep_theta(
    workload: WorkloadConfig,
    thetas: Sequence[float],
    run: TrainingRun,
    variant: str = "linear",
    seed: int = 0,
) -> List[SweepPoint]:
    """Run an FDA variant across a grid of variance thresholds Θ (fixed K)."""
    if not thetas:
        raise ConfigurationError("thetas must contain at least one value")
    points = []
    for theta in thetas:
        strategy = FDAStrategy(threshold=float(theta), variant=variant, seed=seed)
        result = _run_one(workload, strategy, run)
        points.append(SweepPoint(parameter="theta", value=float(theta), result=result))
    return points


def sweep_workers(
    workload: WorkloadConfig,
    worker_counts: Sequence[int],
    run: TrainingRun,
    strategy_factory: StrategyFactory,
) -> List[SweepPoint]:
    """Run one strategy across a grid of worker counts K (fixed Θ / schedule)."""
    if not worker_counts:
        raise ConfigurationError("worker_counts must contain at least one value")
    points = []
    for num_workers in worker_counts:
        if num_workers <= 0:
            raise ConfigurationError(f"worker counts must be positive, got {num_workers}")
        scaled = workload.with_workers(int(num_workers))
        strategy = strategy_factory()
        result = _run_one(scaled, strategy, run)
        points.append(SweepPoint(parameter="num_workers", value=float(num_workers), result=result))
    return points


def sweep_strategies(
    workload: WorkloadConfig,
    strategy_factories: Sequence[StrategyFactory],
    run: TrainingRun,
) -> List[RunResult]:
    """Run several strategies on identical copies of one workload."""
    if not strategy_factories:
        raise ConfigurationError("strategy_factories must contain at least one factory")
    results = []
    for factory in strategy_factories:
        results.append(_run_one(workload, factory(), run))
    return results
