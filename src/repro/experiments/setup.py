"""Workload configuration and cluster construction.

A :class:`WorkloadConfig` bundles everything Table 2 of the paper specifies
per experiment: the model (a factory), the dataset pair, the local optimizer,
the batch size ``b``, the number of workers ``K``, and the data-distribution
scheme.  :func:`build_cluster` turns a workload into a ready-to-train
:class:`~repro.distributed.cluster.SimulatedCluster` with identically
initialized worker models and per-worker data shards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.backend import resolve_dtype
from repro.compression import CompressionConfig, get_compression
from repro.core.timeline import StragglerProfile, Timeline
from repro.data.datasets import Dataset
from repro.data.partition import partition_dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.comm import CommunicationCostModel
from repro.distributed.engine import EXECUTION_MODES
from repro.distributed.network import NetworkModel
from repro.distributed.topology import Topology
from repro.distributed.worker import Worker
from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.optim.adam import Adam, AdamW
from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.population.config import PopulationConfig
from repro.serving.config import ServingConfig
from repro.utils.rng import RngFactory

ModelFactory = Callable[[], Sequential]
OptimizerFactory = Callable[[], Optimizer]

#: Sentinel distinguishing "argument not given" from an explicit ``None``, so
#: the ``with_*`` copy helpers never silently reset fields they weren't asked
#: to change.
_KEEP = object()


def make_optimizer(name: str, **kwargs) -> OptimizerFactory:
    """Return a factory for one of the paper's local optimizers.

    ``name`` is ``"adam"`` (LeNet-5 / VGG16* experiments), ``"sgd-nm"`` (the
    DenseNet experiments: SGD with Nesterov momentum 0.9), ``"sgd"`` or
    ``"adamw"`` (the ConvNeXt fine-tuning experiments).
    """
    name = name.lower()
    if name == "adam":
        return lambda: Adam(**{"learning_rate": 0.001, **kwargs})
    if name == "adamw":
        return lambda: AdamW(**{"learning_rate": 0.001, "weight_decay": 0.01, **kwargs})
    if name == "sgd":
        return lambda: SGD(**{"learning_rate": 0.05, **kwargs})
    if name in ("sgd-nm", "sgd_nesterov", "sgdnm"):
        defaults = {"learning_rate": 0.05, "momentum": 0.9, "nesterov": True}
        return lambda: SGD(**{**defaults, **kwargs})
    raise ConfigurationError(
        f"unknown optimizer {name!r}; expected 'adam', 'adamw', 'sgd' or 'sgd-nm'"
    )


@dataclass
class WorkloadConfig:
    """Everything needed to build one training workload.

    ``model_factory`` must return a *built* model; it is called once per
    worker (plus once for evaluation) with identical seeds so all replicas
    start from the same initialization, as Algorithm 1 requires.
    """

    name: str
    model_factory: ModelFactory
    train_dataset: Dataset
    test_dataset: Dataset
    optimizer_factory: OptimizerFactory
    num_workers: int = 5
    batch_size: int = 32
    partition_scheme: str = "iid"
    partition_kwargs: Dict[str, object] = field(default_factory=dict)
    loss: Optional[Loss] = None
    #: Communication pricing.  ``None`` (the default) lets the cluster derive
    #: an itemsize-accurate model from the compute dtype (8 B/element at
    #: float64, 4 B/element at float32); pass an explicit
    #: :class:`~repro.distributed.comm.CommunicationCostModel` (e.g.
    #: ``NAIVE_COST_MODEL`` for the paper's flat 4-byte accounting) to pin it.
    cost_model: Optional[CommunicationCostModel] = None
    #: Fabric configuration: a topology name (``"star"``, ``"ring"``,
    #: ``"hierarchical"``, ``"gossip"``) or instance, and a network-model name
    #: (``"fl"``, ``"hpc"``, ``"balanced"``, ``"none"``) or instance.
    topology: Union[str, Topology, None] = None
    network: Union[str, NetworkModel, None] = None
    #: Timeline configuration: per-worker compute heterogeneity and optional
    #: per-round dropout.  ``None`` keeps the default unperturbed clock.
    compute_profile: Optional[StragglerProfile] = None
    dropout_rate: float = 0.0
    #: Execution engine for the built cluster: ``"sequential"`` (per-worker
    #: steps, the default) or ``"batched"`` (one vectorized pass advancing all
    #: K workers at once; see :mod:`repro.distributed.engine`).
    execution: str = "sequential"
    #: Collective-level payload compression for the built cluster: a kernel
    #: name (``"topk"``, ``"quantization"``, ...), a
    #: :class:`~repro.compression.config.CompressionConfig`, or ``None`` for
    #: exact collectives (the default).  Applies uniformly to every strategy's
    #: sync payloads; see :mod:`repro.compression`.
    compression: Union[str, CompressionConfig, None] = None
    #: Compute dtype of the built cluster's parameter plane: ``"float64"``
    #: (the bit-exact reference, default) or ``"float32"`` (the fast mode;
    #: see :mod:`repro.backend`).
    dtype: str = "float64"
    #: Fault injection for the built cluster: a
    #: :class:`~repro.faults.plan.FaultPlan` (worker churn, lossy links,
    #: straggler spikes, payload corruption) or ``None``.  A null plan (all
    #: rates zero) installs nothing — the built cluster is bit-identical to
    #: one with no plan at all.
    faults: Optional["FaultPlan"] = None
    #: Population plane: a :class:`~repro.population.config.PopulationConfig`
    #: registers ``num_clients`` logical clients multiplexed onto
    #: ``cohort_size`` physical worker slots (``num_workers`` must equal the
    #: cohort size).  ``None`` (the default) trains the materialized cluster
    #: directly — bit-identical to the pre-population behaviour.
    population: Optional[PopulationConfig] = None
    #: Serving plane: a :class:`~repro.serving.config.ServingConfig` drives
    #: the workload as a served system — open-loop client-update arrivals,
    #: a bounded coordinator ingress queue, staleness-aware aggregation —
    #: instead of the closed-loop trainer.  ``None`` (the default) leaves
    #: training untouched.
    serving: Optional[ServingConfig] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {self.num_workers}")
        if self.batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ConfigurationError(
                f"dropout_rate must lie in [0, 1), got {self.dropout_rate}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ConfigurationError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )
        # Normalize eagerly so configuration errors (unknown kernel names,
        # out-of-range knobs) surface where the workload is defined, not at
        # cluster construction deep inside a sweep.
        self.compression = get_compression(self.compression)
        self.dtype = resolve_dtype(self.dtype).name
        if self.population is not None and self.num_workers != self.population.cohort_size:
            raise ConfigurationError(
                f"population workloads need num_workers == cohort_size "
                f"({self.population.cohort_size}), got num_workers={self.num_workers}; "
                f"use with_population() to keep them in sync"
            )

    def with_workers(self, num_workers: int) -> "WorkloadConfig":
        """A copy of this workload with a different worker count (for K sweeps)."""
        return replace(self, num_workers=num_workers)

    def with_partition(self, scheme: str, **kwargs) -> "WorkloadConfig":
        """A copy of this workload with a different data-distribution scheme."""
        return replace(self, partition_scheme=scheme, partition_kwargs=dict(kwargs))

    def with_seed(self, seed: int) -> "WorkloadConfig":
        """A copy of this workload with a different random seed."""
        return replace(self, seed=seed)

    def with_fabric(self, topology=_KEEP, network=_KEEP) -> "WorkloadConfig":
        """A copy of this workload on a different fabric (topology × network).

        Only the arguments actually passed change; the other fabric axis keeps
        its current value (pass ``None`` explicitly to reset one to default).
        """
        changes = {}
        if topology is not _KEEP:
            changes["topology"] = topology
        if network is not _KEEP:
            changes["network"] = network
        return replace(self, **changes)

    def with_timeline(self, compute_profile=_KEEP, dropout_rate=_KEEP) -> "WorkloadConfig":
        """A copy of this workload with different timeline perturbations.

        Only the arguments actually passed change — enabling dropout does not
        discard a configured compute profile, and vice versa.
        """
        changes = {}
        if compute_profile is not _KEEP:
            changes["compute_profile"] = compute_profile
        if dropout_rate is not _KEEP:
            changes["dropout_rate"] = dropout_rate
        return replace(self, **changes)

    def with_execution(self, execution: str) -> "WorkloadConfig":
        """A copy of this workload on a different execution engine.

        ``execution`` is ``"sequential"`` or ``"batched"``; used by the CLI's
        ``compare --execution`` flag and the engine A/B benchmarks.
        """
        return replace(self, execution=execution)

    def with_compression(self, compression) -> "WorkloadConfig":
        """A copy of this workload with different payload compression.

        ``compression`` is a kernel name, a
        :class:`~repro.compression.config.CompressionConfig`, or ``None`` to
        return to exact collectives; used by the CLI's ``compare
        --compressor``/``--compression-ratio`` flags and the compression
        sweeps.
        """
        return replace(self, compression=compression)

    def with_dtype(self, dtype) -> "WorkloadConfig":
        """A copy of this workload on a different compute dtype.

        ``dtype`` is ``"float32"``, ``"float64"``, or anything
        :func:`repro.backend.resolve_dtype` accepts; used by the CLI's
        ``compare --dtype`` flag and the dtype benchmarks.
        """
        return replace(self, dtype=resolve_dtype(dtype).name)

    def with_faults(self, faults: Optional["FaultPlan"]) -> "WorkloadConfig":
        """A copy of this workload under a different fault plan.

        ``faults`` is a :class:`~repro.faults.plan.FaultPlan` or ``None`` to
        return to the fault-free plane; used by the CLI's ``compare
        --crash-rate``/``--loss-rate`` flags and the ``faults`` degradation
        grid.
        """
        return replace(self, faults=faults)

    def with_population(self, population: Optional[PopulationConfig]) -> "WorkloadConfig":
        """A copy of this workload over a registered client population.

        ``population`` is a :class:`~repro.population.config.PopulationConfig`
        (the worker count snaps to its cohort size — the cluster's slots
        become the cohort window) or ``None`` to return to the materialized
        cluster; used by the CLI's ``compare --population``/``--cohort-size``
        flags and the population scaling bench.
        """
        if population is None:
            return replace(self, population=None)
        return replace(self, population=population, num_workers=population.cohort_size)

    def with_serving(self, serving: Optional[ServingConfig]) -> "WorkloadConfig":
        """A copy of this workload driven as a served system.

        ``serving`` is a :class:`~repro.serving.config.ServingConfig` (the
        open-loop arrival/queue/staleness knobs) or ``None`` to return to the
        closed-loop trainer; used by the CLI's ``serve`` command and the
        serving benchmark's run table.
        """
        return replace(self, serving=serving)


# ---------------------------------------------------------------------------
# Shared-setup memoization
# ---------------------------------------------------------------------------


class _ModelPool:
    """K reusable model skeletons plus their pristine initial state.

    Building a model runs every layer's initializer; on small-cell grids that
    per-cell, per-worker rebuild dominates setup time.  The pool builds the K
    skeletons once and thereafter *copy-on-binds*: each :meth:`bind` restores
    the pristine initial parameter/buffer vectors (flat array copies), zeroes
    the gradients, and rewinds every layer's private RNG stream, which is
    bit-identical to a fresh factory build (factories seed deterministically,
    so all builds from one factory are equal by construction).

    Only one cluster built from a pool may be *live* at a time: binding for
    the next cell overwrites the skeletons the previous cell's cluster holds.
    The sweep executor runs cells strictly sequentially per process, which
    satisfies this by construction.
    """

    def __init__(self, factory: ModelFactory, num_workers: int) -> None:
        from repro.experiments.cache import model_digest

        self.factory = factory  # strong ref pins id(factory) for the cache key
        self.models = [factory() for _ in range(num_workers)]
        template = self.models[0]
        self.dtype = template.dtype
        self.init_params = template.get_parameters()
        self.init_buffers = template.get_buffers()
        #: Content digest of the pristine model, computed once per pool.
        self.digest = model_digest(template)
        # Per-model snapshot of every layer's private RNG (Dropout streams):
        # bind() rewinds them so mask sequences replay exactly.
        self._rng_states = [
            {
                index: layer._rng.bit_generator.state
                for index, layer in enumerate(model.layers)
                if hasattr(layer, "_rng")
            }
            for model in self.models
        ]

    def bind(self) -> List[Sequential]:
        """Reset every skeleton to its pristine initial state and return them."""
        for model, rng_states in zip(self.models, self._rng_states):
            # Restore the build dtype first: a previous float32 cell converted
            # the plane in place, and writing float64 initials through a
            # float32 plane would round them.
            if model.dtype != self.dtype:
                model.to_dtype(self.dtype)
            model.set_parameters(self.init_params)
            model.set_buffers(self.init_buffers)
            model.gradients_view()[...] = 0.0
            for index, state in rng_states.items():
                layer = model.layers[index]
                layer._rng = np.random.default_rng()
                layer._rng.bit_generator.state = state
        return self.models


class SetupCache:
    """Memoizes the expensive, reusable pieces of :func:`build_cluster`.

    Three levels, each keyed by content (or by a pinned factory object):

    * **dataset digests** — SHA-256 content hashes, memoized per dataset
      object (datasets are immutable by convention);
    * **partitions** — the per-worker shards for one (dataset content, K,
      scheme, kwargs, seed) combination, shared read-only across cells;
    * **model pools** — K pre-built skeletons per (factory, K), rebound to
      their pristine initial state for every cell (see :class:`_ModelPool`).

    One instance serves one executor (or one process of a parallel sweep);
    everything it returns is deterministic, so memoized and eager builds
    produce bit-identical training trajectories.
    """

    def __init__(self) -> None:
        self._dataset_digests: Dict[int, Tuple[Dataset, str]] = {}
        self._partitions: Dict[Tuple, List[Dataset]] = {}
        self._pools: Dict[Tuple[int, int], Optional[_ModelPool]] = {}
        self._model_digests: Dict[int, Tuple[ModelFactory, object]] = {}
        self.partition_hits = 0
        self.partition_misses = 0
        self.model_hits = 0
        self.model_misses = 0

    def dataset_digest(self, dataset: Dataset) -> str:
        from repro.experiments.cache import dataset_digest

        entry = self._dataset_digests.get(id(dataset))
        if entry is not None and entry[0] is dataset:
            return entry[1]
        digest = dataset_digest(dataset)
        self._dataset_digests[id(dataset)] = (dataset, digest)
        return digest

    def _partition_key(self, config: WorkloadConfig) -> Tuple:
        kwargs = json.dumps(config.partition_kwargs, sort_keys=True, default=str)
        return (
            self.dataset_digest(config.train_dataset),
            int(config.num_workers),
            str(config.partition_scheme),
            kwargs,
            int(config.seed),
        )

    def partitions(self, config: WorkloadConfig) -> List[Dataset]:
        """The workload's per-worker shards (shared, read-only)."""
        key = self._partition_key(config)
        shards = self._partitions.get(key)
        if shards is not None:
            self.partition_hits += 1
            return shards
        self.partition_misses += 1
        shards = partition_dataset(
            config.train_dataset,
            config.num_workers,
            scheme=config.partition_scheme,
            seed=RngFactory(config.seed).named("partition"),
            **config.partition_kwargs,
        )
        self._partitions[key] = shards
        return shards

    def _pool(self, config: WorkloadConfig) -> Optional[_ModelPool]:
        # Pools are sized and keyed by *physical slots*, not the logical
        # worker/client count: a population cell's cluster holds cohort_size
        # slots regardless of num_clients, so two cells with different
        # populations but the same cohort share one pool, and a cell that
        # changes cohort size never rebinds a wrong-sized skeleton list.
        slots = _worker_slots(config)
        key = (id(config.model_factory), slots)
        if key in self._pools:
            entry = self._pools[key]
            if entry is None or entry.factory is config.model_factory:
                self.model_hits += 1
                return entry
        self.model_misses += 1
        probe = config.model_factory()
        if not getattr(probe, "built", False):
            # An unbuilt factory relies on lazy first-forward building; the
            # pool cannot snapshot its initial state, so fall back to eager
            # per-cell factory calls (None is cached to skip re-probing).
            self._pools[key] = None
            return None
        pool = _ModelPool(config.model_factory, slots)
        self._pools[key] = pool
        return pool

    def worker_models(self, config: WorkloadConfig) -> Optional[List[Sequential]]:
        """K pristine worker models for one cell, or ``None`` to build eagerly."""
        pool = self._pool(config)
        return pool.bind() if pool is not None else None

    def model_digest(self, config: WorkloadConfig) -> object:
        """Content digest of the workload's initial model (architecture + θ₀).

        Memoized per factory object with a single probe build — key
        computation must stay cheap even when no cell executes (the warm
        replay path digests every cell's model without training anything).
        """
        from repro.experiments.cache import model_digest

        key = id(config.model_factory)
        entry = self._model_digests.get(key)
        if entry is not None and entry[0] is config.model_factory:
            return entry[1]
        probe = config.model_factory()
        if getattr(probe, "built", False):
            digest: object = model_digest(probe)
        else:
            # Last resort for lazily built factories: the qualified name.
            # Weak (two distinct lambdas share it), but such factories cannot
            # reach a cluster anyway — SimulatedCluster requires built models.
            digest = {"__callable__": getattr(config.model_factory, "__qualname__", "?")}
        self._model_digests[key] = (config.model_factory, digest)
        return digest


def _worker_slots(config: WorkloadConfig) -> int:
    """Physical worker slots of the cluster a workload builds.

    Equal to ``num_workers`` for materialized workloads; under a population
    config the slots form the cohort window (``cohort_size``), independent of
    the logical client count.
    """
    if config.population is not None:
        return int(config.population.cohort_size)
    return int(config.num_workers)


def build_cluster(
    config: WorkloadConfig, setup: Optional[SetupCache] = None
) -> Tuple[SimulatedCluster, Dataset]:
    """Build the simulated cluster for a workload.

    Returns ``(cluster, test_dataset)``.  Worker models are created from the
    same factory, so they share an architecture; the cluster/strategy then
    broadcasts worker 0's parameters so that all replicas start identical.

    ``setup`` (a :class:`SetupCache`) memoizes partitions and initial model
    state across repeated builds of the same workload — the sweep executor's
    shared-setup path.  Memoized and eager builds are bit-identical; without
    a cache every call rebuilds everything from scratch.

    With ``config.population`` set, the built cluster is the *cohort window*:
    ``cohort_size`` slots seeded from the population's client directory, with
    an unattached :class:`~repro.population.plane.ClientPopulation` hung on
    ``cluster.population`` for the training run to attach and drive.
    """
    if config.population is not None:
        return _build_population_cluster(config, setup)
    rng_factory = RngFactory(config.seed)
    if setup is not None:
        partitions = setup.partitions(config)
        pooled_models = setup.worker_models(config)
    else:
        partitions = partition_dataset(
            config.train_dataset,
            config.num_workers,
            scheme=config.partition_scheme,
            seed=rng_factory.named("partition"),
            **config.partition_kwargs,
        )
        pooled_models = None
    loss = config.loss or SoftmaxCrossEntropy()
    workers = []
    for worker_id, shard in enumerate(partitions):
        model = pooled_models[worker_id] if pooled_models else config.model_factory()
        optimizer = config.optimizer_factory()
        workers.append(
            Worker(
                worker_id,
                model,
                shard,
                optimizer,
                batch_size=config.batch_size,
                loss=loss,
                seed=rng_factory.worker(worker_id),
            )
        )
    timeline = None
    if config.compute_profile is not None or config.dropout_rate:
        timeline = Timeline(
            config.num_workers,
            profile=config.compute_profile,
            seed=rng_factory.named("timeline"),
            dropout_rate=config.dropout_rate,
        )
    cluster = SimulatedCluster(
        workers,
        cost_model=config.cost_model,
        loss=loss,
        topology=config.topology,
        network=config.network,
        timeline=timeline,
        execution=config.execution,
        compression=config.compression,
        dtype=config.dtype,
        faults=config.faults,
    )
    return cluster, config.test_dataset


def _build_population_cluster(
    config: WorkloadConfig, setup: Optional[SetupCache] = None
) -> Tuple[SimulatedCluster, Dataset]:
    """Build the cohort-window cluster for a population workload.

    The cluster holds ``cohort_size`` slots; slot ``s`` is seeded with client
    ``s mod N``'s shard so every slot has valid data before the first cohort
    binds (the population swaps shards per round).  Partitioning is bypassed
    entirely — client shards come from the
    :class:`~repro.population.directory.ClientDirectory` — while the model
    pool memoization applies unchanged (pools key on slot count).
    """
    from repro.population.plane import ClientPopulation

    rng_factory = RngFactory(config.seed)
    population = ClientPopulation(
        config.population,
        train_dataset=config.train_dataset,
        seed=config.seed,
        client_seed_fn=rng_factory.worker,
    )
    slots = _worker_slots(config)
    pooled_models = setup.worker_models(config) if setup is not None else None
    loss = config.loss or SoftmaxCrossEntropy()
    workers = []
    for slot in range(slots):
        shard = population.directory.shard(slot % config.population.num_clients)
        model = pooled_models[slot] if pooled_models else config.model_factory()
        optimizer = config.optimizer_factory()
        workers.append(
            Worker(
                slot,
                model,
                shard,
                optimizer,
                batch_size=config.batch_size,
                loss=loss,
                seed=rng_factory.worker(slot),
            )
        )
    timeline = None
    if config.compute_profile is not None or config.dropout_rate:
        timeline = Timeline(
            slots,
            profile=config.compute_profile,
            seed=rng_factory.named("timeline"),
            dropout_rate=config.dropout_rate,
        )
    cluster = SimulatedCluster(
        workers,
        cost_model=config.cost_model,
        loss=loss,
        topology=config.topology,
        network=config.network,
        timeline=timeline,
        execution=config.execution,
        compression=config.compression,
        dtype=config.dtype,
        faults=config.faults,
    )
    # Unattached until the training run calls population.attach(cluster,
    # strategy) — attach must run after the strategy's initial broadcast so
    # the captured fresh-client model is the shared w₀.
    cluster.population = population
    return cluster, config.test_dataset
