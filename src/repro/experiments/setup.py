"""Workload configuration and cluster construction.

A :class:`WorkloadConfig` bundles everything Table 2 of the paper specifies
per experiment: the model (a factory), the dataset pair, the local optimizer,
the batch size ``b``, the number of workers ``K``, and the data-distribution
scheme.  :func:`build_cluster` turns a workload into a ready-to-train
:class:`~repro.distributed.cluster.SimulatedCluster` with identically
initialized worker models and per-worker data shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple, Union

from repro.backend import resolve_dtype
from repro.compression import CompressionConfig, get_compression
from repro.core.timeline import StragglerProfile, Timeline
from repro.data.datasets import Dataset
from repro.data.partition import partition_dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.comm import CommunicationCostModel
from repro.distributed.engine import EXECUTION_MODES
from repro.distributed.network import NetworkModel
from repro.distributed.topology import Topology
from repro.distributed.worker import Worker
from repro.exceptions import ConfigurationError
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.optim.adam import Adam, AdamW
from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.utils.rng import RngFactory

ModelFactory = Callable[[], Sequential]
OptimizerFactory = Callable[[], Optimizer]

#: Sentinel distinguishing "argument not given" from an explicit ``None``, so
#: the ``with_*`` copy helpers never silently reset fields they weren't asked
#: to change.
_KEEP = object()


def make_optimizer(name: str, **kwargs) -> OptimizerFactory:
    """Return a factory for one of the paper's local optimizers.

    ``name`` is ``"adam"`` (LeNet-5 / VGG16* experiments), ``"sgd-nm"`` (the
    DenseNet experiments: SGD with Nesterov momentum 0.9), ``"sgd"`` or
    ``"adamw"`` (the ConvNeXt fine-tuning experiments).
    """
    name = name.lower()
    if name == "adam":
        return lambda: Adam(**{"learning_rate": 0.001, **kwargs})
    if name == "adamw":
        return lambda: AdamW(**{"learning_rate": 0.001, "weight_decay": 0.01, **kwargs})
    if name == "sgd":
        return lambda: SGD(**{"learning_rate": 0.05, **kwargs})
    if name in ("sgd-nm", "sgd_nesterov", "sgdnm"):
        defaults = {"learning_rate": 0.05, "momentum": 0.9, "nesterov": True}
        return lambda: SGD(**{**defaults, **kwargs})
    raise ConfigurationError(
        f"unknown optimizer {name!r}; expected 'adam', 'adamw', 'sgd' or 'sgd-nm'"
    )


@dataclass
class WorkloadConfig:
    """Everything needed to build one training workload.

    ``model_factory`` must return a *built* model; it is called once per
    worker (plus once for evaluation) with identical seeds so all replicas
    start from the same initialization, as Algorithm 1 requires.
    """

    name: str
    model_factory: ModelFactory
    train_dataset: Dataset
    test_dataset: Dataset
    optimizer_factory: OptimizerFactory
    num_workers: int = 5
    batch_size: int = 32
    partition_scheme: str = "iid"
    partition_kwargs: Dict[str, object] = field(default_factory=dict)
    loss: Optional[Loss] = None
    #: Communication pricing.  ``None`` (the default) lets the cluster derive
    #: an itemsize-accurate model from the compute dtype (8 B/element at
    #: float64, 4 B/element at float32); pass an explicit
    #: :class:`~repro.distributed.comm.CommunicationCostModel` (e.g.
    #: ``NAIVE_COST_MODEL`` for the paper's flat 4-byte accounting) to pin it.
    cost_model: Optional[CommunicationCostModel] = None
    #: Fabric configuration: a topology name (``"star"``, ``"ring"``,
    #: ``"hierarchical"``, ``"gossip"``) or instance, and a network-model name
    #: (``"fl"``, ``"hpc"``, ``"balanced"``, ``"none"``) or instance.
    topology: Union[str, Topology, None] = None
    network: Union[str, NetworkModel, None] = None
    #: Timeline configuration: per-worker compute heterogeneity and optional
    #: per-round dropout.  ``None`` keeps the default unperturbed clock.
    compute_profile: Optional[StragglerProfile] = None
    dropout_rate: float = 0.0
    #: Execution engine for the built cluster: ``"sequential"`` (per-worker
    #: steps, the default) or ``"batched"`` (one vectorized pass advancing all
    #: K workers at once; see :mod:`repro.distributed.engine`).
    execution: str = "sequential"
    #: Collective-level payload compression for the built cluster: a kernel
    #: name (``"topk"``, ``"quantization"``, ...), a
    #: :class:`~repro.compression.config.CompressionConfig`, or ``None`` for
    #: exact collectives (the default).  Applies uniformly to every strategy's
    #: sync payloads; see :mod:`repro.compression`.
    compression: Union[str, CompressionConfig, None] = None
    #: Compute dtype of the built cluster's parameter plane: ``"float64"``
    #: (the bit-exact reference, default) or ``"float32"`` (the fast mode;
    #: see :mod:`repro.backend`).
    dtype: str = "float64"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {self.num_workers}")
        if self.batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ConfigurationError(
                f"dropout_rate must lie in [0, 1), got {self.dropout_rate}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ConfigurationError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )
        # Normalize eagerly so configuration errors (unknown kernel names,
        # out-of-range knobs) surface where the workload is defined, not at
        # cluster construction deep inside a sweep.
        self.compression = get_compression(self.compression)
        self.dtype = resolve_dtype(self.dtype).name

    def with_workers(self, num_workers: int) -> "WorkloadConfig":
        """A copy of this workload with a different worker count (for K sweeps)."""
        return replace(self, num_workers=num_workers)

    def with_partition(self, scheme: str, **kwargs) -> "WorkloadConfig":
        """A copy of this workload with a different data-distribution scheme."""
        return replace(self, partition_scheme=scheme, partition_kwargs=dict(kwargs))

    def with_seed(self, seed: int) -> "WorkloadConfig":
        """A copy of this workload with a different random seed."""
        return replace(self, seed=seed)

    def with_fabric(self, topology=_KEEP, network=_KEEP) -> "WorkloadConfig":
        """A copy of this workload on a different fabric (topology × network).

        Only the arguments actually passed change; the other fabric axis keeps
        its current value (pass ``None`` explicitly to reset one to default).
        """
        changes = {}
        if topology is not _KEEP:
            changes["topology"] = topology
        if network is not _KEEP:
            changes["network"] = network
        return replace(self, **changes)

    def with_timeline(self, compute_profile=_KEEP, dropout_rate=_KEEP) -> "WorkloadConfig":
        """A copy of this workload with different timeline perturbations.

        Only the arguments actually passed change — enabling dropout does not
        discard a configured compute profile, and vice versa.
        """
        changes = {}
        if compute_profile is not _KEEP:
            changes["compute_profile"] = compute_profile
        if dropout_rate is not _KEEP:
            changes["dropout_rate"] = dropout_rate
        return replace(self, **changes)

    def with_execution(self, execution: str) -> "WorkloadConfig":
        """A copy of this workload on a different execution engine.

        ``execution`` is ``"sequential"`` or ``"batched"``; used by the CLI's
        ``compare --execution`` flag and the engine A/B benchmarks.
        """
        return replace(self, execution=execution)

    def with_compression(self, compression) -> "WorkloadConfig":
        """A copy of this workload with different payload compression.

        ``compression`` is a kernel name, a
        :class:`~repro.compression.config.CompressionConfig`, or ``None`` to
        return to exact collectives; used by the CLI's ``compare
        --compressor``/``--compression-ratio`` flags and the compression
        sweeps.
        """
        return replace(self, compression=compression)

    def with_dtype(self, dtype) -> "WorkloadConfig":
        """A copy of this workload on a different compute dtype.

        ``dtype`` is ``"float32"``, ``"float64"``, or anything
        :func:`repro.backend.resolve_dtype` accepts; used by the CLI's
        ``compare --dtype`` flag and the dtype benchmarks.
        """
        return replace(self, dtype=resolve_dtype(dtype).name)


def build_cluster(config: WorkloadConfig) -> Tuple[SimulatedCluster, Dataset]:
    """Build the simulated cluster for a workload.

    Returns ``(cluster, test_dataset)``.  Worker models are created from the
    same factory, so they share an architecture; the cluster/strategy then
    broadcasts worker 0's parameters so that all replicas start identical.
    """
    rng_factory = RngFactory(config.seed)
    partitions = partition_dataset(
        config.train_dataset,
        config.num_workers,
        scheme=config.partition_scheme,
        seed=rng_factory.named("partition"),
        **config.partition_kwargs,
    )
    loss = config.loss or SoftmaxCrossEntropy()
    workers = []
    for worker_id, shard in enumerate(partitions):
        model = config.model_factory()
        optimizer = config.optimizer_factory()
        workers.append(
            Worker(
                worker_id,
                model,
                shard,
                optimizer,
                batch_size=config.batch_size,
                loss=loss,
                seed=rng_factory.worker(worker_id),
            )
        )
    timeline = None
    if config.compute_profile is not None or config.dropout_rate:
        timeline = Timeline(
            config.num_workers,
            profile=config.compute_profile,
            seed=rng_factory.named("timeline"),
            dropout_rate=config.dropout_rate,
        )
    cluster = SimulatedCluster(
        workers,
        cost_model=config.cost_model,
        loss=loss,
        topology=config.topology,
        network=config.network,
        timeline=timeline,
        execution=config.execution,
        compression=config.compression,
        dtype=config.dtype,
    )
    return cluster, config.test_dataset
