"""Kernel-density summaries of (communication, computation) distributions.

The paper visualizes its 1000+ runs as bivariate KDE plots of communication
(GB, log scale) against in-parallel learning steps (log scale).  Rendering
figures is out of scope here, but the same density estimate is computed so
benchmarks and examples can report where each strategy's mass lies — e.g. the
density-weighted centroid that corresponds to the visually densest region of
the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.exceptions import ExperimentError
from repro.experiments.run import RunResult


@dataclass(frozen=True)
class KdeSummary:
    """Summary of a strategy's (log10 communication, log10 steps) distribution."""

    strategy: str
    num_runs: int
    centroid_log_comm: float
    centroid_log_steps: float
    spread_log_comm: float
    spread_log_steps: float

    @property
    def centroid_communication_bytes(self) -> float:
        """Density centroid mapped back to bytes."""
        return float(10**self.centroid_log_comm)

    @property
    def centroid_parallel_steps(self) -> float:
        """Density centroid mapped back to steps."""
        return float(10**self.centroid_log_steps)


def _log_points(results: Sequence[RunResult]) -> np.ndarray:
    points = np.array(
        [
            [np.log10(max(result.communication_bytes, 1)), np.log10(max(result.parallel_steps, 1))]
            for result in results
        ],
        dtype=np.float64,
    )
    return points


def kde_density(
    results: Sequence[RunResult],
    grid_size: int = 32,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate a Gaussian KDE of the runs on a log-log grid.

    Returns ``(log_comm_grid, log_steps_grid, density)`` where ``density`` has
    shape ``(grid_size, grid_size)``.  Falls back to a single-peak histogram
    when there are too few (or degenerate) points for a KDE.
    """
    if not results:
        raise ExperimentError("kde_density requires at least one run result")
    points = _log_points(results)
    comm_lo, comm_hi = points[:, 0].min() - 0.5, points[:, 0].max() + 0.5
    steps_lo, steps_hi = points[:, 1].min() - 0.5, points[:, 1].max() + 0.5
    log_comm_grid = np.linspace(comm_lo, comm_hi, grid_size)
    log_steps_grid = np.linspace(steps_lo, steps_hi, grid_size)
    mesh_comm, mesh_steps = np.meshgrid(log_comm_grid, log_steps_grid, indexing="ij")

    unique_points = np.unique(points, axis=0)
    if points.shape[0] < 3 or unique_points.shape[0] < 3:
        # Degenerate case: place unit mass at the nearest grid cell(s).
        density = np.zeros((grid_size, grid_size))
        for point in points:
            i = int(np.argmin(np.abs(log_comm_grid - point[0])))
            j = int(np.argmin(np.abs(log_steps_grid - point[1])))
            density[i, j] += 1.0
        density /= density.sum()
        return log_comm_grid, log_steps_grid, density

    try:
        kernel = stats.gaussian_kde(points.T)
        density = kernel(np.vstack([mesh_comm.ravel(), mesh_steps.ravel()])).reshape(
            grid_size, grid_size
        )
    except np.linalg.LinAlgError:
        # Singular covariance (e.g. collinear points): jitter slightly and retry.
        jittered = points + np.random.default_rng(0).normal(scale=1e-3, size=points.shape)
        kernel = stats.gaussian_kde(jittered.T)
        density = kernel(np.vstack([mesh_comm.ravel(), mesh_steps.ravel()])).reshape(
            grid_size, grid_size
        )
    total = density.sum()
    if total > 0:
        density = density / total
    return log_comm_grid, log_steps_grid, density


def log_kde_summary(results: Iterable[RunResult]) -> List[KdeSummary]:
    """Per-strategy density summaries (centroid and spread in log10 space)."""
    by_strategy: Dict[str, List[RunResult]] = {}
    for result in results:
        by_strategy.setdefault(result.strategy, []).append(result)
    if not by_strategy:
        raise ExperimentError("log_kde_summary requires at least one run result")
    summaries = []
    for strategy, runs in by_strategy.items():
        points = _log_points(runs)
        summaries.append(
            KdeSummary(
                strategy=strategy,
                num_runs=len(runs),
                centroid_log_comm=float(points[:, 0].mean()),
                centroid_log_steps=float(points[:, 1].mean()),
                spread_log_comm=float(points[:, 0].std()),
                spread_log_steps=float(points[:, 1].std()),
            )
        )
    return summaries
