"""Aggregation of training-run results.

The paper aggregates over 1000 runs into per-strategy distributions of
(communication, computation).  :class:`ResultsTable` collects
:class:`~repro.experiments.run.RunResult` objects and produces per-strategy
summaries (medians, ranges, reach rates) and pairwise comparisons such as
"FDA uses N× less communication than Synchronous", which are the claims the
benchmark suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ExperimentError
from repro.experiments.run import RunResult


@dataclass(frozen=True)
class StrategySummary:
    """Aggregate statistics for one strategy across runs."""

    strategy: str
    num_runs: int
    reach_rate: float
    median_communication_bytes: float
    median_parallel_steps: float
    min_communication_bytes: float
    max_communication_bytes: float
    min_parallel_steps: float
    max_parallel_steps: float
    median_synchronizations: float
    median_final_accuracy: float
    median_virtual_seconds: float = 0.0


class ResultsTable:
    """A collection of run results with per-strategy aggregation."""

    def __init__(self, results: Optional[Iterable[RunResult]] = None) -> None:
        self._results: List[RunResult] = list(results) if results is not None else []

    def add(self, result: RunResult) -> None:
        """Append one run result."""
        self._results.append(result)

    def extend(self, results: Iterable[RunResult]) -> None:
        """Append several run results."""
        self._results.extend(results)

    def __len__(self) -> int:
        return len(self._results)

    @property
    def results(self) -> List[RunResult]:
        """All collected results (shallow copy)."""
        return list(self._results)

    def strategies(self) -> List[str]:
        """Distinct strategy names, in first-seen order."""
        seen: List[str] = []
        for result in self._results:
            if result.strategy not in seen:
                seen.append(result.strategy)
        return seen

    def for_strategy(self, strategy: str, reached_only: bool = False) -> List[RunResult]:
        """Results belonging to one strategy (optionally only target-reaching runs)."""
        selected = [r for r in self._results if r.strategy == strategy]
        if reached_only:
            selected = [r for r in selected if r.reached_target]
        return selected

    def summarize(self, strategy: str, reached_only: bool = True) -> StrategySummary:
        """Aggregate one strategy's runs into a :class:`StrategySummary`."""
        all_runs = self.for_strategy(strategy)
        if not all_runs:
            raise ExperimentError(f"no results recorded for strategy {strategy!r}")
        runs = [r for r in all_runs if r.reached_target] if reached_only else all_runs
        if not runs:
            runs = all_runs  # fall back so the summary is still informative
        comm = np.array([r.communication_bytes for r in runs], dtype=np.float64)
        steps = np.array([r.parallel_steps for r in runs], dtype=np.float64)
        syncs = np.array([r.synchronizations for r in runs], dtype=np.float64)
        accuracy = np.array([r.final_accuracy for r in runs], dtype=np.float64)
        seconds = np.array([r.virtual_seconds for r in runs], dtype=np.float64)
        return StrategySummary(
            strategy=strategy,
            num_runs=len(all_runs),
            reach_rate=float(np.mean([r.reached_target for r in all_runs])),
            median_communication_bytes=float(np.median(comm)),
            median_parallel_steps=float(np.median(steps)),
            min_communication_bytes=float(comm.min()),
            max_communication_bytes=float(comm.max()),
            min_parallel_steps=float(steps.min()),
            max_parallel_steps=float(steps.max()),
            median_synchronizations=float(np.median(syncs)),
            median_final_accuracy=float(np.median(accuracy)),
            median_virtual_seconds=float(np.median(seconds)),
        )

    def summaries(self, reached_only: bool = True) -> List[StrategySummary]:
        """Summaries for every strategy present."""
        return [self.summarize(name, reached_only) for name in self.strategies()]


def summarize_results(results: Iterable[RunResult], reached_only: bool = True) -> List[StrategySummary]:
    """Convenience wrapper: collect results and summarize every strategy."""
    return ResultsTable(results).summaries(reached_only)


def compare_strategies(
    results: Iterable[RunResult],
    candidate: str,
    baseline: str,
    reached_only: bool = True,
) -> Dict[str, float]:
    """Pairwise comparison: how much cheaper is ``candidate`` than ``baseline``?

    Returns the communication and computation ratios ``baseline / candidate``
    computed on the per-strategy medians (ratios > 1 mean the candidate wins).
    """
    table = ResultsTable(results)
    candidate_summary = table.summarize(candidate, reached_only)
    baseline_summary = table.summarize(baseline, reached_only)
    communication_ratio = (
        baseline_summary.median_communication_bytes
        / max(candidate_summary.median_communication_bytes, 1.0)
    )
    computation_ratio = (
        baseline_summary.median_parallel_steps
        / max(candidate_summary.median_parallel_steps, 1.0)
    )
    return {
        "communication_ratio": float(communication_ratio),
        "computation_ratio": float(computation_ratio),
        "candidate_reach_rate": candidate_summary.reach_rate,
        "baseline_reach_rate": baseline_summary.reach_rate,
    }


def best_run(
    results: Sequence[RunResult], strategy: str, metric: str = "communication_bytes"
) -> RunResult:
    """The target-reaching run with the smallest ``metric`` for a strategy."""
    candidates = [r for r in results if r.strategy == strategy and r.reached_target]
    if not candidates:
        candidates = [r for r in results if r.strategy == strategy]
    if not candidates:
        raise ExperimentError(f"no results recorded for strategy {strategy!r}")
    return min(candidates, key=lambda r: getattr(r, metric))
