"""Declarative run tables: topology × size × repetition grids.

A :class:`RunTableSpec` names the axes of an experiment grid once —
fabric cells (topology × network), cluster sizes, repetitions — and lowers
them onto concrete artifacts: labeled :class:`~repro.experiments.setup.WorkloadConfig`
variants via :meth:`~RunTableSpec.workloads`, or executable
:class:`~repro.experiments.executor.SweepCell` lists via
:meth:`~RunTableSpec.cells` for the streaming sweep executor.  The serving
benchmark builds its fabric grid this way, and the same spec drops straight
into :meth:`~repro.experiments.executor.SweepExecutor.execute`.

Repetitions become seed offsets (``seed + repetition``), so every repetition
is a genuinely different stochastic run while staying reproducible and
cache-addressable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.executor import SweepCell
from repro.experiments.setup import WorkloadConfig

__all__ = ["RunTableSpec", "RunTableEntry"]


@dataclass(frozen=True)
class RunTableEntry:
    """One lowered grid cell: a workload plus its label and structured tags."""

    workload: WorkloadConfig
    label: str
    tags: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class RunTableSpec:
    """A topology × size × repetition grid, declared once.

    ``fabrics`` is a tuple of ``(topology, network)`` name pairs (``None``
    keeps the workload's current value for that axis); ``sizes`` is a tuple
    of worker counts (empty = keep the workload's ``num_workers``);
    ``repetitions`` replicates every cell with stepped seeds.
    """

    fabrics: Tuple[Tuple[Optional[str], Optional[str]], ...] = ((None, None),)
    sizes: Tuple[int, ...] = ()
    repetitions: int = 1

    def __post_init__(self) -> None:
        if not self.fabrics:
            raise ConfigurationError("run table needs at least one fabric cell")
        if self.repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        for size in self.sizes:
            if size <= 0:
                raise ConfigurationError(f"sizes must be positive, got {size}")

    def __len__(self) -> int:
        return len(self.fabrics) * max(len(self.sizes), 1) * self.repetitions

    @staticmethod
    def _fabric_label(topology: Optional[str], network: Optional[str]) -> str:
        return f"{topology or 'default'}x{network or 'none'}"

    def workloads(self, base: WorkloadConfig) -> List[RunTableEntry]:
        """Lower the grid onto labeled workload variants of ``base``."""
        entries: List[RunTableEntry] = []
        sizes = self.sizes or (base.num_workers,)
        for topology, network in self.fabrics:
            workload_fabric = base.with_fabric(topology=topology, network=network)
            for size in sizes:
                sized = workload_fabric.with_workers(size)
                for repetition in range(self.repetitions):
                    cell = sized.with_seed(base.seed + repetition)
                    label = (
                        f"{self._fabric_label(topology, network)}-K{size}"
                        + (f"-rep{repetition}" if self.repetitions > 1 else "")
                    )
                    entries.append(
                        RunTableEntry(
                            workload=cell,
                            label=label,
                            tags={
                                "topology": topology,
                                "network": network,
                                "num_workers": int(size),
                                "repetition": int(repetition),
                            },
                        )
                    )
        return entries

    def cells(
        self,
        base: WorkloadConfig,
        strategy_factory,
        run,
        label_prefix: str = "",
    ) -> List[SweepCell]:
        """Lower the grid onto :class:`SweepCell` lists for the executor."""
        return [
            SweepCell(
                workload=entry.workload,
                strategy_factory=strategy_factory,
                run=run,
                label=f"{label_prefix}{entry.label}",
                tags=dict(entry.tags),
            )
            for entry in self.workloads(base)
        ]
