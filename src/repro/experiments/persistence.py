"""Persisting experiment results to disk.

The paper's evaluation aggregates over 1000 training runs; anyone extending
this reproduction will want to run sweeps incrementally and keep the results.
This module serializes :class:`~repro.experiments.run.RunResult` objects (and
sweeps of them) to plain JSON — including the per-evaluation history — and
loads them back into fully usable objects, so aggregation, KDE summaries, and
reporting work identically on fresh and reloaded results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.exceptions import ExperimentError
from repro.experiments.run import RunResult
from repro.utils.runlog import RunLogger

# NOTE: sweep-point classes are imported lazily inside the sweep helpers —
# persistence sits below the executor, which sits below sweep.py, so a
# module-level import here would be circular.

PathLike = Union[str, Path]

_RESULT_FIELDS = (
    "strategy",
    "workload",
    "reached_target",
    "accuracy_target",
    "final_accuracy",
    "best_accuracy",
    "communication_bytes",
    "parallel_steps",
    "synchronizations",
    "evaluations",
    "state_bytes",
    "model_bytes",
    "final_train_accuracy",
)

#: Fields added after the seed format (fabric/timeline by the topology
#: refactor, ``execution`` by the batched engine, ``compression`` by the
#: collective-level compression subsystem, ``dtype`` by the dtype-parametric
#: plane, ``faults``/``fault_log`` by the fault-injection plane,
#: ``population`` by the population plane); optional on load so result files
#: written by earlier versions still deserialize.
_OPTIONAL_RESULT_FIELDS = (
    "virtual_seconds",
    "compute_seconds",
    "comm_seconds",
    "topology",
    "network",
    "execution",
    "compression",
    "dtype",
    "population",
    "faults",
    "fault_log",
)


def result_to_dict(result: RunResult) -> Dict[str, object]:
    """Convert a :class:`RunResult` (including its history) to plain JSON types."""
    payload: Dict[str, object] = {
        field: getattr(result, field)
        for field in _RESULT_FIELDS + _OPTIONAL_RESULT_FIELDS
    }
    payload["history"] = result.history.entries
    return payload


def result_from_dict(payload: Dict[str, object]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    missing = [field for field in _RESULT_FIELDS if field not in payload]
    if missing:
        raise ExperimentError(f"run-result payload is missing fields: {missing}")
    history = RunLogger(name=f"{payload['strategy']}-{payload['workload']}")
    for index, entry in enumerate(payload.get("history", [])):
        if not isinstance(entry, dict):
            raise ExperimentError(
                f"history entry {index} is not an object: got {type(entry).__name__}"
            )
        bad_keys = [key for key in entry if not isinstance(key, str)]
        if bad_keys:
            raise ExperimentError(
                f"history entry {index} has non-string metric names: {bad_keys}"
            )
        try:
            history.log(**entry)
        except TypeError as error:
            raise ExperimentError(
                f"history entry {index} is malformed: {error}"
            ) from error
    kwargs = {field: payload[field] for field in _RESULT_FIELDS}
    for field in _OPTIONAL_RESULT_FIELDS:
        if field in payload:
            kwargs[field] = payload[field]
    return RunResult(history=history, **kwargs)


def save_results(results: Iterable[RunResult], path: PathLike) -> Path:
    """Write a list of run results to ``path`` as a JSON document."""
    path = Path(path)
    document = {
        "format": "repro.run_results",
        "version": 1,
        "results": [result_to_dict(result) for result in results],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path


def load_results(path: PathLike) -> List[RunResult]:
    """Load run results previously written by :func:`save_results`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"results file {path} does not exist")
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != "repro.run_results":
        raise ExperimentError(f"{path} is not a repro results file")
    return [result_from_dict(item) for item in document.get("results", [])]


def _point_to_record(point) -> Dict[str, object]:
    """One sweep point → one typed record (``point_type`` + axis fields)."""
    from repro.experiments.sweep import (
        CompressionSweepPoint,
        FabricSweepPoint,
        SweepPoint,
    )

    record = result_to_dict(point.result)
    if isinstance(point, SweepPoint):
        record["point_type"] = "sweep"
        record["sweep_parameter"] = point.parameter
        record["sweep_value"] = point.value
    elif isinstance(point, FabricSweepPoint):
        record["point_type"] = "fabric"
        record["sweep_topology"] = point.topology
        record["sweep_network"] = point.network
    elif isinstance(point, CompressionSweepPoint):
        record["point_type"] = "compression"
        record["sweep_compression"] = point.compression
    else:
        raise ExperimentError(
            f"cannot serialize sweep point of type {type(point).__name__}"
        )
    return record


def _point_from_record(record: Dict[str, object]):
    """One typed record → the matching sweep-point class.

    Version-1 files carry no ``point_type`` (only ``SweepPoint`` existed
    then), so its absence means "sweep" — the backward-compatible default.
    """
    from repro.experiments.sweep import (
        CompressionSweepPoint,
        FabricSweepPoint,
        SweepPoint,
    )

    record = dict(record)
    point_type = record.pop("point_type", "sweep")
    if point_type == "sweep":
        parameter = record.pop("sweep_parameter", "unknown")
        value = record.pop("sweep_value", float("nan"))
        return SweepPoint(
            parameter=parameter, value=value, result=result_from_dict(record)
        )
    if point_type == "fabric":
        topology = record.pop("sweep_topology", "star")
        network = record.pop("sweep_network", "none")
        return FabricSweepPoint(
            topology=topology, network=network, result=result_from_dict(record)
        )
    if point_type == "compression":
        compression = record.pop("sweep_compression", "none")
        return CompressionSweepPoint(
            compression=compression, result=result_from_dict(record)
        )
    raise ExperimentError(f"unknown sweep point_type {point_type!r}")


def sweep_to_records(points: Iterable) -> List[Dict[str, object]]:
    """Flatten sweep points into per-point records (for JSON or tabular export).

    Accepts any mix of :class:`~repro.experiments.sweep.SweepPoint`,
    :class:`~repro.experiments.sweep.FabricSweepPoint`, and
    :class:`~repro.experiments.sweep.CompressionSweepPoint`; each record
    carries a ``point_type`` discriminator plus that type's axis fields.
    """
    return [_point_to_record(point) for point in points]


def save_sweep(points: Iterable, path: PathLike) -> Path:
    """Write sweep points (Θ/K, fabric, or compression grids) to ``path``."""
    path = Path(path)
    document = {
        "format": "repro.sweep",
        "version": 2,
        "points": sweep_to_records(points),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path


def load_sweep(path: PathLike) -> List:
    """Load sweep points previously written by :func:`save_sweep`.

    Reads both the current typed format (version 2) and version-1 files,
    whose untyped records all deserialize as plain ``SweepPoint``s.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"sweep file {path} does not exist")
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != "repro.sweep":
        raise ExperimentError(f"{path} is not a repro sweep file")
    return [_point_from_record(record) for record in document.get("points", [])]
