"""Persisting experiment results to disk.

The paper's evaluation aggregates over 1000 training runs; anyone extending
this reproduction will want to run sweeps incrementally and keep the results.
This module serializes :class:`~repro.experiments.run.RunResult` objects (and
sweeps of them) to plain JSON — including the per-evaluation history — and
loads them back into fully usable objects, so aggregation, KDE summaries, and
reporting work identically on fresh and reloaded results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.exceptions import ExperimentError
from repro.experiments.run import RunResult
from repro.experiments.sweep import SweepPoint
from repro.utils.runlog import RunLogger

PathLike = Union[str, Path]

_RESULT_FIELDS = (
    "strategy",
    "workload",
    "reached_target",
    "accuracy_target",
    "final_accuracy",
    "best_accuracy",
    "communication_bytes",
    "parallel_steps",
    "synchronizations",
    "evaluations",
    "state_bytes",
    "model_bytes",
    "final_train_accuracy",
)

#: Fields added after the seed format (fabric/timeline by the topology
#: refactor, ``execution`` by the batched engine, ``compression`` by the
#: collective-level compression subsystem, ``dtype`` by the dtype-parametric
#: plane); optional on load so result files written by earlier versions still
#: deserialize.
_OPTIONAL_RESULT_FIELDS = (
    "virtual_seconds",
    "compute_seconds",
    "comm_seconds",
    "topology",
    "network",
    "execution",
    "compression",
    "dtype",
)


def result_to_dict(result: RunResult) -> Dict[str, object]:
    """Convert a :class:`RunResult` (including its history) to plain JSON types."""
    payload: Dict[str, object] = {
        field: getattr(result, field)
        for field in _RESULT_FIELDS + _OPTIONAL_RESULT_FIELDS
    }
    payload["history"] = result.history.entries
    return payload


def result_from_dict(payload: Dict[str, object]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    missing = [field for field in _RESULT_FIELDS if field not in payload]
    if missing:
        raise ExperimentError(f"run-result payload is missing fields: {missing}")
    history = RunLogger(name=f"{payload['strategy']}-{payload['workload']}")
    for entry in payload.get("history", []):
        history.log(**entry)
    kwargs = {field: payload[field] for field in _RESULT_FIELDS}
    for field in _OPTIONAL_RESULT_FIELDS:
        if field in payload:
            kwargs[field] = payload[field]
    return RunResult(history=history, **kwargs)


def save_results(results: Iterable[RunResult], path: PathLike) -> Path:
    """Write a list of run results to ``path`` as a JSON document."""
    path = Path(path)
    document = {
        "format": "repro.run_results",
        "version": 1,
        "results": [result_to_dict(result) for result in results],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path


def load_results(path: PathLike) -> List[RunResult]:
    """Load run results previously written by :func:`save_results`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"results file {path} does not exist")
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != "repro.run_results":
        raise ExperimentError(f"{path} is not a repro results file")
    return [result_from_dict(item) for item in document.get("results", [])]


def sweep_to_records(points: Iterable[SweepPoint]) -> List[Dict[str, object]]:
    """Flatten sweep points into per-point records (for JSON or tabular export)."""
    records = []
    for point in points:
        record = result_to_dict(point.result)
        record["sweep_parameter"] = point.parameter
        record["sweep_value"] = point.value
        records.append(record)
    return records


def save_sweep(points: Iterable[SweepPoint], path: PathLike) -> Path:
    """Write sweep points to ``path`` as JSON."""
    path = Path(path)
    document = {
        "format": "repro.sweep",
        "version": 1,
        "points": sweep_to_records(points),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path


def load_sweep(path: PathLike) -> List[SweepPoint]:
    """Load sweep points previously written by :func:`save_sweep`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"sweep file {path} does not exist")
    with path.open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != "repro.sweep":
        raise ExperimentError(f"{path} is not a repro sweep file")
    points = []
    for record in document.get("points", []):
        parameter = record.pop("sweep_parameter", "unknown")
        value = record.pop("sweep_value", float("nan"))
        points.append(SweepPoint(parameter=parameter, value=value, result=result_from_dict(record)))
    return points
