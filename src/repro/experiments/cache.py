"""Content-addressed run cache: canonical fingerprints and the JSONL store.

The paper's evaluation aggregates over 1000 training runs; the streaming
sweep executor (:mod:`repro.experiments.executor`) makes such grids tractable
by never running the same cell twice.  This module provides the two halves of
that guarantee:

* **Canonical fingerprints** — :func:`canonical_value` reduces any
  configuration object (dataclasses, numpy arrays, optimizer/strategy
  instances, nested dicts) to deterministic JSON-compatible structure, and
  :func:`fingerprint_digest` hashes it.  Datasets and models are digested by
  *content* (:func:`dataset_digest`, :func:`model_digest`): two separately
  constructed but equal workloads map to the same key, while any single-field
  change — a different Θ, seed, partition scheme, dtype, topology — produces
  a different one.  :data:`CODE_VERSION` is salted into every key so cached
  results are invalidated wholesale when run semantics change.

* **The run store** — :class:`RunStore` persists one JSON line per completed
  cell into ``runs.jsonl`` next to a ``manifest.json``.  Appends are
  write-then-fsync so a killed sweep loses at most the in-flight cell; the
  loader tolerates a truncated trailing line, which is exactly the crash
  artifact an append-mode writer can leave.  The manifest is written via
  temp-file + fsync + atomic rename.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.exceptions import ExperimentError

PathLike = Union[str, Path]

#: Salt mixed into every run key.  Bump whenever the semantics of a training
#: run change (training loop, byte accounting, RNG layout, ...) so that
#: results cached under the old semantics can never be replayed as current.
CODE_VERSION = "sweep-cache-v1"

#: Maximum nesting depth :func:`canonical_value` will descend before
#: summarizing the remainder as a type token (guards against cycles).
_MAX_DEPTH = 8


def _json_default(value: Any):
    """JSON encoder fallback: numpy scalars/arrays → plain Python."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def _array_token(array: np.ndarray) -> Dict[str, object]:
    data = np.ascontiguousarray(array)
    return {
        "__ndarray__": hashlib.sha256(data.tobytes()).hexdigest(),
        "shape": list(data.shape),
        "dtype": str(data.dtype),
    }


def canonical_value(value: Any, depth: int = 0) -> Any:
    """Reduce ``value`` to a deterministic JSON-compatible structure.

    Primitives pass through, numpy scalars unwrap, arrays become content
    digests, dataclasses and mappings recurse field-wise, and arbitrary
    objects fall back to their class name plus their public attributes
    (objects exposing ``spec()`` or ``describe()`` use those instead).
    Callables reduce to their qualified name — factories must therefore be
    fingerprinted through what they *produce* (see ``model_digest``), never
    through the callable itself.
    """
    if depth > _MAX_DEPTH:
        return f"<max-depth:{type(value).__name__}>"
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return _array_token(value)
    if isinstance(value, bytes):
        return {"__bytes__": hashlib.sha256(value).hexdigest()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: canonical_value(getattr(value, field.name), depth + 1)
            for field in dataclasses.fields(value)
        }
        return {"__class__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {
            str(key): canonical_value(value[key], depth + 1)
            for key in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple)):
        return [canonical_value(item, depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (canonical_value(item, depth + 1) for item in value),
            key=lambda item: json.dumps(item, sort_keys=True, default=_json_default),
        )
    spec = getattr(value, "spec", None)
    if callable(spec) and not isinstance(value, type):
        return canonical_value(spec(), depth + 1)
    describe = getattr(value, "describe", None)
    if callable(describe) and not isinstance(value, type):
        return {"__class__": type(value).__name__, "describe": describe()}
    if inspect.isroutine(value) or isinstance(value, type):
        return {"__callable__": getattr(value, "__qualname__", repr(type(value)))}
    if hasattr(value, "__dict__"):
        # Generic objects — including callable instances like learning-rate
        # schedules — canonicalize by class plus public attributes, which is
        # what distinguishes two differently configured instances.
        public = {
            key: canonical_value(item, depth + 1)
            for key, item in sorted(vars(value).items())
            if not key.startswith("_")
        }
        return {"__class__": type(value).__name__, **public}
    if callable(value):
        return {"__callable__": getattr(value, "__qualname__", repr(type(value)))}
    return {"__class__": type(value).__name__}


def fingerprint_digest(fingerprint: Any) -> str:
    """SHA-256 hex digest of a canonicalized fingerprint structure."""
    payload = json.dumps(
        canonical_value(fingerprint),
        sort_keys=True,
        separators=(",", ":"),
        default=_json_default,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_digest(dataset) -> str:
    """Content digest of a dataset: samples, labels, shape, class count.

    The name is deliberately excluded — the key addresses *content*, so two
    identically generated datasets under different labels still share cached
    runs (the workload name is fingerprinted separately).
    """
    digest = hashlib.sha256()
    x = np.ascontiguousarray(dataset.x)
    y = np.ascontiguousarray(dataset.y)
    digest.update(str((x.shape, str(x.dtype), y.shape, str(y.dtype))).encode())
    digest.update(x.tobytes())
    digest.update(y.tobytes())
    digest.update(str(int(dataset.num_classes)).encode())
    return digest.hexdigest()


def model_digest(model) -> str:
    """Content digest of a *pristine* built model.

    Covers the layer structure (class names and public configuration) and
    the initial parameter/buffer vectors, so two factories producing
    bit-identical models share a digest while any architectural or
    initialization change breaks it.
    """
    structure = [
        {
            "layer": type(layer).__name__,
            "config": {
                key: canonical_value(item)
                for key, item in sorted(vars(layer).items())
                if not key.startswith("_")
                and key not in ("built", "input_shape", "output_shape")
                and (item is None or isinstance(item, (bool, int, float, str, tuple)))
            },
        }
        for layer in model.layers
    ]
    digest = hashlib.sha256()
    digest.update(
        json.dumps(structure, sort_keys=True, default=_json_default).encode("utf-8")
    )
    params = np.ascontiguousarray(model.get_parameters())
    buffers = np.ascontiguousarray(model.get_buffers())
    digest.update(str((params.shape, str(params.dtype))).encode())
    digest.update(params.tobytes())
    digest.update(str((buffers.shape, str(buffers.dtype))).encode())
    digest.update(buffers.tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The incremental JSONL result store
# ---------------------------------------------------------------------------

_MANIFEST_NAME = "manifest.json"
_RUNS_NAME = "runs.jsonl"


class RunStore:
    """Append-only content-addressed result store (``runs.jsonl`` + manifest).

    Each completed cell is one JSON line keyed by its run key; loading the
    index replays the file and keeps the last record per key, so a ``--force``
    re-run simply appends fresh records that shadow the old ones.  The writer
    appends-then-fsyncs, and the reader skips unparseable lines, so a sweep
    killed mid-write resumes exactly at its last durable cell.
    """

    def __init__(self, directory: PathLike, code_version: str = CODE_VERSION) -> None:
        self.directory = Path(directory)
        self.code_version = str(code_version)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._ensure_manifest()

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    @property
    def runs_path(self) -> Path:
        return self.directory / _RUNS_NAME

    # -- manifest ----------------------------------------------------------

    def _ensure_manifest(self) -> None:
        if self.manifest_path.exists():
            try:
                manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                manifest = None
            if isinstance(manifest, dict) and manifest.get("format") == "repro.sweep-cache":
                return
            raise ExperimentError(
                f"{self.manifest_path} exists but is not a repro sweep-cache manifest; "
                "refusing to reuse the directory"
            )
        self._write_manifest(
            {
                "format": "repro.sweep-cache",
                "version": 1,
                "code_version": self.code_version,
                "runs_file": _RUNS_NAME,
            }
        )

    def _write_manifest(self, manifest: Dict[str, object]) -> None:
        # Atomic replace: a crash mid-write can never leave a half manifest.
        temp_path = self.manifest_path.with_suffix(".json.tmp")
        with temp_path.open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.manifest_path)

    def manifest(self) -> Dict[str, object]:
        """The parsed manifest document."""
        return json.loads(self.manifest_path.read_text(encoding="utf-8"))

    # -- records -----------------------------------------------------------

    def append(
        self,
        key: str,
        result_payload: Dict[str, object],
        label: str = "",
        tags: Optional[Dict[str, object]] = None,
    ) -> None:
        """Durably append one completed cell (write + flush + fsync)."""
        record = {
            "format": "repro.run-record",
            "version": 1,
            "key": str(key),
            "label": str(label),
            "tags": dict(tags or {}),
            "result": result_payload,
        }
        line = json.dumps(record, sort_keys=True, default=_json_default)
        with self.runs_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_index(self) -> Dict[str, Dict[str, object]]:
        """Replay ``runs.jsonl`` into a key → record map (last record wins).

        Unparseable lines — the truncated tail a killed writer leaves — and
        records without a key/result are skipped rather than raised, so a
        crashed sweep's store always loads.
        """
        index: Dict[str, Dict[str, object]] = {}
        if not self.runs_path.exists():
            return index
        with self.runs_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                key = record.get("key")
                if not isinstance(key, str) or not isinstance(record.get("result"), dict):
                    continue
                index[key] = record
        return index

    def keys(self) -> List[str]:
        """All run keys currently resolvable from the store."""
        return sorted(self.load_index())

    def __len__(self) -> int:
        return len(self.load_index())

    def __contains__(self, key: str) -> bool:
        return key in self.load_index()

    def records(self) -> Iterable[Dict[str, object]]:
        """The deduplicated records, in key order."""
        index = self.load_index()
        return [index[key] for key in sorted(index)]
