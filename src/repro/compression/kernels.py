"""Vectorized compression kernels operating row-wise on ``(K, d)`` matrices.

Every kernel answers the same question — *what does one worker actually put on
the wire when it uploads a ``d``-dimensional update?* — and does so for all
``K`` workers at once: :meth:`Compressor.compress_rows` consumes a whole
``(K, d)`` matrix (typically the cluster's drift matrix) and returns a
:class:`RowPayloads` describing every row's lossy payload plus its true
transmitted size.  This is what lets the cluster-level synchronization path
(:mod:`repro.compression.state`) stay a handful of matrix passes instead of a
per-worker Python loop, and what lets the communication fabric charge
*compressed* bytes per link instead of the dense ``4·d``.

Kernels provided (Section 2 of the FDA paper positions all of these as
orthogonal to *when* models are exchanged):

* :class:`QuantizationCompressor` — uniform symmetric quantization, one scale
  per row; the payload is ``bits``-bit levels plus the scale.
* :class:`TopKCompressor` — classic magnitude sparsification; the payload is
  ``k`` (index, value) pairs per row, degrading gracefully to a dense vector
  when ``k ≥ d``.
* :class:`RandomKCompressor` — random sparsification with a shared seed, so
  only the ``k`` values (plus the seed) travel.
* :class:`SignCompressor` — sign + per-row ℓ1 scale (1-bit SGD style).
* :class:`LayerwiseTopKCompressor` — top-k applied *per layer slot* of a
  :class:`~repro.nn.plane.ParameterPlane` layout (L-FGADMM-style layer-wise
  communication), so every layer keeps a proportional budget.

The single-vector API of the original strategy wrapper is preserved:
:meth:`Compressor.compress` wraps ``compress_rows`` for one row and returns
the legacy :class:`CompressedPayload`.

Doctest — the row-wise top-k kernel keeps each row's largest-magnitude
entries and reports the sparse payload size (``k`` index/value pairs):

>>> import numpy as np
>>> compressor = TopKCompressor(fraction=0.5)
>>> matrix = np.array([[1.0, -3.0, 0.5, 2.0], [0.0, 0.1, -0.2, 0.05]])
>>> payloads = compressor.compress_rows(matrix)
>>> payloads.reconstruct()
array([[ 0. , -3. ,  0. ,  2. ],
       [ 0. ,  0.1, -0.2,  0. ]])
>>> compressor.transmitted_elements(4)  # 2 kept entries x (index + value)
4
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


@dataclass(frozen=True)
class CompressedPayload:
    """Legacy single-vector result: the lossy vector plus its transmitted size.

    ``transmitted_elements`` counts float32-equivalent elements, the unit the
    communication fabric charges in (4 bytes each).
    """

    vector: np.ndarray
    transmitted_elements: int


class RowPayloads:
    """The compressed form of a batch of row vectors.

    Concrete subclasses hold either a dense reconstruction
    (:class:`DenseRowPayloads`) or a sparse index/value encoding
    (:class:`SparseRowPayloads`).  All expose:

    * :meth:`reconstruct` — the lossy ``(R, d)`` reconstruction;
    * :meth:`mean` — the average of the reconstructions (the quantity a
      compressed AllReduce produces), computed without materializing a dense
      ``(R, d)`` matrix on the sparse path;
    * :meth:`fold_residual` — turn the *input* matrix into the error-feedback
      residual ``input − reconstruction`` in place.
    """

    #: Float32-equivalent elements each row costs on the wire.
    elements_per_row: int

    def reconstruct(self) -> np.ndarray:
        raise NotImplementedError

    def mean(self) -> np.ndarray:
        raise NotImplementedError

    def fold_residual(self, work: np.ndarray) -> None:
        raise NotImplementedError


class DenseRowPayloads(RowPayloads):
    """Rows whose lossy form is still dense (quantization, sign+norm)."""

    def __init__(self, dense: np.ndarray, elements_per_row: int) -> None:
        self.dense = dense
        self.elements_per_row = int(elements_per_row)

    def reconstruct(self) -> np.ndarray:
        return self.dense

    def mean(self) -> np.ndarray:
        if self.dense.shape[0] == 0:
            # An empty participation round contributes nothing: the averaged
            # update is a zero delta, not a 0/0 NaN vector.
            return np.zeros(self.dense.shape[1], dtype=self.dense.dtype)
        return self.dense.mean(axis=0)

    def fold_residual(self, work: np.ndarray) -> None:
        np.subtract(work, self.dense, out=work)


class SparseRowPayloads(RowPayloads):
    """Rows encoded as (index, value) pairs with *exact* kept values.

    The invariant every sparsifying kernel upholds: ``values`` are the
    untouched input entries at ``indices`` (no re-quantization), so the
    error-feedback residual is simply the input with the kept entries zeroed
    — which :meth:`fold_residual` exploits to avoid a dense reconstruction.
    """

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        dimension: int,
        elements_per_row: int,
    ) -> None:
        if indices.shape != values.shape:
            raise ShapeError(
                f"indices {indices.shape} and values {values.shape} must align"
            )
        self.indices = indices
        self.values = values
        self.dimension = int(dimension)
        self.elements_per_row = int(elements_per_row)

    def reconstruct(self) -> np.ndarray:
        dense = np.zeros((self.indices.shape[0], self.dimension), dtype=self.values.dtype)
        np.put_along_axis(dense, self.indices, self.values, axis=1)
        return dense

    def mean(self) -> np.ndarray:
        # One flat scatter-add instead of a dense (R, d) reconstruction: the
        # average only needs Σ values per coordinate, and R·k ≪ R·d.
        accumulator = np.zeros(self.dimension, dtype=self.values.dtype)
        if self.indices.shape[0] == 0:
            # Empty participation round: a zero delta, not a 0/0 NaN vector.
            return accumulator
        np.add.at(accumulator, self.indices.ravel(), self.values.ravel())
        accumulator /= self.indices.shape[0]
        return accumulator

    def fold_residual(self, work: np.ndarray) -> None:
        np.put_along_axis(work, self.indices, 0.0, axis=1)


class Compressor:
    """Base class: lossy row-wise compression with true size accounting.

    Subclasses implement :meth:`compress_rows` (the vectorized kernel) and
    :meth:`transmitted_elements` (float32-equivalent elements one row of
    length ``dimension`` puts on the wire — the number the fabric multiplies
    by 4 to charge payload bytes).
    """

    name = "compressor"

    def compress_rows(self, matrix: np.ndarray) -> RowPayloads:
        """Compress every row of a ``(R, d)`` matrix."""
        raise NotImplementedError

    def transmitted_elements(self, dimension: int) -> int:
        """Float32-equivalent elements transmitted per row of length ``dimension``."""
        raise NotImplementedError

    def bind_layout(self, layout: Sequence) -> None:
        """Attach a :class:`~repro.nn.plane.SlotLayout` list (layer-wise kernels)."""

    # -- legacy single-vector API ---------------------------------------------

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        """Compress one flat vector (the original strategy-wrapper API)."""
        vector = np.asarray(vector)
        if vector.dtype not in (np.float32, np.float64):
            vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise ShapeError(f"compress expects a flat vector, got shape {vector.shape}")
        if vector.size == 0:
            return CompressedPayload(vector.copy(), 0)
        payloads = self.compress_rows(vector[None, :])
        return CompressedPayload(
            payloads.reconstruct()[0].copy(), payloads.elements_per_row
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    # Dtype-preserving for the two plane dtypes: a float32 (K, d) drift matrix
    # is compressed as-is (no silent full-matrix promotion copy); anything
    # else is normalized to the float64 reference dtype.
    matrix = np.asarray(matrix)
    if matrix.dtype not in (np.float32, np.float64):
        matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ShapeError(f"compress_rows expects a (R, d) matrix, got shape {matrix.shape}")
    return matrix


class QuantizationCompressor(Compressor):
    """Uniform symmetric quantization to ``levels`` levels per sign.

    Each row is scaled to its own max magnitude and rounded to the nearest of
    ``levels`` representable magnitudes per sign; all-zero rows stay exactly
    zero.  The payload per row is ``bits``-bit codes plus one float32 scale.
    Quantization is idempotent: the row maximum is exactly representable, so
    re-compressing a reconstruction reproduces it bit-for-bit.

    >>> q = QuantizationCompressor(levels=2)
    >>> row = np.array([[0.0, 1.0, -0.6, 0.2]])
    >>> q.compress_rows(row).reconstruct()
    array([[ 0. ,  1. , -0.5,  0. ]])
    """

    name = "quantization"

    def __init__(self, bits: int = 8, levels: Optional[int] = None) -> None:
        if not 1 <= int(bits) <= 32:
            raise ConfigurationError(f"bits must lie in [1, 32], got {bits}")
        if levels is None:
            levels = 2 ** (int(bits) - 1) - 1
            if levels < 1:
                raise ConfigurationError(
                    f"bits={bits} yields no representable level; use bits >= 2 or pass levels"
                )
            self.bits = int(bits)
        else:
            if int(levels) < 1:
                raise ConfigurationError(f"levels must be >= 1, got {levels}")
            # Signed range −levels..levels needs ceil(log2(2·levels + 1)) bits.
            self.bits = max(1, math.ceil(math.log2(2 * int(levels) + 1)))
        self.levels = int(levels)

    def compress_rows(self, matrix: np.ndarray) -> RowPayloads:
        matrix = _as_matrix(matrix)
        if matrix.shape[1] == 0:
            return DenseRowPayloads(matrix.copy(), 0)
        scales = np.max(np.abs(matrix), axis=1, keepdims=True)
        safe = np.where(scales > 0.0, scales, 1.0)
        # Association matters for idempotence: codes/levels puts the row
        # maximum at exactly 1.0, so the reconstruction's scale equals the
        # input's and a second compression round-trips bit-for-bit.
        quantized = np.round(matrix / safe * self.levels)
        quantized /= self.levels
        quantized *= safe
        quantized[np.broadcast_to(scales == 0.0, quantized.shape)] = 0.0
        return DenseRowPayloads(quantized, self.transmitted_elements(matrix.shape[1]))

    def transmitted_elements(self, dimension: int) -> int:
        if dimension == 0:
            return 0
        return int(np.ceil(dimension * self.bits / 32.0)) + 1  # plus the scale

    def __repr__(self) -> str:
        return f"QuantizationCompressor(bits={self.bits}, levels={self.levels})"


def _keep_count(dimension: int, fraction: float) -> int:
    return min(int(dimension), max(1, int(round(dimension * fraction))))


def _negated_magnitudes(matrix: np.ndarray, scratch: Optional[np.ndarray]) -> np.ndarray:
    """−|matrix| as float32, written into ``scratch`` (reallocated on shape change).

    Shared by the magnitude-sparsifying kernels.  Negated so top-k selection
    partitions for the *smallest* ``keep`` entries from the front: gradient
    drifts are frequently mostly-zero (dead ReLU units, fresh residuals), and
    introselect degenerates badly when the pivot lands inside a huge block of
    duplicate zeros — which is exactly where ``kth = d − keep`` sits on such
    data.  Partitioning the negated values at ``kth = keep − 1`` keeps the
    pivot among the (distinct) large magnitudes and stays ~10× faster on
    sparse drifts; float32 halves the selection's memory traffic.  Only the
    *choice* of coordinates sees float32 granularity — transmitted values are
    always the exact float64 input entries.
    """
    if scratch is None or scratch.shape != matrix.shape:
        scratch = np.empty(matrix.shape, dtype=np.float32)
    np.abs(matrix, out=scratch, casting="unsafe")
    np.negative(scratch, out=scratch)
    return scratch


def _top_magnitude_indices(negated: np.ndarray, keep: int) -> np.ndarray:
    """Per-row indices of the ``keep`` largest magnitudes (from ``−|x|``)."""
    dimension = negated.shape[1]
    if keep >= dimension:
        return np.broadcast_to(np.arange(dimension), negated.shape).copy()
    partitioned = np.argpartition(negated, keep - 1, axis=1)
    return np.ascontiguousarray(partitioned[:, :keep])


def _validate_fraction(fraction: float) -> float:
    if not 0.0 < float(fraction) <= 1.0:
        raise ConfigurationError(f"fraction must lie in (0, 1], got {fraction}")
    return float(fraction)


class TopKCompressor(Compressor):
    """Top-k sparsification: keep each row's ``k`` largest-magnitude entries.

    The payload per row is ``k`` (index, value) pairs — two float32
    equivalents each — capped at the dense size ``d``: when ``k ≥ d`` the
    whole row is kept and charged as a dense vector, never more.

    Hot-path note: the selection runs on cached float32 negated magnitudes
    (see :func:`_negated_magnitudes` — repeated calls on same-shaped matrices
    allocate nothing), which more than halves the dominant ``argpartition``
    cost on a ``(K, d)`` drift matrix while the transmitted values stay the
    exact float64 input entries (the sparse payloads' exact-value invariant).
    """

    name = "topk"

    def __init__(self, fraction: float = 0.1) -> None:
        self.fraction = _validate_fraction(fraction)
        self._magnitude_scratch: Optional[np.ndarray] = None

    def _indices(self, matrix: np.ndarray, keep: int) -> np.ndarray:
        if keep >= matrix.shape[1]:
            return np.broadcast_to(np.arange(matrix.shape[1]), matrix.shape).copy()
        self._magnitude_scratch = _negated_magnitudes(matrix, self._magnitude_scratch)
        return _top_magnitude_indices(self._magnitude_scratch, keep)

    def compress_rows(self, matrix: np.ndarray) -> RowPayloads:
        matrix = _as_matrix(matrix)
        dimension = matrix.shape[1]
        keep = _keep_count(dimension, self.fraction)
        indices = self._indices(matrix, keep)
        values = np.take_along_axis(matrix, indices, axis=1)
        return SparseRowPayloads(
            indices, values, dimension, self.transmitted_elements(dimension)
        )

    def transmitted_elements(self, dimension: int) -> int:
        if dimension == 0:
            return 0
        return min(2 * _keep_count(dimension, self.fraction), int(dimension))

    def __repr__(self) -> str:
        return f"TopKCompressor(fraction={self.fraction})"


class RandomKCompressor(TopKCompressor):
    """Random-k sparsification with a coordinated seed.

    Sender and receiver draw the kept coordinates from a shared seeded stream,
    so only the ``k`` values (plus one element standing in for the seed /
    round counter) travel — no indices.  The kernel keeps one private
    generator whose draws advance per call, making repeated runs (and the
    sequential/batched engines, which compress at identical sync points)
    reproduce the same coordinate sequence.
    """

    name = "randomk"

    def __init__(self, fraction: float = 0.1, seed: int = 0) -> None:
        super().__init__(fraction)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def _indices(self, matrix: np.ndarray, keep: int) -> np.ndarray:
        dimension = matrix.shape[1]
        if keep >= dimension:
            return np.broadcast_to(np.arange(dimension), matrix.shape).copy()
        draws = self._rng.random(matrix.shape)
        return np.argpartition(draws, keep, axis=1)[:, :keep]

    def transmitted_elements(self, dimension: int) -> int:
        if dimension == 0:
            return 0
        return min(_keep_count(dimension, self.fraction) + 1, int(dimension))

    def __repr__(self) -> str:
        return f"RandomKCompressor(fraction={self.fraction}, seed={self.seed})"


class SignCompressor(Compressor):
    """Sign + norm compression (1-bit SGD): ``sign(row) · mean(|row|)``.

    Every entry collapses to its sign, scaled by the row's mean magnitude so
    the reconstruction is unbiased in ℓ1; the payload is one bit per element
    plus one float32 scale.  Exactly-zero entries reconstruct to zero.
    """

    name = "signsgd"

    def compress_rows(self, matrix: np.ndarray) -> RowPayloads:
        matrix = _as_matrix(matrix)
        if matrix.shape[1] == 0:
            return DenseRowPayloads(matrix.copy(), 0)
        scales = np.mean(np.abs(matrix), axis=1, keepdims=True)
        dense = np.sign(matrix) * scales
        return DenseRowPayloads(dense, self.transmitted_elements(matrix.shape[1]))

    def transmitted_elements(self, dimension: int) -> int:
        if dimension == 0:
            return 0
        return int(np.ceil(dimension / 32.0)) + 1  # sign bits plus the scale


class LayerwiseTopKCompressor(Compressor):
    """Top-k applied independently inside every layer slot of a parameter plane.

    Global top-k lets one large layer starve all others of budget; layer-wise
    communication (L-FGADMM) instead gives each layer array its own
    ``max(1, round(size · fraction))`` entries.  The kernel needs the model's
    flat-storage layout — a list of :class:`~repro.nn.plane.SlotLayout` —
    which the cluster binds from its workers' parameter plane
    (:meth:`bind_layout`); compressing without a bound layout is a
    configuration error.
    """

    name = "layerwise-topk"

    def __init__(self, fraction: float = 0.1, layout: Optional[Sequence] = None) -> None:
        self.fraction = _validate_fraction(fraction)
        self._layout: Optional[List] = None
        self._magnitude_scratch: Optional[np.ndarray] = None
        if layout is not None:
            self.bind_layout(layout)

    def bind_layout(self, layout: Sequence) -> None:
        layout = list(layout)
        if not layout:
            raise ConfigurationError("layer-wise compression needs a non-empty layout")
        self._layout = layout

    def _require_layout(self, dimension: int) -> List:
        if self._layout is None:
            raise ConfigurationError(
                "LayerwiseTopKCompressor has no bound layout; call bind_layout() "
                "with the model's ParameterPlane.parameter_layout() first"
            )
        covered = sum(slot.size for slot in self._layout)
        if covered != dimension:
            raise ShapeError(
                f"layout covers {covered} scalars but the rows have {dimension}"
            )
        return self._layout

    def compress_rows(self, matrix: np.ndarray) -> RowPayloads:
        matrix = _as_matrix(matrix)
        dimension = matrix.shape[1]
        layout = self._require_layout(dimension)
        # One cached float32 negated-magnitude pass over the whole matrix;
        # every per-slot selection then uses the same duplicate-safe
        # partition direction as TopKCompressor (see _negated_magnitudes).
        self._magnitude_scratch = _negated_magnitudes(matrix, self._magnitude_scratch)
        index_chunks = []
        value_chunks = []
        for slot in layout:
            block = matrix[:, slot.offset : slot.offset + slot.size]
            keep = _keep_count(slot.size, self.fraction)
            local = _top_magnitude_indices(
                self._magnitude_scratch[:, slot.offset : slot.offset + slot.size], keep
            )
            index_chunks.append(local + slot.offset)
            value_chunks.append(np.take_along_axis(block, local, axis=1))
        indices = np.concatenate(index_chunks, axis=1)
        values = np.concatenate(value_chunks, axis=1)
        return SparseRowPayloads(
            indices, values, dimension, self.transmitted_elements(dimension)
        )

    def transmitted_elements(self, dimension: int) -> int:
        if dimension == 0:
            return 0
        layout = self._require_layout(dimension)
        return sum(
            min(2 * _keep_count(slot.size, self.fraction), int(slot.size))
            for slot in layout
        )

    def __repr__(self) -> str:
        bound = self._layout is not None
        return f"LayerwiseTopKCompressor(fraction={self.fraction}, bound={bound})"
