"""Cluster-level compression state: reference model and error-feedback memory.

The kernels in :mod:`repro.compression.kernels` are pure functions of a
``(R, d)`` matrix; what makes compression a *protocol* feature is the state
around them, and that state lives here, owned by the
:class:`~repro.distributed.cluster.SimulatedCluster`:

* the **reference model** ``w_ref`` — the last globally shared parameter
  vector.  Workers never upload raw parameters; they upload the (compressible)
  drift ``w^{(k)} − w_ref``, and every ``broadcast_parameters`` refreshes the
  reference, so all strategies — FDA's triggered syncs included — share one
  consistent drift convention;
* the **error-feedback residual matrix** — one ``(K, d)`` matrix (in the
  plane's dtype) whose
  row ``k`` is worker ``k``'s accumulated compression error.  Because the
  memory is row-indexed, a masked update (:meth:`ClusterCompression.compress_update`
  with ``rows``) touches exactly the participating rows: non-participating
  workers keep their residuals bit-untouched, which is what makes partial
  participation and selective communication compose with error feedback.

The two protocol entry points are :meth:`ClusterCompression.synchronize` (the
compressed full-model AllReduce behind ``cluster.synchronize``) and
:meth:`ClusterCompression.gather_models` (the compressed client→server upload
round behind FedOpt/FedProx/SCAFFOLD aggregation).  Both charge the fabric
with the kernel's *transmitted* element count, so topology link ledgers and
network seconds reflect compressed payloads, not ``4·d``.

>>> import numpy as np
>>> from repro.compression.config import CompressionConfig
>>> state = ClusterCompression(
...     CompressionConfig("topk", ratio=0.5, error_feedback=True),
...     num_workers=2, dimension=4,
... )
>>> drifts = np.array([[1.0, -3.0, 0.5, 2.0], [0.0, 0.1, -0.2, 0.05]])
>>> payloads = state.compress_update(drifts, rows=np.array([0]))
>>> payloads.reconstruct()                      # only row 0 was compressed
array([[ 0., -3.,  0.,  2.]])
>>> state.residual_matrix[0]                    # row 0 keeps the dropped mass
array([1. , 0. , 0.5, 0. ])
>>> state.residual_matrix[1]                    # row 1 is bit-untouched
array([0., 0., 0., 0.])
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.backend import resolve_dtype
from repro.compression.config import CompressionConfig, make_compressor
from repro.compression.kernels import Compressor, RowPayloads
from repro.exceptions import ShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.distributed.cluster import SimulatedCluster


class ClusterCompression:
    """Compression state for one cluster: kernel, reference, residual memory.

    Constructed from a :class:`~repro.compression.config.CompressionConfig`
    or a ready :class:`~repro.compression.kernels.Compressor` instance (the
    legacy strategy-wrapper path).  ``layout`` — the workers' parameter-plane
    slot layout — is forwarded to layer-wise kernels.
    """

    def __init__(
        self,
        spec: Union[CompressionConfig, Compressor],
        num_workers: int,
        dimension: int,
        layout=None,
        dtype=None,
    ) -> None:
        if isinstance(spec, Compressor):
            self.config: Optional[CompressionConfig] = None
            self.compressor = spec
            error_feedback = False
        else:
            self.config = spec
            self.compressor = make_compressor(spec)
            error_feedback = spec.error_feedback
        if layout is not None:
            self.compressor.bind_layout(layout)
        self.error_feedback = bool(error_feedback)
        self.num_workers = int(num_workers)
        self.dimension = int(dimension)
        # The residual memory and drift scratch live in the owning cluster's
        # plane dtype so error feedback never promotes a float32 plane.
        self.dtype = resolve_dtype(dtype)
        self._residuals: Optional[np.ndarray] = (
            np.zeros((self.num_workers, self.dimension), dtype=self.dtype)
            if self.error_feedback
            else None
        )
        self._reference: Optional[np.ndarray] = None
        # (K, d) drift scratch for the no-error-feedback synchronize path
        # (with EF the residual matrix itself is the accumulator); lazily
        # allocated so clusters that never synchronize pay nothing.
        self._drift_scratch: Optional[np.ndarray] = None

    # -- description ------------------------------------------------------------

    @property
    def label(self) -> str:
        """Compact description for names, reports, and persisted results."""
        if self.config is not None:
            return self.config.describe()
        return self.compressor.name

    @property
    def residual_matrix(self) -> Optional[np.ndarray]:
        """The live ``(K, d)`` error-feedback memory (``None`` without EF)."""
        return self._residuals

    @property
    def transmitted_elements(self) -> int:
        """Float32-equivalent elements one worker's model payload costs."""
        return self.compressor.transmitted_elements(self.dimension)

    # -- the reference model -----------------------------------------------------

    def set_reference(self, flat: np.ndarray) -> None:
        """Install the globally shared model the next drifts are taken against."""
        flat = np.asarray(flat, dtype=self.dtype)
        if flat.shape != (self.dimension,):
            raise ShapeError(
                f"reference must have shape ({self.dimension},), got {flat.shape}"
            )
        self._reference = flat.copy()

    def reference(self, cluster: "SimulatedCluster") -> np.ndarray:
        """The current reference, lazily initialized to the cluster average.

        Strategies normally establish it by broadcasting the initial model at
        ``attach``; a bare cluster that synchronizes without ever broadcasting
        falls back to the current average (zero drift on the first sync).
        """
        if self._reference is None:
            self._reference = cluster.average_parameters()
        return self._reference

    # -- the compression step ----------------------------------------------------

    def compress_update(
        self, drifts: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> RowPayloads:
        """Compress drift rows, folding error-feedback memory in and out.

        ``drifts`` is the full ``(K, d)`` drift matrix (never mutated);
        ``rows`` optionally selects the participating workers.  With error
        feedback, each participating row's payload is built from
        ``drift + residual`` and its residual becomes exactly the untransmitted
        remainder; rows outside ``rows`` are neither read nor written.
        """
        drifts = np.asarray(drifts, dtype=self.dtype)
        if drifts.ndim != 2 or drifts.shape[1] != self.dimension:
            raise ShapeError(
                f"drifts must be (K, {self.dimension}), got {drifts.shape}"
            )
        active = drifts if rows is None else drifts[rows]
        if not self.error_feedback:
            return self.compressor.compress_rows(active)
        residuals = self._residuals if rows is None else self._residuals[rows]
        work = active + residuals
        payloads = self.compressor.compress_rows(work)
        payloads.fold_residual(work)  # in place: work becomes the new residual
        if rows is None:
            self._residuals[...] = work
        else:
            self._residuals[rows] = work
        return payloads

    # -- protocol entry points ---------------------------------------------------

    def synchronize(
        self,
        cluster: "SimulatedCluster",
        include_buffers: bool = True,
        category: Optional[str] = None,
    ) -> np.ndarray:
        """One compressed full-model synchronization (the AllReduce path).

        Every worker uploads its compressed drift from the reference; the
        averaged reconstruction is added to the reference and installed in
        every row of the parameter matrix.  The fabric is charged the
        *compressed* payload per worker (the kernel's transmitted elements);
        non-trainable buffers, when requested, are averaged exactly and
        charged uncompressed like the plain path (they are running statistics,
        orders of magnitude smaller than the model).
        """
        from repro.distributed.cluster import CATEGORY_MODEL

        category = category or CATEGORY_MODEL
        reference = self.reference(cluster)
        # The synchronization hot path works entirely in preallocated (K, d)
        # storage: with error feedback the residual matrix itself accumulates
        # ``residual + (w − w_ref)`` in place (the payload values are captured
        # before fold_residual zeroes/subtracts the transmitted part, turning
        # the accumulator into the new residual); without it a cached drift
        # scratch holds the subtraction.  Sync-every-step protocols therefore
        # allocate nothing per round beyond the k-sized payload arrays.
        if self.error_feedback:
            work = self._residuals
            np.add(work, cluster.parameter_matrix, out=work)
            np.subtract(work, reference, out=work)
        else:
            if self._drift_scratch is None:
                self._drift_scratch = np.empty(
                    (self.num_workers, self.dimension), dtype=self.dtype
                )
            work = self._drift_scratch
            np.subtract(cluster.parameter_matrix, reference, out=work)
        payloads = self.compressor.compress_rows(work)
        weights = cluster.normalized_aggregation_weights()
        if weights is None:
            average_delta = payloads.mean()
        else:
            # Population data-size weights (zero on a partial cohort's unbound
            # slots): the server averages the reconstructed drifts weighted by
            # the bound clients' shard sizes.
            average_delta = weights.astype(self.dtype) @ payloads.reconstruct()
        if self.error_feedback:
            payloads.fold_residual(work)  # the accumulator becomes the residual
        cluster.charge_allreduce(
            cluster.model_dimension, category, compression=self.compressor
        )
        new_global = reference + average_delta
        cluster.parameter_matrix[...] = new_global
        if include_buffers and cluster.buffer_matrix.shape[1]:
            buffer_average = cluster.average_buffers()
            cluster.charge_allreduce(int(buffer_average.size), category)
            cluster.buffer_matrix[...] = buffer_average
        self._reference = new_global
        cluster.synchronization_count += 1
        return new_global

    def gather_models(
        self,
        cluster: "SimulatedCluster",
        reference: Optional[np.ndarray] = None,
        category: Optional[str] = None,
    ) -> np.ndarray:
        """One compressed client→server upload round.

        Returns the ``(K, d)`` matrix of client models *as the server sees
        them* — ``reference + reconstructed drift`` per row — and charges the
        fabric one compressed full-model collective.  Server-side aggregators
        (FedOpt/FedProx/SCAFFOLD) consume the result in place of the raw
        parameter matrix.
        """
        from repro.distributed.cluster import CATEGORY_MODEL

        category = category or CATEGORY_MODEL
        if reference is None:
            reference = self.reference(cluster)
        else:
            reference = np.asarray(reference, dtype=self.dtype)
        drifts = cluster.parameter_matrix - reference
        payloads = self.compress_update(drifts)
        cluster.charge_allreduce(
            cluster.model_dimension, category, compression=self.compressor
        )
        return reference + payloads.reconstruct()

    def __repr__(self) -> str:
        return (
            f"ClusterCompression({self.label}, K={self.num_workers}, "
            f"d={self.dimension}, error_feedback={self.error_feedback})"
        )
