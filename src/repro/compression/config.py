"""Declarative compression configuration and the kernel factory.

Everything above the kernels — :class:`~repro.experiments.setup.WorkloadConfig`,
the CLI, sweeps, persisted :class:`~repro.experiments.run.RunResult` records —
describes compression as data, not objects: a :class:`CompressionConfig`
naming the kernel, its knob (``ratio`` for the sparsifiers, ``bits`` for
quantization), and whether per-worker error-feedback memory is kept.
:func:`get_compression` normalizes the spellings callers use (a bare kernel
name, a config, ``None``/``"none"``), and :func:`make_compressor` builds the
actual :class:`~repro.compression.kernels.Compressor`.

>>> config = get_compression("topk")
>>> config.describe()
'topk(ratio=0.1)'
>>> get_compression(CompressionConfig("quantization", bits=4, error_feedback=True)).describe()
'quantization(bits=4)+ef'
>>> get_compression("none") is None and get_compression(None) is None
True
>>> make_compressor(config).name
'topk'
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Union

from repro.compression.kernels import (
    Compressor,
    LayerwiseTopKCompressor,
    QuantizationCompressor,
    RandomKCompressor,
    SignCompressor,
    TopKCompressor,
)
from repro.exceptions import ConfigurationError

#: Kernel names accepted by :class:`CompressionConfig` / the CLI.
NAMED_COMPRESSORS = ("quantization", "topk", "randomk", "signsgd", "layerwise-topk")

#: Kernels whose knob is ``ratio`` (kept fraction) rather than ``bits``.
_SPARSIFIERS = ("topk", "randomk", "layerwise-topk")


@dataclass(frozen=True)
class CompressionConfig:
    """One compression setting, serializable and hashable.

    ``compressor`` names the kernel (:data:`NAMED_COMPRESSORS`); ``ratio`` is
    the kept fraction for the sparsifiers, ``bits`` the width for
    quantization (each ignored by kernels that do not use it);
    ``error_feedback`` keeps a per-worker residual matrix on the cluster so
    the dropped mass re-enters later payloads; ``seed`` feeds the
    coordinated random-k stream.
    """

    compressor: str = "topk"
    ratio: float = 0.1
    bits: int = 8
    error_feedback: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.compressor not in NAMED_COMPRESSORS:
            raise ConfigurationError(
                f"unknown compressor {self.compressor!r}; known: {sorted(NAMED_COMPRESSORS)}"
            )
        if not 0.0 < float(self.ratio) <= 1.0:
            raise ConfigurationError(f"ratio must lie in (0, 1], got {self.ratio}")
        # bits=1 leaves no representable quantization level (the kernel-level
        # levels= escape hatch is not exposed here), so reject it eagerly —
        # configs must fail where they are defined, not mid-sweep.
        if not 2 <= int(self.bits) <= 32:
            raise ConfigurationError(f"bits must lie in [2, 32], got {self.bits}")

    def describe(self) -> str:
        """Compact label used by reports and persisted results.

        Only the knob the named kernel actually reads is shown — ``ratio``
        for the sparsifiers, ``bits`` for quantization, nothing for sign+norm
        (whose payload is fixed at one bit per element plus a scale).
        """
        if self.compressor in _SPARSIFIERS:
            knob = f"ratio={self.ratio:g}"
        elif self.compressor == "quantization":
            knob = f"bits={self.bits}"
        else:
            knob = ""
        suffix = "+ef" if self.error_feedback else ""
        return f"{self.compressor}({knob}){suffix}" if knob else f"{self.compressor}{suffix}"

    def with_error_feedback(self, error_feedback: bool = True) -> "CompressionConfig":
        """A copy of this config with error feedback toggled."""
        return replace(self, error_feedback=bool(error_feedback))

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (for persisted results and sweep records)."""
        return {
            "compressor": self.compressor,
            "ratio": self.ratio,
            "bits": self.bits,
            "error_feedback": self.error_feedback,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CompressionConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            compressor=str(payload.get("compressor", "topk")),
            ratio=float(payload.get("ratio", 0.1)),
            bits=int(payload.get("bits", 8)),
            error_feedback=bool(payload.get("error_feedback", False)),
            seed=int(payload.get("seed", 0)),
        )


#: Anything callers may pass where a compression setting is expected.
CompressionSpec = Union[None, str, CompressionConfig]


def get_compression(spec: CompressionSpec) -> Optional[CompressionConfig]:
    """Resolve a compression spec into a :class:`CompressionConfig` (or ``None``).

    Accepts ``None`` / ``"none"`` (no compression), a kernel name with default
    knobs, or an explicit config (returned as-is).
    """
    if spec is None:
        return None
    if isinstance(spec, CompressionConfig):
        return spec
    name = str(spec)
    if name == "none":
        return None
    return CompressionConfig(compressor=name)


def make_compressor(config: CompressionConfig) -> Compressor:
    """Instantiate the kernel a config describes.

    The layer-wise kernel comes back *unbound*; the cluster binds the model's
    parameter layout before first use (see
    :class:`~repro.compression.state.ClusterCompression`).
    """
    if config.compressor == "quantization":
        return QuantizationCompressor(bits=config.bits)
    if config.compressor == "topk":
        return TopKCompressor(fraction=config.ratio)
    if config.compressor == "randomk":
        return RandomKCompressor(fraction=config.ratio, seed=config.seed)
    if config.compressor == "signsgd":
        return SignCompressor()
    if config.compressor == "layerwise-topk":
        return LayerwiseTopKCompressor(fraction=config.ratio)
    raise ConfigurationError(  # pragma: no cover - __post_init__ screens names
        f"unknown compressor {config.compressor!r}"
    )
