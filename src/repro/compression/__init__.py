"""Unified compression & selective communication on the ``(K, d)`` plane.

FDA shrinks communication by choosing *when* to synchronize; this package
shrinks *what* every synchronization moves, for every strategy at once.  It
has three layers:

* :mod:`repro.compression.kernels` — vectorized :class:`Compressor` kernels
  whose ``compress_rows`` operates row-wise on whole ``(K, d)`` matrices
  (quantization, top-k, random-k, sign+norm, and layer-wise top-k driven by
  :class:`~repro.nn.plane.ParameterPlane` layouts), each reporting the true
  transmitted size of its payload;
* :mod:`repro.compression.config` — the declarative
  :class:`CompressionConfig` threaded through workloads, sweeps, persistence,
  and the CLI;
* :mod:`repro.compression.state` — :class:`ClusterCompression`, the per-cluster
  reference model and ``(K, d)`` error-feedback residual matrix behind the
  compressed collective paths (``cluster.synchronize`` /
  ``cluster.gather_models``).

Because the integration point is the collective layer of
:class:`~repro.distributed.cluster.SimulatedCluster` — not a strategy
wrapper — FDA, BSP, Local-SGD, FedOpt, FedProx, and SCAFFOLD all compress
their sync payloads uniformly, on either execution engine, and the topology
fabric charges compressed bytes per link.
"""

from repro.compression.config import (
    NAMED_COMPRESSORS,
    CompressionConfig,
    CompressionSpec,
    get_compression,
    make_compressor,
)
from repro.compression.kernels import (
    CompressedPayload,
    Compressor,
    DenseRowPayloads,
    LayerwiseTopKCompressor,
    QuantizationCompressor,
    RandomKCompressor,
    RowPayloads,
    SignCompressor,
    SparseRowPayloads,
    TopKCompressor,
)
from repro.compression.state import ClusterCompression

__all__ = [
    # kernels
    "Compressor",
    "CompressedPayload",
    "RowPayloads",
    "DenseRowPayloads",
    "SparseRowPayloads",
    "QuantizationCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "SignCompressor",
    "LayerwiseTopKCompressor",
    # configuration
    "CompressionConfig",
    "CompressionSpec",
    "NAMED_COMPRESSORS",
    "get_compression",
    "make_compressor",
    # cluster state
    "ClusterCompression",
]
