"""Stochastic gradient descent with optional (Nesterov) momentum.

The paper trains the DenseNet models with SGD + Nesterov momentum (momentum
0.9, learning rate 0.1) and weight decay 1e-4; this implementation follows the
standard Sutskever formulation of Nesterov momentum used by Keras.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.base import Optimizer, check_beta

#: Cache-block length (elements; 1 MiB at float64, 512 KiB at float32) for the momentum-free
#: in-place update.  Large flat vectors / stacked (K, d) matrices are updated
#: chunk by chunk so the scratch chunk stays cache-resident instead of
#: streaming one extra full-size pass through DRAM; the arithmetic per
#: element is unchanged, so results are bit-identical to the unchunked form.
_CHUNK_ELEMENTS = 131_072


class SGD(Optimizer):
    """SGD, optionally with classical or Nesterov momentum and L2 weight decay.

    All arithmetic is elementwise, so the same instance updates either one
    flat ``(d,)`` vector or a stacked ``(K, d)`` worker matrix (the batched
    engine's layout); velocity/scratch buffers adopt whichever shape is used.
    """

    def __init__(
        self,
        learning_rate=0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, name)
        self.momentum = check_beta(momentum, "momentum") if momentum else 0.0
        self.nesterov = bool(nesterov)
        if self.nesterov and self.momentum == 0.0:
            raise ConfigurationError("nesterov=True requires a non-zero momentum")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.weight_decay = float(weight_decay)
        self._velocity: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None

    def _update(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> np.ndarray:
        if self.weight_decay:
            grads = grads + self.weight_decay * params
        if self.momentum == 0.0:
            return params - learning_rate * grads
        if (
            self._velocity is None
            or self._velocity.shape != params.shape
            or self._velocity.dtype != params.dtype
        ):
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity - learning_rate * grads
        if self.nesterov:
            return params + self.momentum * self._velocity - learning_rate * grads
        return params + self._velocity

    def _update_inplace(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> None:
        # Bit-identical to _update: every expression below mirrors the copy
        # path's evaluation order up to scalar-multiply/add commutativity,
        # only the destination arrays differ (the persistent scratch buffer
        # replaces the fresh temporaries per step).
        if self.momentum == 0.0 and params.flags.c_contiguous and grads.flags.c_contiguous:
            self._plain_update_chunked(params, grads, learning_rate)
            return
        if (
            self._scratch is None
            or self._scratch.shape != params.shape
            or self._scratch.dtype != params.dtype
        ):
            self._scratch = np.empty_like(params)
        if self.weight_decay:
            # lr * (grads + wd * params), accumulated in the scratch buffer.
            scaled = np.multiply(params, self.weight_decay, out=self._scratch)
            scaled += grads
            scaled *= learning_rate
        else:
            scaled = np.multiply(grads, learning_rate, out=self._scratch)
        if self.momentum == 0.0:
            params -= scaled
            return
        if (
            self._velocity is None
            or self._velocity.shape != params.shape
            or self._velocity.dtype != params.dtype
        ):
            self._velocity = np.zeros_like(params)
        velocity = self._velocity
        velocity *= self.momentum
        velocity -= scaled
        if self.nesterov:
            params += self.momentum * velocity
            params -= scaled
        else:
            params += velocity

    def _plain_update_chunked(
        self, params: np.ndarray, grads: np.ndarray, learning_rate: float
    ) -> None:
        """Momentum-free update, cache-blocked over ``_CHUNK_ELEMENTS``.

        Computes ``params -= lr * (grads [+ wd * params])`` with exactly the
        same per-element operations as the scratch-buffer form, but one chunk
        at a time: the scratch chunk is written and immediately re-read while
        still cache-hot, which removes a full extra array pass through DRAM.
        That is what keeps the batched engine's single ``(K, d)`` update (a
        25 MB matrix at the paper's larger models) off the bandwidth ceiling.
        """
        if params.size == 0:  # degenerate d=0 model: a no-op, like the scratch path
            return
        chunk = min(params.size, _CHUNK_ELEMENTS)
        if (
            self._scratch is None
            or self._scratch.shape != (chunk,)
            or self._scratch.dtype != params.dtype
        ):
            self._scratch = np.empty(chunk, dtype=params.dtype)
        flat_params = params.reshape(-1)
        flat_grads = grads.reshape(-1)
        for start in range(0, flat_params.size, chunk):
            chunk_params = flat_params[start : start + chunk]
            chunk_grads = flat_grads[start : start + chunk]
            scratch = self._scratch[: chunk_params.size]
            if self.weight_decay:
                np.multiply(chunk_params, self.weight_decay, out=scratch)
                scratch += chunk_grads
                scratch *= learning_rate
            else:
                np.multiply(chunk_grads, learning_rate, out=scratch)
            chunk_params -= scratch

    # -- stacked-execution hooks (see optim.base.StackedOptimizer) -------------

    def _stacked_column_names(self):
        return ("momentum", "weight_decay")

    def _stacked_state_names(self, optimizers):
        # Momentum-free rows ride along in the velocity path bit-exactly
        # (their velocity row is exactly ``-scaled`` and momentum 0 wipes it
        # again each step), so one matrix serves mixed-momentum clusters; a
        # fully momentum-free cluster needs no state at all.
        return ("velocity",) if any(o.momentum for o in optimizers) else ()

    def _stacked_bind(self, name, row):
        if name == "velocity":
            self._velocity = row

    def _stacked_validate(self, optimizers):
        if len({o.nesterov for o in optimizers}) > 1:
            return [
                "nesterov and classical momentum change the shape of the update "
                "rule and cannot be mixed across workers"
            ]
        return []

    def _stacked_update(
        self, stacked, params, grads, state, columns, learning_rate, timesteps
    ):
        # Per-row arithmetic mirrors _update_inplace exactly: the (A, 1)
        # hyper-parameter columns broadcast as per-row scalars, so every
        # element sees the same operations in the same order as its worker's
        # own sequential update (chunking in the plain path does not change
        # per-element arithmetic).
        del timesteps
        momentum = columns["momentum"]
        weight_decay = columns["weight_decay"]
        if (
            "velocity" not in state
            and params.flags.c_contiguous
            and grads.flags.c_contiguous
            and np.ptp(learning_rate) == 0.0
            and np.ptp(weight_decay) == 0.0
            and float(weight_decay.flat[0]) == self.weight_decay
        ):
            # Homogeneous momentum-free rows: the sequential cache-blocked
            # update applies verbatim to the whole (A, d) block (identical
            # per-element arithmetic, one less full-size scratch pass).  The
            # chunked path reads ``self.weight_decay`` (``self`` is worker
            # 0's optimizer), so it is only taken when the covered rows'
            # uniform decay actually equals it — a masked subset can be
            # internally uniform yet differ from worker 0.
            self._plain_update_chunked(params, grads, float(learning_rate.flat[0]))
            return
        scaled = stacked.scratch("sgd-scaled", params.shape[0])
        if weight_decay.any():
            np.multiply(params, weight_decay, out=scaled)
            scaled += grads
            scaled *= learning_rate
        else:
            np.multiply(grads, learning_rate, out=scaled)
        velocity = state.get("velocity")
        if velocity is None:
            params -= scaled
            return
        velocity *= momentum
        velocity -= scaled
        if self.nesterov:
            params += momentum * velocity
            params -= scaled
        else:
            params += velocity

    def _reset_state(self) -> None:
        self._velocity = None
        self._scratch = None

    def _state(self) -> Dict[str, object]:
        return {
            "momentum": self.momentum,
            "nesterov": self.nesterov,
            "weight_decay": self.weight_decay,
        }
