"""Optimizer base class operating on flat parameter vectors.

All optimizers in this library are stateless with respect to the model object:
they consume the current flat parameter vector and the matching flat gradient
vector and return the updated parameters.  This mirrors the paper's
``Optimize(w, B)`` abstraction and lets the same optimizer drive any model.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.optim.schedules import LearningRateSchedule, resolve_schedule


class Optimizer:
    """Base class for local optimizers.

    Subclasses implement :meth:`_update` which maps ``(params, grads, lr)`` to
    the new parameter vector; this base class handles learning-rate schedules,
    step counting, and input validation.
    """

    def __init__(self, learning_rate=0.01, name: Optional[str] = None) -> None:
        self.schedule: LearningRateSchedule = resolve_schedule(learning_rate)
        self.name = name or type(self).__name__.lower()
        self.step_count = 0

    # -- public API ----------------------------------------------------------

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Return the updated parameter vector for one optimization step."""
        params = np.asarray(params, dtype=np.float64)
        grads = np.asarray(grads, dtype=np.float64)
        if params.shape != grads.shape:
            raise ShapeError(
                f"params and grads must have the same shape, got {params.shape} and {grads.shape}"
            )
        if params.ndim != 1:
            raise ShapeError(f"optimizers operate on flat vectors, got shape {params.shape}")
        learning_rate = self.schedule(self.step_count)
        updated = self._update(params, grads, learning_rate)
        self.step_count += 1
        return updated

    def reset(self) -> None:
        """Clear all internal state (momentum buffers, step count)."""
        self.step_count = 0
        self._reset_state()

    @property
    def learning_rate(self) -> float:
        """The learning rate that will be used for the next step."""
        return self.schedule(self.step_count)

    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the optimizer state."""
        return {"step_count": self.step_count, **self._state()}

    # -- subclass hooks ------------------------------------------------------

    def _update(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> np.ndarray:
        raise NotImplementedError

    def _reset_state(self) -> None:
        """Subclasses clear momentum/variance buffers here."""

    def _state(self) -> Dict[str, object]:
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.schedule!r}, steps={self.step_count})"


def check_beta(value: float, name: str) -> float:
    """Validate an exponential-decay coefficient in [0, 1)."""
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
    return value
