"""Optimizer base class operating on flat parameter vectors.

All optimizers in this library are stateless with respect to the model object:
they consume the current flat parameter vector and the matching flat gradient
vector.  This mirrors the paper's ``Optimize(w, B)`` abstraction and lets the
same optimizer drive any model.

Two entry points exist:

* :meth:`Optimizer.step` — the historical copy-returning API: validates its
  inputs on every call and returns a *new* parameter vector.
* :meth:`Optimizer.step_inplace` — the hot path used by the workers: updates
  ``params`` (a view into the model's contiguous parameter plane) in place.
  Input validation is hoisted behind a one-time check so that schedule lookup
  and the arithmetic of :meth:`_update_inplace` dominate the per-call cost.
  The gradient vector is treated as read-only by every built-in optimizer.

Both entry points also accept a stacked ``(K, d)`` parameter matrix with a
matching gradient matrix — the batched execution engine's layout, where row
``k`` is worker ``k``'s flat vector.  Every built-in update rule is purely
elementwise over (params, grads, state), so one call on the matrix performs
``K`` independent per-worker updates with arithmetic identical to ``K``
separate flat-vector calls; moment/scratch buffers simply take the matrix
shape.

:class:`StackedOptimizer` builds on that to drive ``K`` *per-worker*
optimizer instances as one stacked update: scalar hyper-parameters become
per-row ``(K, 1)`` broadcast columns (heterogeneously configured workers
share one vectorized step), state matrices' rows are bound back into the
wrapped optimizers (direct per-worker stepping and stacked stepping share
storage), step counts stay per-worker, and :meth:`StackedOptimizer.step_rows`
updates an arbitrary subset of rows — the partial-participation path of the
batched engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import resolve_dtype
from repro.exceptions import ConfigurationError, ShapeError
from repro.optim.schedules import LearningRateSchedule, resolve_schedule


class Optimizer:
    """Base class for local optimizers.

    Subclasses implement :meth:`_update` which maps ``(params, grads, lr)`` to
    the new parameter vector and, for the zero-copy fast path,
    :meth:`_update_inplace` which applies the identical update directly to
    ``params``; this base class handles learning-rate schedules, step
    counting, and input validation.
    """

    def __init__(self, learning_rate=0.01, name: Optional[str] = None) -> None:
        self.schedule: LearningRateSchedule = resolve_schedule(learning_rate)
        self.name = name or type(self).__name__.lower()
        self.step_count = 0
        self._validated_key: Optional[Tuple] = None
        self._bound_shape: Optional[Tuple[int, ...]] = None

    # -- public API ----------------------------------------------------------

    @staticmethod
    def _validate(params: np.ndarray, grads: np.ndarray) -> None:
        if params.shape != grads.shape:
            raise ShapeError(
                f"params and grads must have the same shape, got {params.shape} and {grads.shape}"
            )
        if params.ndim not in (1, 2):
            raise ShapeError(
                "optimizers operate on flat vectors (d,) or stacked worker "
                f"matrices (K, d), got shape {params.shape}"
            )

    def _require_bound_shape(self, shape: Tuple[int, ...]) -> None:
        """Reject a parameter-layout change on an optimizer that has stepped.

        Moment/velocity buffers silently re-zero on a shape change while
        ``step_count`` (bias correction, schedules) keeps counting — a
        quietly wrong trajectory.  Reusing a stepped optimizer with a
        different model or a ``(K, d)`` stacking layout requires an explicit
        :meth:`reset`.  Enforced by both stepping entry points.
        """
        if (
            self.step_count > 0
            and self._bound_shape is not None
            and shape != self._bound_shape
        ):
            raise ShapeError(
                f"optimizer state is bound to parameter shape {self._bound_shape}, "
                f"got {shape}; call reset() before reusing this optimizer with a "
                "different layout"
            )

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Return the updated parameter vector for one optimization step.

        Inputs are converted to ndarrays; float32 arrays step in float32
        (the plane's dtype is authoritative), everything else is promoted
        to the float64 reference dtype.
        """
        params = np.asarray(params)
        grads = np.asarray(grads)
        if params.dtype not in (np.float32, np.float64) or grads.dtype != params.dtype:
            params = np.asarray(params, dtype=np.float64)
            grads = np.asarray(grads, dtype=np.float64)
        self._validate(params, grads)
        self._require_bound_shape(params.shape)
        self._bound_shape = params.shape
        learning_rate = self.schedule(self.step_count)
        updated = self._update(params, grads, learning_rate)
        self.step_count += 1
        return updated

    def step_inplace(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Apply one optimization step directly to ``params`` and return it.

        ``params`` must be a float32 or float64 ndarray — either a flat
        ``(d,)`` vector (typically the model's parameter-plane view) or a
        stacked ``(K, d)`` worker matrix (the batched engine's layout,
        updated as ``K`` independent per-worker steps); it is mutated.
        ``grads`` must be an ndarray of the same shape and dtype (the
        plane's dtype — mixed-dtype stepping would silently change
        arithmetic precision) and is never modified.  Validation
        is memoized on the shape/dtype of both inputs so that repeated calls
        pay only for the schedule lookup and the update itself; any change in
        layout re-validates.  Other input types are rejected outright — an
        ``asarray`` copy of ``params`` would silently swallow the in-place
        update, and a converted ``grads`` would change arithmetic precision
        (use :meth:`step` for convertible inputs).
        """
        key = (
            getattr(params, "shape", None),
            getattr(params, "dtype", None),
            getattr(grads, "shape", None),
            getattr(grads, "dtype", None),
        )
        if key != self._validated_key:
            for name, array in (("params", params), ("grads", grads)):
                if not isinstance(array, np.ndarray) or array.dtype not in (
                    np.float32,
                    np.float64,
                ):
                    raise ShapeError(
                        f"step_inplace requires a float32/float64 ndarray for {name}; "
                        "use step() for other inputs"
                    )
            if params.dtype != grads.dtype:
                raise ShapeError(
                    "step_inplace requires params and grads of the same dtype, "
                    f"got {params.dtype} and {grads.dtype}"
                )
            self._validate(params, grads)
            self._require_bound_shape(params.shape)
            self._validated_key = key
            self._bound_shape = params.shape
        learning_rate = self.schedule(self.step_count)
        self._update_inplace(params, grads, learning_rate)
        self.step_count += 1
        return params

    def reset(self) -> None:
        """Clear all internal state (momentum buffers, step count)."""
        self.step_count = 0
        self._validated_key = None
        self._bound_shape = None
        self._reset_state()

    @property
    def learning_rate(self) -> float:
        """The learning rate that will be used for the next step."""
        return self.schedule(self.step_count)

    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the optimizer state."""
        return {"step_count": self.step_count, **self._state()}

    # -- subclass hooks ------------------------------------------------------

    def _update(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> np.ndarray:
        raise NotImplementedError

    def _update_inplace(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> None:
        """In-place variant of :meth:`_update`; must produce identical values.

        The default funnels through :meth:`_update` so that third-party
        subclasses implementing only the copy path keep working; the built-in
        optimizers override it with in-place arithmetic over persistent
        scratch buffers (the weight-decay variants still materialize one
        temporary for the decay term).
        """
        params[...] = self._update(params, grads, learning_rate)

    def _reset_state(self) -> None:
        """Subclasses clear momentum/variance buffers here."""

    def _state(self) -> Dict[str, object]:
        return {}

    # -- stacked-execution hooks (see :class:`StackedOptimizer`) --------------

    def _stacked_column_names(self) -> Tuple[str, ...]:
        """Scalar hyper-parameters that become per-row ``(K, 1)`` columns."""
        return ()

    def _stacked_state_names(self, optimizers: Sequence["Optimizer"]) -> Tuple[str, ...]:
        """Names of the per-row ``(K, d)`` state matrices the update rule needs."""
        del optimizers
        return ()

    def _stacked_bind(self, name: str, row: np.ndarray) -> None:
        """Adopt row ``row`` of the stacked state matrix ``name`` as own state."""

    def _stacked_validate(self, optimizers: Sequence["Optimizer"]) -> List[str]:
        """Problems that make these optimizers impossible to stack (empty = OK).

        Per-row *columns* absorb scalar hyper-parameter differences; this hook
        reports *structural* differences that change the shape of the update
        rule itself (e.g. Nesterov vs classical momentum).
        """
        del optimizers
        return []

    def _stacked_update(
        self,
        stacked: "StackedOptimizer",
        params: np.ndarray,
        grads: np.ndarray,
        state: Dict[str, np.ndarray],
        columns: Dict[str, np.ndarray],
        learning_rate: np.ndarray,
        timesteps: np.ndarray,
    ) -> None:
        """Vectorized update of ``(A, d)`` parameter rows; per-row arithmetic
        must equal :meth:`_update_inplace` on each row separately.

        The base class has no stacked rule; :class:`StackedOptimizer` rejects
        optimizer types that do not override this.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.schedule!r}, steps={self.step_count})"


class StackedOptimizer:
    """``K`` per-worker optimizers driven as one stacked ``(K, d)`` update.

    The batched execution engine stores all workers' parameters as rows of one
    ``(K, d)`` matrix; this wrapper makes the workers' *optimizers* match that
    layout without changing what any single worker computes:

    * **state is per-row.**  Momentum/velocity/moment buffers are ``(K, d)``
      matrices whose row ``k`` is *bound into* worker ``k``'s own optimizer,
      so stepping a worker directly (``worker.local_step``, drift-control
      local epochs) and stepping it through the stacked update read and write
      the same memory — the two drive modes compose instead of excluding each
      other.
    * **hyper-parameters are per-row columns.**  Learning rate, momentum,
      weight decay, and the Adam betas become ``(K, 1)`` broadcast columns, so
      heterogeneously configured workers share one vectorized step whose
      per-row arithmetic equals each worker's own sequential update
      (broadcasting a column is elementwise multiplication by that row's
      scalar — bit-identical).
    * **step counts stay per-worker.**  Each wrapped optimizer's
      ``step_count`` remains the single source of truth: schedules and Adam
      bias correction follow each worker's own count, which is what keeps
      partial participation — rows having stepped different numbers of times
      — exactly as correct as the sequential engine's per-worker optimizers.

    :meth:`step_rows` applies one update to a subset of rows.  With
    ``rows=None`` (full participation) it operates directly on the live
    matrices; otherwise the caller passes gathered ``(A, d)`` blocks aligned
    with ``rows`` and the state rows are gathered/scattered around the update.
    """

    def __init__(
        self,
        optimizers: Sequence[Optimizer],
        dimension: int,
        dtype=None,
    ) -> None:
        if not optimizers:
            raise ConfigurationError("StackedOptimizer needs at least one optimizer")
        if dimension < 0:
            raise ConfigurationError(f"dimension must be non-negative, got {dimension}")
        reference = optimizers[0]
        mixed = sorted(
            {type(o).__name__ for o in optimizers if type(o) is not type(reference)}
        )
        if mixed:
            raise ConfigurationError(
                "stacked execution needs one optimizer type across all workers; "
                f"got {type(reference).__name__} and {', '.join(mixed)}"
            )
        if type(reference)._stacked_update is Optimizer._stacked_update:
            raise ConfigurationError(
                f"{type(reference).__name__} has no stacked (K, d) update rule; "
                "use execution='sequential' with this optimizer"
            )
        stepped = [i for i, optimizer in enumerate(optimizers) if optimizer.step_count]
        if stepped:
            raise ConfigurationError(
                "stacked execution requires fresh optimizers (their state becomes "
                f"rows of shared (K, d) matrices); optimizers {stepped} have "
                "already stepped — call reset() or construct new optimizers"
            )
        problems = reference._stacked_validate(optimizers)
        if problems:
            raise ConfigurationError(
                "cannot stack these optimizers: " + "; ".join(problems)
            )
        self.optimizers: List[Optimizer] = list(optimizers)
        self.num_workers = len(self.optimizers)
        self.dimension = int(dimension)
        # State, hyper-parameter columns, and scratch all live in the plane's
        # dtype so the stacked update never promotes a float32 (K, d) matrix.
        self.dtype = resolve_dtype(dtype)
        self._columns: Dict[str, np.ndarray] = {
            name: np.array(
                [[float(getattr(optimizer, name))] for optimizer in self.optimizers],
                dtype=self.dtype,
            )
            for name in reference._stacked_column_names()
        }
        # Per-row state matrices; each row is handed back to its worker's
        # optimizer so the per-worker and stacked paths share storage.
        self._state: Dict[str, np.ndarray] = {}
        for name in reference._stacked_state_names(self.optimizers):
            matrix = np.zeros((self.num_workers, self.dimension), dtype=self.dtype)
            self._state[name] = matrix
            for row, optimizer in zip(matrix, self.optimizers):
                optimizer._stacked_bind(name, row)
        # Masked-path gather buffers, allocated on the first masked step so
        # full-participation runs never pay for them.
        self._state_scratch: Optional[Dict[str, np.ndarray]] = None
        self._workspace: Dict[str, np.ndarray] = {}

    @property
    def step_counts(self) -> np.ndarray:
        """Per-worker step counts (reads the wrapped optimizers)."""
        return np.array([optimizer.step_count for optimizer in self.optimizers])

    def scratch(self, name: str, count: int) -> np.ndarray:
        """A reusable ``(count, d)`` workspace block for the update kernels."""
        buffer = self._workspace.get(name)
        if buffer is None:
            buffer = np.empty((self.num_workers, self.dimension), dtype=self.dtype)
            self._workspace[name] = buffer
        return buffer[:count]

    def step_rows(
        self,
        params: np.ndarray,
        grads: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One optimization step on the selected worker rows, in place.

        ``rows=None`` steps every worker: ``params``/``grads`` must be the
        full ``(K, d)`` matrices.  Otherwise ``rows`` is an integer index
        array and ``params``/``grads`` are ``(len(rows), d)`` blocks holding
        those workers' rows (typically the engine's gather scratch); state
        rows are gathered before and scattered back after the update.
        """
        active = (
            self.optimizers
            if rows is None
            else [self.optimizers[int(k)] for k in rows]
        )
        count = len(active)
        expected = (count, self.dimension)
        if params.shape != expected or grads.shape != expected:
            raise ShapeError(
                f"step_rows expects params/grads of shape {expected}, got "
                f"{params.shape} and {grads.shape}"
            )
        learning_rate = np.array(
            [[optimizer.schedule(optimizer.step_count)] for optimizer in active],
            dtype=self.dtype,
        )
        # Timesteps stay float64: the update rules only ever read them back
        # as Python scalars (Adam's per-row bias-correction loop).
        timesteps = np.array(
            [[float(optimizer.step_count + 1)] for optimizer in active]
        )
        if rows is None:
            state = self._state
            columns = self._columns
        else:
            if self._state_scratch is None:
                self._state_scratch = {
                    name: np.empty_like(matrix)
                    for name, matrix in self._state.items()
                }
            state = {}
            for name, matrix in self._state.items():
                block = self._state_scratch[name][:count]
                # mode="clip": the rows index live workers by construction,
                # and numpy's bounds-checking take path is several times
                # slower on wide matrices.
                np.take(matrix, rows, axis=0, out=block, mode="clip")
                state[name] = block
            columns = {name: column[rows] for name, column in self._columns.items()}
        self.optimizers[0]._stacked_update(
            self, params, grads, state, columns, learning_rate, timesteps
        )
        if rows is not None:
            for name, matrix in self._state.items():
                matrix[rows] = state[name]
        for optimizer in active:
            optimizer.step_count += 1
        return params

    def __repr__(self) -> str:
        return (
            f"StackedOptimizer({type(self.optimizers[0]).__name__}, "
            f"K={self.num_workers}, d={self.dimension})"
        )


def check_beta(value: float, name: str) -> float:
    """Validate an exponential-decay coefficient in [0, 1)."""
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
    return value
