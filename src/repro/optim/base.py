"""Optimizer base class operating on flat parameter vectors.

All optimizers in this library are stateless with respect to the model object:
they consume the current flat parameter vector and the matching flat gradient
vector.  This mirrors the paper's ``Optimize(w, B)`` abstraction and lets the
same optimizer drive any model.

Two entry points exist:

* :meth:`Optimizer.step` — the historical copy-returning API: validates its
  inputs on every call and returns a *new* parameter vector.
* :meth:`Optimizer.step_inplace` — the hot path used by the workers: updates
  ``params`` (a view into the model's contiguous parameter plane) in place.
  Input validation is hoisted behind a one-time check so that schedule lookup
  and the arithmetic of :meth:`_update_inplace` dominate the per-call cost.
  The gradient vector is treated as read-only by every built-in optimizer.

Both entry points also accept a stacked ``(K, d)`` parameter matrix with a
matching gradient matrix — the batched execution engine's layout, where row
``k`` is worker ``k``'s flat vector.  Every built-in update rule is purely
elementwise over (params, grads, state), so one call on the matrix performs
``K`` independent per-worker updates with arithmetic identical to ``K``
separate flat-vector calls; moment/scratch buffers simply take the matrix
shape.  One optimizer instance then serves a whole lockstep cluster (all
workers share hyper-parameters and step count, exactly as ``K`` freshly
constructed copies would).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.optim.schedules import LearningRateSchedule, resolve_schedule


class Optimizer:
    """Base class for local optimizers.

    Subclasses implement :meth:`_update` which maps ``(params, grads, lr)`` to
    the new parameter vector and, for the zero-copy fast path,
    :meth:`_update_inplace` which applies the identical update directly to
    ``params``; this base class handles learning-rate schedules, step
    counting, and input validation.
    """

    def __init__(self, learning_rate=0.01, name: Optional[str] = None) -> None:
        self.schedule: LearningRateSchedule = resolve_schedule(learning_rate)
        self.name = name or type(self).__name__.lower()
        self.step_count = 0
        self._validated_key: Optional[Tuple] = None
        self._bound_shape: Optional[Tuple[int, ...]] = None

    # -- public API ----------------------------------------------------------

    @staticmethod
    def _validate(params: np.ndarray, grads: np.ndarray) -> None:
        if params.shape != grads.shape:
            raise ShapeError(
                f"params and grads must have the same shape, got {params.shape} and {grads.shape}"
            )
        if params.ndim not in (1, 2):
            raise ShapeError(
                "optimizers operate on flat vectors (d,) or stacked worker "
                f"matrices (K, d), got shape {params.shape}"
            )

    def _require_bound_shape(self, shape: Tuple[int, ...]) -> None:
        """Reject a parameter-layout change on an optimizer that has stepped.

        Moment/velocity buffers silently re-zero on a shape change while
        ``step_count`` (bias correction, schedules) keeps counting — a
        quietly wrong trajectory.  Reusing a stepped optimizer with a
        different model or a ``(K, d)`` stacking layout requires an explicit
        :meth:`reset`.  Enforced by both stepping entry points.
        """
        if (
            self.step_count > 0
            and self._bound_shape is not None
            and shape != self._bound_shape
        ):
            raise ShapeError(
                f"optimizer state is bound to parameter shape {self._bound_shape}, "
                f"got {shape}; call reset() before reusing this optimizer with a "
                "different layout"
            )

    def step(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Return the updated parameter vector for one optimization step."""
        params = np.asarray(params, dtype=np.float64)
        grads = np.asarray(grads, dtype=np.float64)
        self._validate(params, grads)
        self._require_bound_shape(params.shape)
        self._bound_shape = params.shape
        learning_rate = self.schedule(self.step_count)
        updated = self._update(params, grads, learning_rate)
        self.step_count += 1
        return updated

    def step_inplace(self, params: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Apply one optimization step directly to ``params`` and return it.

        ``params`` must be a float64 ndarray — either a flat ``(d,)`` vector
        (typically the model's parameter-plane view) or a stacked ``(K, d)``
        worker matrix (the batched engine's layout, updated as ``K``
        independent per-worker steps); it is mutated.  ``grads`` must be a
        float64 ndarray of the same shape and is never modified.  Validation
        is memoized on the shape/dtype of both inputs so that repeated calls
        pay only for the schedule lookup and the update itself; any change in
        layout re-validates.  Other input types are rejected outright — an
        ``asarray`` copy of ``params`` would silently swallow the in-place
        update, and a converted ``grads`` would change arithmetic precision
        (use :meth:`step` for convertible inputs).
        """
        key = (
            getattr(params, "shape", None),
            getattr(params, "dtype", None),
            getattr(grads, "shape", None),
            getattr(grads, "dtype", None),
        )
        if key != self._validated_key:
            for name, array in (("params", params), ("grads", grads)):
                if not isinstance(array, np.ndarray) or array.dtype != np.float64:
                    raise ShapeError(
                        f"step_inplace requires a float64 ndarray for {name}; "
                        "use step() for other inputs"
                    )
            self._validate(params, grads)
            self._require_bound_shape(params.shape)
            self._validated_key = key
            self._bound_shape = params.shape
        learning_rate = self.schedule(self.step_count)
        self._update_inplace(params, grads, learning_rate)
        self.step_count += 1
        return params

    def reset(self) -> None:
        """Clear all internal state (momentum buffers, step count)."""
        self.step_count = 0
        self._validated_key = None
        self._bound_shape = None
        self._reset_state()

    @property
    def learning_rate(self) -> float:
        """The learning rate that will be used for the next step."""
        return self.schedule(self.step_count)

    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the optimizer state."""
        return {"step_count": self.step_count, **self._state()}

    # -- subclass hooks ------------------------------------------------------

    def _update(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> np.ndarray:
        raise NotImplementedError

    def _update_inplace(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> None:
        """In-place variant of :meth:`_update`; must produce identical values.

        The default funnels through :meth:`_update` so that third-party
        subclasses implementing only the copy path keep working; the built-in
        optimizers override it with in-place arithmetic over persistent
        scratch buffers (the weight-decay variants still materialize one
        temporary for the decay term).
        """
        params[...] = self._update(params, grads, learning_rate)

    def _reset_state(self) -> None:
        """Subclasses clear momentum/variance buffers here."""

    def _state(self) -> Dict[str, object]:
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.schedule!r}, steps={self.step_count})"


def check_beta(value: float, name: str) -> float:
    """Validate an exponential-decay coefficient in [0, 1)."""
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
    return value
