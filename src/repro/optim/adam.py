"""Adam and AdamW local optimizers.

Adam is used for the LeNet-5 / VGG16* experiments and AdamW (decoupled weight
decay, Loshchilov & Hutter) for the ConvNeXt fine-tuning experiments, matching
the paper's hyper-parameter choices.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.base import Optimizer, check_beta


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments (Kingma & Ba defaults).

    Elementwise throughout: accepts a flat ``(d,)`` vector or a stacked
    ``(K, d)`` worker matrix (batched engine), with moment buffers taking the
    matching shape — ``K`` per-worker Adam updates in one call.
    """

    def __init__(
        self,
        learning_rate=0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, name)
        self.beta1 = check_beta(beta1, "beta1")
        self.beta2 = check_beta(beta2, "beta2")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._scratch_a: Optional[np.ndarray] = None
        self._scratch_b: Optional[np.ndarray] = None

    def _moments(self, params: np.ndarray) -> None:
        # Moments and scratch are allocated independently: stacked execution
        # (optim.base.StackedOptimizer) binds _m/_v to rows of shared (K, d)
        # matrices, and the scratch buffers must still materialize lazily on
        # the first direct per-worker step.
        if (
            self._m is None
            or self._m.shape != params.shape
            or self._m.dtype != params.dtype
        ):
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
        if (
            self._scratch_a is None
            or self._scratch_a.shape != params.shape
            or self._scratch_a.dtype != params.dtype
        ):
            self._scratch_a = np.empty_like(params)
            self._scratch_b = np.empty_like(params)

    def _update(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> np.ndarray:
        self._moments(params)
        timestep = self.step_count + 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * grads
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * grads * grads
        m_hat = self._m / (1.0 - self.beta1**timestep)
        v_hat = self._v / (1.0 - self.beta2**timestep)
        return params - learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def _update_inplace(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> None:
        # Bit-identical to _update: the moment updates land in the persistent
        # buffers and every temporary lands in one of two persistent scratch
        # vectors (zero steady-state allocations), with every expression
        # mirroring the copy path's evaluation order.
        self._moments(params)
        timestep = self.step_count + 1
        first, second, scratch_a, scratch_b = self._m, self._v, self._scratch_a, self._scratch_b
        first *= self.beta1
        first += np.multiply(grads, 1.0 - self.beta1, out=scratch_a)
        second *= self.beta2
        # (1 - beta2) * grads * grads evaluates left-to-right in the copy path.
        np.multiply(grads, 1.0 - self.beta2, out=scratch_a)
        second += np.multiply(scratch_a, grads, out=scratch_a)
        m_hat = np.divide(first, 1.0 - self.beta1**timestep, out=scratch_a)
        v_hat = np.divide(second, 1.0 - self.beta2**timestep, out=scratch_b)
        np.sqrt(v_hat, out=v_hat)
        v_hat += self.epsilon
        m_hat *= learning_rate
        m_hat /= v_hat
        params -= m_hat

    # -- stacked-execution hooks (see optim.base.StackedOptimizer) -------------

    def _stacked_column_names(self):
        return ("beta1", "beta2", "epsilon")

    def _stacked_state_names(self, optimizers):
        del optimizers
        return ("m", "v")

    def _stacked_bind(self, name, row):
        if name == "m":
            self._m = row
        elif name == "v":
            self._v = row

    def _stacked_update(
        self, stacked, params, grads, state, columns, learning_rate, timesteps
    ):
        # Mirrors _update_inplace with per-row (A, 1) columns; the bias
        # corrections use each row's own timestep, which is what keeps Adam
        # correct when rows have stepped different numbers of times (partial
        # participation).
        beta1 = columns["beta1"]
        beta2 = columns["beta2"]
        epsilon = columns["epsilon"]
        count = params.shape[0]
        first, second = state["m"], state["v"]
        scratch_a = stacked.scratch("adam-a", count)
        scratch_b = stacked.scratch("adam-b", count)
        first *= beta1
        first += np.multiply(grads, 1.0 - beta1, out=scratch_a)
        second *= beta2
        np.multiply(grads, 1.0 - beta2, out=scratch_a)
        second += np.multiply(scratch_a, grads, out=scratch_a)
        # The bias corrections are scalar pows per row, computed with Python
        # floats: numpy's vectorized float64 pow takes a different (SIMD) code
        # path than libm's and can differ in the last ulp, which would break
        # bit-parity with the per-worker sequential update.  The resulting
        # columns adopt the plane dtype so they never promote float32 rows.
        bias1 = np.array(
            [[1.0 - float(b) ** int(t)] for b, t in zip(beta1[:, 0], timesteps[:, 0])],
            dtype=params.dtype,
        )
        bias2 = np.array(
            [[1.0 - float(b) ** int(t)] for b, t in zip(beta2[:, 0], timesteps[:, 0])],
            dtype=params.dtype,
        )
        m_hat = np.divide(first, bias1, out=scratch_a)
        v_hat = np.divide(second, bias2, out=scratch_b)
        np.sqrt(v_hat, out=v_hat)
        v_hat += epsilon
        m_hat *= learning_rate
        m_hat /= v_hat
        params -= m_hat

    def _reset_state(self) -> None:
        self._m = None
        self._v = None
        self._scratch_a = None
        self._scratch_b = None

    def _state(self) -> Dict[str, object]:
        return {"beta1": self.beta1, "beta2": self.beta2, "epsilon": self.epsilon}


class AdamW(Adam):
    """Adam with decoupled weight decay (the ConvNeXt fine-tuning optimizer)."""

    def __init__(
        self,
        learning_rate=0.001,
        weight_decay: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, beta1, beta2, epsilon, name)
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.weight_decay = float(weight_decay)

    def _update(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> np.ndarray:
        updated = super()._update(params, grads, learning_rate)
        if self.weight_decay:
            updated = updated - learning_rate * self.weight_decay * params
        return updated

    def _update_inplace(self, params: np.ndarray, grads: np.ndarray, learning_rate: float) -> None:
        if not self.weight_decay:
            super()._update_inplace(params, grads, learning_rate)
            return
        # Decoupled decay uses the *pre-update* parameters, so materialize the
        # decay term before the Adam step mutates them.
        decay = learning_rate * self.weight_decay * params
        super()._update_inplace(params, grads, learning_rate)
        params -= decay

    def _stacked_column_names(self):
        return super()._stacked_column_names() + ("weight_decay",)

    def _stacked_update(
        self, stacked, params, grads, state, columns, learning_rate, timesteps
    ):
        weight_decay = columns["weight_decay"]
        if not weight_decay.any():
            super()._stacked_update(
                stacked, params, grads, state, columns, learning_rate, timesteps
            )
            return
        # Decoupled decay uses the *pre-update* parameters (same as the
        # sequential path); rows with zero decay subtract an exact zero.
        decay = (learning_rate * weight_decay) * params
        super()._stacked_update(
            stacked, params, grads, state, columns, learning_rate, timesteps
        )
        params -= decay

    def _state(self) -> Dict[str, object]:
        state = super()._state()
        state["weight_decay"] = self.weight_decay
        return state
