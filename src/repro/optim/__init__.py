"""Local and server (federated) optimizers.

Local optimizers update a worker's flat parameter vector from its flat
gradient vector (SGD with/without Nesterov momentum, Adam, AdamW — the three
the paper uses).  Server optimizers implement the FedOpt family (FedAvg,
FedAvgM, FedAdam, FedAdagrad, FedYogi) applied to the pseudo-gradient formed
by averaged client updates.
"""

from repro.optim.base import Optimizer, StackedOptimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.server import (
    FedAdagrad,
    FedAdam,
    FedAvg,
    FedAvgM,
    FedYogi,
    ServerOptimizer,
)
from repro.optim.schedules import (
    ConstantSchedule,
    CosineDecaySchedule,
    ExponentialDecaySchedule,
    LearningRateSchedule,
    StepDecaySchedule,
    resolve_schedule,
)

__all__ = [
    "Optimizer",
    "StackedOptimizer",
    "SGD",
    "Adam",
    "AdamW",
    "ServerOptimizer",
    "FedAvg",
    "FedAvgM",
    "FedAdam",
    "FedAdagrad",
    "FedYogi",
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "CosineDecaySchedule",
    "resolve_schedule",
]
