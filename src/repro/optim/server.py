"""Server-side (federated) optimizers — the FedOpt family.

FedAvg-style algorithms alternate E local epochs on each client with a server
update.  Following Reddi et al. ("Adaptive Federated Optimization", the
FedAdam paper cited by the FDA paper), the server treats the *negative average
client update*

    pseudo_gradient = w_global − mean_k(w_k)

as a gradient and applies a standard optimizer to it: plain averaging
(FedAvg), momentum (FedAvgM), Adam (FedAdam), Adagrad (FedAdagrad) or Yogi
(FedYogi).  These are the baselines FDA is compared against in every figure.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.optim.base import check_beta


class ServerOptimizer:
    """Base class for server optimizers.

    :meth:`aggregate` takes the current global parameter vector and the list
    of client parameter vectors produced by the latest round of local training
    and returns the new global parameters.
    """

    def __init__(self, learning_rate: float = 1.0, name: Optional[str] = None) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.name = name or type(self).__name__.lower()
        self.round_count = 0

    def aggregate(
        self,
        global_params: np.ndarray,
        client_params: Sequence[np.ndarray],
        weights: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Return the updated global parameters after one communication round.

        ``client_params`` is either a sequence of flat vectors or, on the
        zero-copy path, a ready ``(K, d)`` matrix (one row per client) which
        is averaged without stacking copies.  Inputs already in the plane's
        dtype (float32 or float64) aggregate in that dtype; anything else is
        promoted to the float64 reference dtype.

        ``weights`` (optional, one non-negative value per client) switches the
        client mean to the normalized weighted mean — the population plane's
        data-size aggregation.  ``None`` keeps the exact ``mean(axis=0)``
        path, bit-identical to the pre-weighting behaviour.
        """
        global_params = np.asarray(global_params)
        if global_params.dtype not in (np.float32, np.float64):
            global_params = np.asarray(global_params, dtype=np.float64)
        dtype = global_params.dtype
        if isinstance(client_params, np.ndarray) and client_params.ndim == 2:
            if client_params.shape[0] == 0:
                raise ShapeError("aggregate requires at least one client parameter vector")
            stacked = np.asarray(client_params, dtype=dtype)
        else:
            if len(client_params) == 0:
                raise ShapeError("aggregate requires at least one client parameter vector")
            stacked = np.stack([np.asarray(p, dtype=dtype) for p in client_params], axis=0)
        if stacked.shape[1:] != global_params.shape:
            raise ShapeError(
                f"client parameters of shape {stacked.shape[1:]} do not match the "
                f"global parameters of shape {global_params.shape}"
            )
        if weights is None:
            mean = stacked.mean(axis=0)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (stacked.shape[0],):
                raise ShapeError(
                    f"weights must provide one value per client "
                    f"({stacked.shape[0]}), got shape {weights.shape}"
                )
            if np.any(weights < 0.0) or not np.isfinite(weights).all():
                raise ConfigurationError("aggregation weights must be finite and >= 0")
            total = weights.sum()
            if total <= 0.0:
                raise ConfigurationError("aggregation weights must not sum to zero")
            mean = (weights / total).astype(dtype) @ stacked
        pseudo_gradient = global_params - mean
        updated = self._apply(global_params, pseudo_gradient)
        self.round_count += 1
        return updated

    def reset(self) -> None:
        """Clear internal state (momentum / adaptive accumulators)."""
        self.round_count = 0
        self._reset_state()

    # -- subclass hooks ------------------------------------------------------

    def _apply(self, global_params: np.ndarray, pseudo_gradient: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _reset_state(self) -> None:
        """Subclasses clear accumulators here."""

    def state_dict(self) -> Dict[str, object]:
        return {"round_count": self.round_count, "learning_rate": self.learning_rate}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.learning_rate}, rounds={self.round_count})"


class FedAvg(ServerOptimizer):
    """Plain federated averaging: the new global model is the client average."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(1.0, name)

    def _apply(self, global_params: np.ndarray, pseudo_gradient: np.ndarray) -> np.ndarray:
        return global_params - pseudo_gradient


class FedAvgM(ServerOptimizer):
    """FedAvg with server momentum (Hsu et al.), the paper's SGD-family baseline.

    The paper uses server momentum 0.9 and server learning rate 0.316.
    """

    def __init__(
        self,
        learning_rate: float = 0.316,
        momentum: float = 0.9,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, name)
        self.momentum = check_beta(momentum, "momentum")
        self._velocity: Optional[np.ndarray] = None

    def _apply(self, global_params: np.ndarray, pseudo_gradient: np.ndarray) -> np.ndarray:
        if self._velocity is None or self._velocity.shape != global_params.shape:
            self._velocity = np.zeros_like(global_params)
        self._velocity = self.momentum * self._velocity + pseudo_gradient
        return global_params - self.learning_rate * self._velocity

    def _reset_state(self) -> None:
        self._velocity = None


class _AdaptiveServerOptimizer(ServerOptimizer):
    """Shared bookkeeping for the adaptive FedOpt variants (Adam/Adagrad/Yogi)."""

    def __init__(
        self,
        learning_rate: float,
        beta1: float,
        beta2: float,
        tau: float,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, name)
        self.beta1 = check_beta(beta1, "beta1")
        self.beta2 = check_beta(beta2, "beta2")
        if tau <= 0:
            raise ConfigurationError(f"tau (adaptivity) must be positive, got {tau}")
        self.tau = float(tau)
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None

    def _ensure_state(self, params: np.ndarray) -> None:
        if self._m is None or self._m.shape != params.shape:
            self._m = np.zeros_like(params)
            self._v = np.full_like(params, self.tau**2)

    def _second_moment(self, pseudo_gradient: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _apply(self, global_params: np.ndarray, pseudo_gradient: np.ndarray) -> np.ndarray:
        self._ensure_state(global_params)
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * pseudo_gradient
        self._v = self._second_moment(pseudo_gradient)
        return global_params - self.learning_rate * self._m / (np.sqrt(self._v) + self.tau)

    def _reset_state(self) -> None:
        self._m = None
        self._v = None


class FedAdam(_AdaptiveServerOptimizer):
    """FedAdam (Reddi et al.), the paper's Adam-family FedOpt baseline."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.99,
        tau: float = 1e-3,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, beta1, beta2, tau, name)

    def _second_moment(self, pseudo_gradient: np.ndarray) -> np.ndarray:
        return self.beta2 * self._v + (1.0 - self.beta2) * pseudo_gradient**2


class FedAdagrad(_AdaptiveServerOptimizer):
    """FedAdagrad: accumulates the squared pseudo-gradients without decay."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        tau: float = 1e-3,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, beta1, 0.0, tau, name)

    def _second_moment(self, pseudo_gradient: np.ndarray) -> np.ndarray:
        return self._v + pseudo_gradient**2


class FedYogi(_AdaptiveServerOptimizer):
    """FedYogi: sign-controlled second-moment update (more stable than FedAdam)."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.99,
        tau: float = 1e-3,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(learning_rate, beta1, beta2, tau, name)

    def _second_moment(self, pseudo_gradient: np.ndarray) -> np.ndarray:
        squared = pseudo_gradient**2
        return self._v - (1.0 - self.beta2) * squared * np.sign(self._v - squared)
