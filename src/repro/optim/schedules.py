"""Learning-rate schedules.

A schedule maps the (0-based) optimizer step count to a learning rate.  Plain
floats are accepted everywhere a schedule is expected and are wrapped in
:class:`ConstantSchedule`.
"""

from __future__ import annotations

import math
from numbers import Real

from repro.exceptions import ConfigurationError


class LearningRateSchedule:
    """Base class: call with the current step count, get the learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantSchedule(LearningRateSchedule):
    """A fixed learning rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        self.base = float(learning_rate)

    def __call__(self, step: int) -> float:
        return self.base

    def __repr__(self) -> str:
        return f"ConstantSchedule({self.base})"


class StepDecaySchedule(LearningRateSchedule):
    """Multiply the learning rate by ``decay`` every ``every`` steps."""

    def __init__(self, learning_rate: float, every: int, decay: float = 0.1) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if every <= 0:
            raise ConfigurationError(f"every must be a positive step count, got {every}")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must lie in (0, 1], got {decay}")
        self.base = float(learning_rate)
        self.every = int(every)
        self.decay = float(decay)

    def __call__(self, step: int) -> float:
        return self.base * self.decay ** (step // self.every)

    def __repr__(self) -> str:
        return f"StepDecaySchedule({self.base}, every={self.every}, decay={self.decay})"


class ExponentialDecaySchedule(LearningRateSchedule):
    """Continuous exponential decay: ``lr = base * rate ** (step / scale)``."""

    def __init__(self, learning_rate: float, rate: float = 0.96, scale: int = 1000) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(f"rate must lie in (0, 1], got {rate}")
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.base = float(learning_rate)
        self.rate = float(rate)
        self.scale = int(scale)

    def __call__(self, step: int) -> float:
        return self.base * self.rate ** (step / self.scale)

    def __repr__(self) -> str:
        return f"ExponentialDecaySchedule({self.base}, rate={self.rate}, scale={self.scale})"


class CosineDecaySchedule(LearningRateSchedule):
    """Cosine annealing from the base learning rate down to ``minimum``."""

    def __init__(self, learning_rate: float, total_steps: int, minimum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if total_steps <= 0:
            raise ConfigurationError(f"total_steps must be positive, got {total_steps}")
        if minimum < 0:
            raise ConfigurationError(f"minimum must be non-negative, got {minimum}")
        self.base = float(learning_rate)
        self.total_steps = int(total_steps)
        self.minimum = float(minimum)

    def __call__(self, step: int) -> float:
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.minimum + (self.base - self.minimum) * cosine

    def __repr__(self) -> str:
        return (
            f"CosineDecaySchedule({self.base}, total_steps={self.total_steps}, "
            f"minimum={self.minimum})"
        )


def resolve_schedule(learning_rate) -> LearningRateSchedule:
    """Wrap a bare number in a :class:`ConstantSchedule`, pass schedules through."""
    if isinstance(learning_rate, LearningRateSchedule):
        return learning_rate
    if isinstance(learning_rate, Real) and not isinstance(learning_rate, bool):
        return ConstantSchedule(float(learning_rate))
    raise ConfigurationError(
        f"learning_rate must be a number or a LearningRateSchedule, got {learning_rate!r}"
    )
