"""Figure 7 — Training-accuracy progression and the generalization gap.

The paper's Figure 7 plots training accuracy over epochs for DenseNet on
CIFAR-10 and highlights that the FDA variants show an almost-zero gap between
training accuracy and the test-accuracy target when they reach it, whereas
Synchronous and FedAvgM overfit (large gap).  This benchmark records the
train/test accuracy history of every strategy and reports the final gaps.
"""

from benchmarks.conftest import print_grouped_results, run_spec, strategies_by_name
from repro.experiments.registry import figure7
from repro.experiments.reporting import format_run_history


def _run(quick):
    return run_spec(figure7(quick=quick))


def test_figure7_training_accuracy_progression(benchmark, quick):
    grouped = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_grouped_results("Figure 7: training-accuracy progression", grouped)

    results = grouped["iid"]
    print()
    for result in results:
        print(format_run_history(result, max_rows=8))
        gap = result.generalization_gap
        print(f"  -> generalization gap (train - test accuracy): "
              f"{'n/a' if gap is None else f'{gap:+.3f}'}\n")

    by_name = strategies_by_name(results)
    # Every strategy recorded a train-accuracy curve.
    for result in results:
        assert result.final_train_accuracy is not None

    # Shape: the FDA generalization gap is not (meaningfully) worse than the
    # Synchronous one — the paper reports it is typically much smaller.
    fda_gap = by_name["LinearFDA"].generalization_gap
    sync_gap = by_name["Synchronous"].generalization_gap
    assert fda_gap is not None and sync_gap is not None
    assert fda_gap <= sync_gap + 0.15
