"""Figure 8 — LeNet-5 on MNIST: varying the number of workers K and the threshold Θ."""

from benchmarks.sweep_helpers import (
    check_theta_trends,
    check_worker_trends,
    print_figure,
    run_figure_sweeps,
)
from repro.experiments.registry import figure8


def _run(quick):
    return run_figure_sweeps(figure8(quick=quick))


def test_figure8_lenet_varying_k_and_theta(benchmark, quick):
    theta_sweeps, worker_sweeps = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_figure("Figure 8: LeNet-5 on MNIST, varying K and Theta", theta_sweeps, worker_sweeps)
    check_theta_trends(theta_sweeps)
    check_worker_trends(worker_sweeps)
