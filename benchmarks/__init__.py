"""Paper-figure and perf-canary benchmarks.

Declared as a package so the intra-suite imports (``benchmarks.conftest``,
``benchmarks.bench_json``, ``benchmarks.sweep_helpers``) resolve under both
``python -m pytest`` and the bare ``pytest`` entry point (pytest inserts the
repo root, the package's parent, into ``sys.path``).
"""
