"""Shared runner for the K-and-Θ sweep figures (Figures 8-11).

Each of those figures has the same structure: the top half varies the number
of workers K at a fixed Θ for all strategies, the bottom half varies Θ at a
fixed K for the two FDA variants.  The shape checks shared by all four:

* communication decreases (weakly) as Θ grows, for both FDA variants;
* the number of synchronizations decreases (weakly) as Θ grows;
* Synchronous communication dwarfs FDA communication at every worker count;
* FDA/FedOpt communication grows with K while Synchronous per-step volume is
  flat in the paper's accounting (total volume may still vary with convergence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from benchmarks.conftest import print_sweep, run_workload
from repro.experiments.executor import SweepExecutor
from repro.experiments.registry import ExperimentSpec
from repro.experiments.sweep import SweepPoint, sweep_theta, sweep_workers
from repro.strategies.fda_strategy import FDAStrategy


def run_theta_sweeps(
    spec: ExperimentSpec, executor: Optional[SweepExecutor] = None
) -> Dict[str, List[SweepPoint]]:
    """Θ sweep at fixed K for both FDA variants."""
    workload = next(iter(spec.workloads.values()))
    sweeps = {}
    for variant in ("linear", "sketch"):
        sweeps[variant] = sweep_theta(
            workload, list(spec.fda_thetas), spec.run, variant=variant,
            executor=executor,
        )
    return sweeps


def run_worker_sweeps(
    spec: ExperimentSpec, executor: Optional[SweepExecutor] = None
) -> Dict[str, List[SweepPoint]]:
    """K sweep at the spec's central Θ for every strategy in the line-up."""
    workload = next(iter(spec.workloads.values()))
    sweeps = {}
    for name, factory in spec.strategy_factories.items():
        sweeps[name] = sweep_workers(
            workload, list(spec.worker_counts), spec.run, factory,
            executor=executor,
        )
    return sweeps


def check_theta_trends(sweeps: Dict[str, List[SweepPoint]]) -> None:
    """Larger Θ ⇒ (weakly) fewer synchronizations and no more sync traffic."""
    for variant, points in sweeps.items():
        ordered = sorted(points, key=lambda p: p.value)
        syncs = [p.synchronizations for p in ordered]
        assert all(b <= a + 1 for a, b in zip(syncs, syncs[1:])), (
            f"{variant}: synchronizations should not grow with Theta, got {syncs}"
        )
        model_bytes = [p.result.model_bytes for p in ordered]
        assert model_bytes[-1] <= model_bytes[0] + 1, (
            f"{variant}: model-sync traffic should shrink as Theta grows, got {model_bytes}"
        )


def check_worker_trends(sweeps: Dict[str, List[SweepPoint]]) -> None:
    """FDA stays far below Synchronous in communication at every K."""
    sync_points = {int(p.value): p for p in sweeps.get("Synchronous", [])}
    for name, points in sweeps.items():
        if "FDA" not in name:
            continue
        for point in points:
            sync = sync_points.get(int(point.value))
            if sync is None:
                continue
            assert point.communication_bytes < sync.communication_bytes, (
                f"{name} at K={point.value} used {point.communication_bytes} bytes, "
                f"Synchronous used {sync.communication_bytes}"
            )


def print_figure(title: str, theta_sweeps, worker_sweeps) -> None:
    print(f"\n=== {title} ===")
    for variant, points in theta_sweeps.items():
        print_sweep(f"Theta sweep ({variant}FDA)", points)
    for name, points in worker_sweeps.items():
        print_sweep(f"K sweep ({name})", points)


def run_figure_sweeps(spec: ExperimentSpec, executor: Optional[SweepExecutor] = None):
    """Run both sweeps for one figure spec.

    ``executor`` (a :class:`~repro.experiments.executor.SweepExecutor`) is
    shared across both sweeps when given, so one figure's cells can hit a
    populated run store and share memoized setup.
    """
    if executor is None:
        executor = SweepExecutor()
    theta_sweeps = run_theta_sweeps(spec, executor=executor)
    worker_sweeps = run_worker_sweeps(spec, executor=executor)
    return theta_sweeps, worker_sweeps
