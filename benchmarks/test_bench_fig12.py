"""Figure 12 — Empirical estimation of the variance threshold (Θ versus d).

The paper fits Θ ≈ c·d across learning tasks of increasing model dimension and
reports three slopes (FL / balanced / HPC deployment settings).  This
benchmark sweeps Θ for three workloads of increasing model dimension, picks
for each the cheapest Θ that still reaches the accuracy target, fits the
linear relationship through the origin, and checks it is a reasonable fit with
a positive slope (absolute slopes differ from the paper because the drift
magnitudes of the miniature models differ from the full-size TensorFlow ones).
"""

import numpy as np

from benchmarks.conftest import print_sweep
from repro.core.theta import PAPER_THETA_SLOPES, fit_theta_slope, theta_guideline
from repro.experiments.registry import figure12
from repro.experiments.sweep import sweep_theta


def _run(quick):
    spec = figure12(quick=quick)
    best_points = []
    all_sweeps = {}
    for label, workload in spec["workloads"]:
        dimension = workload.model_factory().num_parameters
        points = sweep_theta(workload, list(spec["theta_grid"]), spec["run"], variant="linear")
        all_sweeps[label] = points
        reached = [p for p in points if p.result.reached_target]
        candidates = reached or points
        best = min(candidates, key=lambda p: p.communication_bytes)
        best_points.append((label, dimension, best.value))
    return spec, all_sweeps, best_points


def test_figure12_theta_guideline(benchmark, quick):
    spec, all_sweeps, best_points = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)

    print("\n=== Figure 12: empirical Theta-vs-d estimation ===")
    for label, points in all_sweeps.items():
        print_sweep(f"{label} Theta sweep", points)
    print("\nbest Theta per task:")
    for label, dimension, theta in best_points:
        print(f"  {label:<10} d={dimension:<8} best Theta={theta}")

    dimensions = [dimension for _, dimension, _ in best_points]
    thetas = [theta for _, _, theta in best_points]
    slope, r_squared = fit_theta_slope(dimensions, thetas)
    print(f"\nfitted slope: Theta ~ {slope:.3e} * d   (R^2 = {r_squared:.3f})")
    print("paper slopes for reference:", PAPER_THETA_SLOPES)
    for setting in PAPER_THETA_SLOPES:
        print(
            f"  paper guideline ({setting}): Theta(d=1e6) = "
            f"{theta_guideline(1_000_000, setting):.1f}"
        )

    assert slope > 0, "the best Theta must grow with the model dimension"
    assert np.isfinite(r_squared)
    # The best Theta for the largest model should not be smaller than the best
    # Theta for the smallest model (monotone trend underlying the linear fit).
    assert thetas[-1] >= thetas[0]
