"""Population-plane benchmark: round throughput must not scale with N.

The tentpole claim of the population plane is that simulating ``N`` logical
clients costs O(cohort) per round, not O(N): registration is O(1) descriptors,
per-round work touches only the sampled cohort, and resident client state is
bounded by the store budget (a function of the cohort size).  This benchmark
grows ``N`` 100× at a fixed cohort and asserts rounds/s stays flat (≤ 1.2×
degradation, the ISSUE's bar) while the resident high-water mark stays at
``2·cohort``.  A cohort=all parity cell rides along because it is cheap to
assert with clusters in hand: population mode over the workers' own shards
must be *bit-identical* to the fully materialized cluster.

Env knobs (CI uses both for the smoke leg):

* ``REPRO_BENCH_SMALL=1`` — shrink the N grid to [10⁴, 10⁵] and halve rounds.
* ``REPRO_BENCH_STRICT=0`` — downgrade the wall-clock ratio assertion to a
  warning (shared CI runners time noisily); the memory-bound and parity
  assertions stay hard everywhere.

Emits ``BENCH_population.json`` (sections ``scaling`` and ``parity``) for the
CI artifact trail.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.bench_json import emit_bench_section
from repro.data.datasets import Dataset
from repro.data.synthetic import gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.architectures import mlp
from repro.optim.adam import Adam
from repro.population import ClientPopulation, PopulationConfig
from repro.strategies.local_sgd import LocalSGDStrategy

SMALL = os.environ.get("REPRO_BENCH_SMALL", "0") == "1"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: Population sizes; 100× growth between the endpoints in either mode.
N_GRID = [10_000, 100_000] if SMALL else [10_000, 100_000, 1_000_000]
COHORT = 16
WARMUP_ROUNDS = 2
TIMED_ROUNDS = 5 if SMALL else 10
#: Allowed rounds/s degradation from the smallest to the largest N.
MAX_DEGRADATION = 1.2


def _make_cluster(num_workers: int, execution: str = "batched") -> SimulatedCluster:
    rng = np.random.default_rng(7)
    workers = []
    for worker_id in range(num_workers):
        x = rng.normal(size=(40, 6))
        y = rng.integers(0, 3, size=40)
        workers.append(
            Worker(
                worker_id,
                mlp(6, 3, hidden_units=(10, 8), seed=11),
                Dataset(x, y, 3),
                Adam(0.01),
                batch_size=8,
                seed=worker_id,
            )
        )
    return SimulatedCluster(workers, execution=execution)


def _scaling_cell(num_clients: int) -> dict:
    train = gaussian_blobs(600, feature_dim=6, num_classes=3, seed=0)
    cluster = _make_cluster(COHORT)
    strategy = LocalSGDStrategy(tau=2).attach(cluster)
    population = ClientPopulation(
        PopulationConfig(
            num_clients=num_clients,
            cohort_size=COHORT,
            weighting="data-size",
            min_client_samples=24,
            max_client_samples=48,
        ),
        train_dataset=train,
        seed=2026,
    )
    population.attach(cluster, strategy)
    for _ in range(WARMUP_ROUNDS):
        population.run_round()
    start = time.perf_counter()
    for _ in range(TIMED_ROUNDS):
        population.run_round()
    elapsed = time.perf_counter() - start
    return {
        "num_clients": num_clients,
        "cohort_size": COHORT,
        "timed_rounds": TIMED_ROUNDS,
        "elapsed_s": elapsed,
        "rounds_per_s": TIMED_ROUNDS / elapsed,
        "peak_resident": population.peak_resident_clients,
        "resident_budget": population.config.effective_memory_budget,
        "stateful_clients": population.store.stateful_count,
        "evictions": population.store.evictions,
        "spill_loads": population.store.spill_loads,
    }


def test_rounds_per_second_is_flat_in_population_size(benchmark):
    rows = benchmark.pedantic(
        lambda: [_scaling_cell(n) for n in N_GRID], rounds=1, iterations=1
    )

    header = (
        f"{'N':>10}{'rounds/s':>12}{'peak-res':>10}{'budget':>8}"
        f"{'stateful':>10}{'evictions':>11}"
    )
    print(f"\n=== Population scaling: cohort={COHORT}, {TIMED_ROUNDS} timed rounds ===")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['num_clients']:>10}{row['rounds_per_s']:>12.2f}"
            f"{row['peak_resident']:>10}{row['resident_budget']:>8}"
            f"{row['stateful_clients']:>10}{row['evictions']:>11}"
        )
    emit_bench_section("population", "scaling", rows)

    # Memory bound is hard everywhere: resident state tracks the cohort (the
    # default budget is 2·C), never N, and only ever-sampled clients hold any
    # state at all.
    for row in rows:
        assert row["peak_resident"] <= row["resident_budget"] == 2 * COHORT
        assert row["stateful_clients"] <= (WARMUP_ROUNDS + TIMED_ROUNDS) * COHORT

    ratio = rows[0]["rounds_per_s"] / rows[-1]["rounds_per_s"]
    message = (
        f"rounds/s degraded {ratio:.3f}x from N={rows[0]['num_clients']} to "
        f"N={rows[-1]['num_clients']} (bar: {MAX_DEGRADATION}x)"
    )
    if not STRICT and ratio > MAX_DEGRADATION:
        print(f"WARNING (REPRO_BENCH_STRICT=0): {message}")
        return
    assert ratio <= MAX_DEGRADATION, message


def test_cohort_all_population_is_bit_exact(benchmark):
    def _pair():
        plain = _make_cluster(4)
        plain_strategy = LocalSGDStrategy(tau=2).attach(plain)
        plain_losses = [plain_strategy.run_round().mean_loss for _ in range(6)]

        populated = _make_cluster(4)
        pop_strategy = LocalSGDStrategy(tau=2).attach(populated)
        population = ClientPopulation(
            PopulationConfig(num_clients=4, cohort_size=4, weighting="uniform"),
            shards=[worker.dataset for worker in populated.workers],
            client_seed_fn=lambda client_id: client_id,
        )
        population.attach(populated, pop_strategy)
        pop_losses = [population.run_round().mean_loss for _ in range(6)]
        return plain, plain_losses, populated, pop_losses

    plain, plain_losses, populated, pop_losses = benchmark.pedantic(
        _pair, rounds=1, iterations=1
    )
    exact = bool(
        np.array_equal(plain.parameter_matrix, populated.parameter_matrix)
        and plain_losses == pop_losses
        and plain.total_bytes == populated.total_bytes
    )
    print("\n=== Cohort=all parity ===")
    print(f"  losses equal : {plain_losses == pop_losses}")
    print(f"  bytes        : {plain.total_bytes} == {populated.total_bytes}")
    emit_bench_section(
        "population",
        "parity",
        [
            {
                "num_workers": 4,
                "rounds": 6,
                "bit_exact": exact,
                "total_bytes": plain.total_bytes,
            }
        ],
    )
    # The parity contract is hard in every mode: cohort=all + uniform
    # weighting executes identical arithmetic to the materialized cluster.
    np.testing.assert_array_equal(plain.parameter_matrix, populated.parameter_matrix)
    assert plain_losses == pop_losses
    assert plain.total_bytes == populated.total_bytes
