"""Figure 6 — DenseNet201 on CIFAR-10 (IID): the deeper-model comparison.

Identical structure to Figure 5 but on the larger DenseNet201 stand-in, where
the absolute communication volumes are larger (Synchronous pays the model size
every step) and the relative FDA advantage persists.
"""

from benchmarks.conftest import (
    assert_fda_communication_advantage,
    print_grouped_results,
    run_spec,
    strategies_by_name,
)
from repro.experiments.registry import figure5, figure6


def _run(quick):
    return run_spec(figure6(quick=quick)), run_spec(figure5(quick=quick))


def test_figure6_densenet201_cifar10(benchmark, quick):
    grouped_201, grouped_121 = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_grouped_results("Figure 6: DenseNet201 on CIFAR-10 (IID)", grouped_201)

    results = grouped_201["iid"]
    assert_fda_communication_advantage(results, factor_vs_sync=3.0)

    # The deeper model makes every synchronization more expensive, so the
    # Synchronous baseline must communicate more than it did for DenseNet121.
    sync_201 = strategies_by_name(results)["Synchronous"]
    sync_121 = strategies_by_name(grouped_121["iid"])["Synchronous"]
    comm_per_step_201 = sync_201.communication_bytes / max(sync_201.parallel_steps, 1)
    comm_per_step_121 = sync_121.communication_bytes / max(sync_121.parallel_steps, 1)
    print(
        f"Synchronous bytes per step: DenseNet121 {comm_per_step_121:.0f}, "
        f"DenseNet201 {comm_per_step_201:.0f}"
    )
    assert comm_per_step_201 > comm_per_step_121
