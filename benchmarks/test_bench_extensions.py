"""Benchmarks beyond the paper's figures: the extensions it discusses but does not evaluate.

1. **Asynchronous FDA vs synchronous FDA under stragglers** (Section 3.3): the
   asynchronous coordinator protocol should complete more total learning steps
   than the lockstep protocol in the same virtual wall-clock budget.
2. **FDA vs drift-control baselines under Non-IID data** (Section 2 related
   work): FedProx and SCAFFOLD fix client drift on the optimization side with
   a fixed schedule; FDA fixes the schedule itself.  The benchmark reports all
   of them at the same accuracy target on a heterogeneous partition.
"""

import numpy as np

from benchmarks.conftest import run_workload
from repro.core.async_fda import AsynchronousFDATrainer, StragglerProfile
from repro.core.fda import FDATrainer
from repro.core.monitor import LinearMonitor
from repro.experiments.registry import lenet_mnist_workload
from repro.experiments.reporting import format_results_table
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.strategies.drift_control import FedProxStrategy, ScaffoldStrategy
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import fedadam_strategy
from repro.strategies.synchronous import SynchronousStrategy


def _async_vs_sync_under_stragglers():
    theta = 8.0
    budget_seconds = 100.0
    profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=4.0)
    workload = lenet_mnist_workload(num_workers=4)

    sync_cluster, sync_test = build_cluster(workload)
    sync_trainer = FDATrainer(
        sync_cluster, LinearMonitor(dimension=sync_cluster.model_dimension, seed=0), theta
    )
    lockstep_duration = float(profile.step_durations(sync_cluster.num_workers, seed=0).max())
    sync_trainer.run_steps(int(budget_seconds // lockstep_duration))
    sync_accuracy = sync_cluster.evaluate_global(sync_test)[1]

    async_cluster, async_test = build_cluster(workload)
    async_trainer = AsynchronousFDATrainer(
        async_cluster,
        LinearMonitor(dimension=async_cluster.model_dimension, seed=0),
        theta,
        profile=profile,
        seed=0,
    )
    async_trainer.run_for(budget_seconds)
    async_accuracy = async_cluster.evaluate_global(async_test)[1]

    return {
        "sync_total_steps": sync_cluster.parallel_steps * sync_cluster.num_workers,
        "async_total_steps": async_trainer.total_steps,
        "sync_accuracy": sync_accuracy,
        "async_accuracy": async_accuracy,
        "async_steps_by_worker": list(async_trainer.steps_by_worker()),
        "sync_bytes": sync_cluster.total_bytes,
        "async_bytes": async_cluster.total_bytes,
    }


def test_extension_asynchronous_fda_straggler_tolerance(benchmark):
    stats = benchmark.pedantic(_async_vs_sync_under_stragglers, rounds=1, iterations=1)
    print("\n=== Extension: asynchronous FDA under stragglers (same wall-clock budget) ===")
    print(f"  synchronous FDA : total steps {stats['sync_total_steps']:>5}  "
          f"accuracy {stats['sync_accuracy']:.3f}  comm {stats['sync_bytes']} B")
    print(f"  asynchronous FDA: total steps {stats['async_total_steps']:>5}  "
          f"accuracy {stats['async_accuracy']:.3f}  comm {stats['async_bytes']} B")
    print(f"  per-worker steps (async): {stats['async_steps_by_worker']}")

    # The asynchronous protocol must extract more total computation from the
    # same virtual time budget when stragglers are present.
    assert stats["async_total_steps"] > stats["sync_total_steps"]
    # And it must still train a usable global model.
    assert stats["async_accuracy"] > 0.7


def _fda_vs_drift_control_noniid():
    run = TrainingRun(accuracy_target=0.88, max_steps=400, eval_every_steps=20)
    workload = lenet_mnist_workload(
        num_workers=5,
        partition_scheme="noniid-fraction",
        partition_kwargs={"fraction": 0.6},
    )
    strategies = {
        "LinearFDA": lambda: FDAStrategy(threshold=8.0, variant="linear"),
        "Synchronous": lambda: SynchronousStrategy(),
        "FedAdam": lambda: fedadam_strategy(learning_rate=0.01),
        "FedProx": lambda: FedProxStrategy(mu=0.05),
        "SCAFFOLD": lambda: ScaffoldStrategy(local_learning_rate_hint=0.001),
    }
    return [run_workload(workload, factory, run) for factory in strategies.values()]


def test_extension_fda_vs_drift_control_baselines(benchmark):
    results = benchmark.pedantic(_fda_vs_drift_control_noniid, rounds=1, iterations=1)
    print("\n=== Extension: FDA vs drift-control baselines (Non-IID 60%) ===")
    print(format_results_table(results, reached_only=False))

    by_name = {r.strategy: r for r in results}
    fda = by_name["LinearFDA"]
    assert fda.reached_target
    # FDA's schedule-side savings dominate the optimization-side baselines'
    # communication at the same target (they synchronize every round/step).
    for name in ("Synchronous", "FedProx", "SCAFFOLD"):
        baseline = by_name[name]
        assert fda.communication_bytes < baseline.communication_bytes, (
            f"LinearFDA used {fda.communication_bytes} B, {name} used "
            f"{baseline.communication_bytes} B"
        )
