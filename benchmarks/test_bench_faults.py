"""Fault-tolerance benchmark: FDA vs BSP degradation under churn and loss.

The paper's communication-efficiency claim is usually stated on a pristine
cluster; this benchmark stresses it on a hostile one.  A crash-rate x
loss-rate grid runs LinearFDA and the synchronous (BSP) baseline to the same
accuracy target under deterministic fault injection (worker churn with paid
re-entry downloads, per-link retransmission with backoff) and reports the
communication cost to target per cell — the headline cell being 10% crash +
5% loss, where FDA's advantage must survive.

Two exactness checks ride along, because they are cheap to assert here with
full runs in hand:

* **Conservation** — loss-only faults leave the trajectory bit-identical, so
  the faulted run's byte total must exceed the fault-free run's by exactly
  the logged retransmitted bytes.
* **Pure observer** — a null plan produces a byte ledger and history
  bit-identical to a run with no plan at all.

Emits ``BENCH_faults.json`` (section ``degradation``) for the CI artifact
trail.
"""

from __future__ import annotations

import numpy as np

from benchmarks.bench_json import emit_bench_section
from repro.data.synthetic import gaussian_blobs
from repro.experiments.run import TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster, make_optimizer
from repro.faults import FaultPlan
from repro.nn.architectures import mlp
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy

#: (crash_rate, loss_rate) cells; the last is the headline 10% + 5% cell.
GRID = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.05), (0.1, 0.05)]

ACCURACY_TARGET = 0.85
MAX_STEPS = 200
FAULT_SEED = 7


def _workload() -> WorkloadConfig:
    train = gaussian_blobs(360, feature_dim=8, num_classes=3, seed=0)
    test = gaussian_blobs(150, feature_dim=8, num_classes=3, seed=0)
    return WorkloadConfig(
        name="blobs-faults",
        model_factory=lambda: mlp(8, 3, hidden_units=(16,), seed=0),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=4,
        batch_size=16,
        seed=0,
    )


def _strategies():
    return (
        ("LinearFDA", lambda: FDAStrategy(threshold=0.5, variant="linear")),
        ("Synchronous", lambda: SynchronousStrategy()),
    )


def _run_cell(workload, strategy_factory):
    cluster, test_dataset = build_cluster(workload)
    run = TrainingRun(
        accuracy_target=ACCURACY_TARGET, max_steps=MAX_STEPS, eval_every_steps=20
    )
    result = run.execute(
        strategy_factory(), cluster, test_dataset, workload_name=workload.name
    )
    return cluster, result


def _bytes_to_target(result):
    """Communication bytes at the first evaluation that met the target."""
    for entry in result.history.entries:
        if entry["test_accuracy"] >= ACCURACY_TARGET:
            return int(entry["communication_bytes"])
    return None


def _degradation_grid():
    workload = _workload()
    rows = []
    results = {}
    for crash_rate, loss_rate in GRID:
        plan = FaultPlan(crash_rate=crash_rate, loss_rate=loss_rate, seed=FAULT_SEED)
        faulted = workload.with_faults(None if plan.is_null else plan)
        for name, factory in _strategies():
            cluster, result = _run_cell(faulted, factory)
            log = result.fault_log or {}
            results[(crash_rate, loss_rate, name)] = (cluster, result)
            rows.append(
                {
                    "crash_rate": crash_rate,
                    "loss_rate": loss_rate,
                    "strategy": name,
                    "reached_target": result.reached_target,
                    "bytes_to_target": _bytes_to_target(result),
                    "total_bytes": result.communication_bytes,
                    "parallel_steps": result.parallel_steps,
                    "final_accuracy": result.final_accuracy,
                    "retransmitted_bytes": log.get("retransmitted_bytes", 0),
                    "crashes": len(log.get("crashes", [])),
                    "rejoins": len(log.get("rejoins", [])),
                }
            )
    return rows, results


def test_fda_beats_bsp_under_churn_and_loss(benchmark):
    rows, results = benchmark.pedantic(_degradation_grid, rounds=1, iterations=1)

    header = (
        f"{'crash':>7}{'loss':>7}  {'strategy':<13}{'to-target':>12}{'total':>12}"
        f"{'acc':>8}{'retx':>10}{'crashes':>9}"
    )
    print("\n=== Fault degradation grid: communication to "
          f"{ACCURACY_TARGET:.0%} accuracy ===")
    print(header)
    print("-" * len(header))
    for row in rows:
        to_target = row["bytes_to_target"]
        print(
            f"{row['crash_rate']:>7.2f}{row['loss_rate']:>7.2f}  "
            f"{row['strategy']:<13}"
            f"{(str(to_target) + ' B') if to_target is not None else 'miss':>12}"
            f"{row['total_bytes']:>10} B"
            f"{row['final_accuracy']:>8.3f}"
            f"{row['retransmitted_bytes']:>8} B"
            f"{row['crashes']:>9}"
        )
    emit_bench_section("faults", "degradation", rows)

    by_cell = {
        (row["crash_rate"], row["loss_rate"], row["strategy"]): row for row in rows
    }

    # Headline cell: at 10% churn + 5% loss both still reach the target, and
    # FDA's communication-to-target advantage over BSP survives the faults.
    fda = by_cell[(0.1, 0.05, "LinearFDA")]
    bsp = by_cell[(0.1, 0.05, "Synchronous")]
    assert fda["reached_target"], "FDA failed to reach the target under faults"
    assert bsp["reached_target"], "BSP failed to reach the target under faults"
    assert fda["bytes_to_target"] < bsp["bytes_to_target"], (
        f"FDA {fda['bytes_to_target']} B vs BSP {bsp['bytes_to_target']} B"
    )

    # Conservation: loss-only faults leave the trajectory untouched, so the
    # byte surcharge equals the logged retransmissions — per strategy, and
    # per link (the log's per-link entries sum to the same surcharge by
    # construction of FaultLog.retransmitted_bytes; asserted in the unit
    # suite against the fabric ledger as well).
    for name, _ in _strategies():
        clean_cluster, clean = results[(0.0, 0.0, name)]
        lossy_cluster, lossy = results[(0.0, 0.05, name)]
        np.testing.assert_array_equal(
            clean_cluster.parameter_matrix, lossy_cluster.parameter_matrix
        )
        surcharge = lossy.communication_bytes - clean.communication_bytes
        assert surcharge == lossy.fault_log["retransmitted_bytes"]
        per_link = 0
        for link, entry in lossy.fault_log["retransmissions"].items():
            src, dst = (int(end) for end in link.split("->"))
            link_delta = (
                lossy_cluster.fabric.bytes_by_link[(src, dst)]
                - clean_cluster.fabric.bytes_by_link[(src, dst)]
            )
            assert link_delta == entry["bytes"], f"link {link} leaks bytes"
            per_link += entry["bytes"]
        assert per_link == surcharge

    # Churn costs communication: the crash cells must charge strictly more
    # bytes than the pristine cell (each rejoin pays a model download).
    for name, _ in _strategies():
        pristine = by_cell[(0.0, 0.0, name)]
        churned = by_cell[(0.1, 0.0, name)]
        if churned["rejoins"]:
            assert churned["total_bytes"] > pristine["total_bytes"]


def test_null_plan_is_a_pure_observer(benchmark):
    def _pair():
        workload = _workload()
        _, plain = _run_cell(workload, _strategies()[0][1])
        _, nulled = _run_cell(workload.with_faults(FaultPlan()), _strategies()[0][1])
        return plain, nulled

    plain, nulled = benchmark.pedantic(_pair, rounds=1, iterations=1)
    print("\n=== Null-plan observer check ===")
    print(f"  no plan  : {plain.communication_bytes} B, acc {plain.final_accuracy:.3f}")
    print(f"  null plan: {nulled.communication_bytes} B, acc {nulled.final_accuracy:.3f}")
    assert plain.communication_bytes == nulled.communication_bytes
    assert plain.history.entries == nulled.history.entries
    assert nulled.faults == "none" and nulled.fault_log is None
