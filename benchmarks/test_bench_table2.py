"""Table 2 — Summary of experiments.

Regenerates the reproduction's analogue of Table 2: one row per learning task
with the model dimension ``d``, the dataset, the Θ grid, the batch size, the
worker counts and the algorithms.  The shape check is that the model-size
ordering of the paper (LeNet-5 < VGG16* < DenseNet121 < DenseNet201 <
ConvNeXt head) is preserved by the miniatures.
"""

from repro.experiments.registry import table2


def _build_table():
    return table2()


def test_table2_summary_of_experiments(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)

    print("\n=== Table 2: Summary of Experiments (reproduction) ===")
    header = f"{'model':<28}{'d':>8}  {'dataset':<24}{'b':>4}{'K':>4}  {'optimizer':<8}  theta grid"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['model']:<28}{row['d']:>8}  {row['dataset']:<24}"
            f"{row['batch_size']:>4}{row['num_workers']:>4}  {row['optimizer']:<8}  "
            f"{row['theta_grid']}"
        )

    assert len(rows) == 5
    sizes = {row["model"]: row["d"] for row in rows}
    assert sizes["LeNet-5 (mini)"] < sizes["VGG16* (mini)"]
    assert sizes["DenseNet121 (mini)"] < sizes["DenseNet201 (mini)"]
    for row in rows:
        assert row["theta_grid"], "every learning task needs a Theta grid"
        assert {"LinearFDA", "SketchFDA", "Synchronous"}.issubset(set(row["algorithms"]))
