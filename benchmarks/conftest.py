"""Shared helpers for the figure/table benchmarks.

Every benchmark pulls its configuration from :mod:`repro.experiments.registry`
(the single source of truth mapping paper figures to workloads), executes the
training runs once inside ``benchmark.pedantic``, prints a paper-style summary
table to stdout, and asserts the *qualitative* shape of the result (who wins,
roughly by how much) rather than absolute numbers — the substrate here is a
simulator, not the authors' 44-node GPU cluster.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.experiments.registry import ExperimentSpec
from repro.experiments.results import ResultsTable
from repro.experiments.run import RunResult
from repro.experiments.reporting import format_comparison, format_results_table
from repro.experiments.setup import WorkloadConfig, build_cluster
from repro.experiments.sweep import SweepPoint

#: Set REPRO_BENCH_FULL=1 to run the figures at their full (slow) grids.
QUICK_MODE = os.environ.get("REPRO_BENCH_FULL", "0") != "1"


def run_workload(workload: WorkloadConfig, strategy_factory, run) -> RunResult:
    """Build a fresh cluster for the workload and execute one training run."""
    cluster, test_dataset = build_cluster(workload)
    return run.execute(
        strategy_factory(),
        cluster,
        test_dataset,
        train_dataset=workload.train_dataset,
        workload_name=workload.name,
    )


def run_spec(spec: ExperimentSpec) -> Dict[str, List[RunResult]]:
    """Run every strategy of an :class:`ExperimentSpec` on every workload.

    Returns results grouped by workload label.
    """
    grouped: Dict[str, List[RunResult]] = {}
    for label, workload in spec.workloads.items():
        results = []
        for strategy_name, factory in spec.strategy_factories.items():
            result = run_workload(workload, factory, spec.run)
            result.workload = f"{workload.name}[{label}]"
            results.append(result)
        grouped[label] = results
    return grouped


def print_grouped_results(title: str, grouped: Dict[str, List[RunResult]]) -> None:
    """Print one summary table per workload label."""
    print(f"\n=== {title} ===")
    for label, results in grouped.items():
        print(f"\n--- setting: {label} ---")
        print(format_results_table(results, reached_only=False))
        fda_names = [r.strategy for r in results if "FDA" in r.strategy]
        baselines = [r.strategy for r in results if "FDA" not in r.strategy]
        for fda_name in fda_names[:1]:
            for baseline in baselines:
                try:
                    print(format_comparison(results, fda_name, baseline))
                except Exception:  # noqa: BLE001 - reporting must never break a bench
                    pass


def print_sweep(title: str, points: List[SweepPoint]) -> None:
    """Print a one-line-per-grid-point summary of a sweep."""
    print(f"\n--- {title} ---")
    for point in points:
        result = point.result
        print(
            f"{point.parameter}={point.value:<8g} strategy={result.strategy:<12} "
            f"reached={str(result.reached_target):<5} comm={result.communication_bytes:>12} B  "
            f"steps={result.parallel_steps:>6}  syncs={result.synchronizations}"
        )


def strategies_by_name(results: List[RunResult]) -> Dict[str, RunResult]:
    """Index a list of results by strategy name (first occurrence wins)."""
    indexed: Dict[str, RunResult] = {}
    for result in results:
        indexed.setdefault(result.strategy, result)
    return indexed


def assert_fda_communication_advantage(
    results: List[RunResult], factor_vs_sync: float = 5.0
) -> None:
    """The shape check shared by Figures 3-6: FDA ≪ Synchronous in communication."""
    by_name = strategies_by_name(results)
    sync = by_name.get("Synchronous")
    assert sync is not None, "benchmark must include the Synchronous baseline"
    for name, result in by_name.items():
        if "FDA" not in name:
            continue
        assert result.communication_bytes < sync.communication_bytes / factor_vs_sync, (
            f"{name} used {result.communication_bytes} bytes, expected at least "
            f"{factor_vs_sync}x less than Synchronous ({sync.communication_bytes})"
        )


@pytest.fixture()
def quick() -> bool:
    """Whether the benchmarks run with the reduced (default) grids."""
    return QUICK_MODE
