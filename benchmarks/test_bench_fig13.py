"""Figure 13 — Transfer learning: fine-tuning on CIFAR-100 features.

The paper fine-tunes ImageNet-pretrained ConvNeXtLarge on CIFAR-100 with AdamW
and reports communication versus Θ for K = 3 and K = 5 workers; the notable
finding is that SketchFDA needs about 1.5× less communication than LinearFDA
in this harder scenario (its variance estimate is tighter, so it synchronizes
less often).  This benchmark runs the strategy line-up on the frozen-backbone
workload for both worker counts and sweeps Θ for both FDA variants.
"""

from benchmarks.conftest import (
    assert_fda_communication_advantage,
    print_grouped_results,
    print_sweep,
    run_spec,
    strategies_by_name,
)
from repro.experiments.registry import figure13
from repro.experiments.sweep import sweep_theta


def _run(quick):
    spec = figure13(quick=quick)
    grouped = run_spec(spec)
    workload = spec.workloads["K=3"]
    theta_sweeps = {
        variant: sweep_theta(workload, list(spec.fda_thetas), spec.run, variant=variant)
        for variant in ("linear", "sketch")
    }
    return grouped, theta_sweeps


def test_figure13_transfer_learning(benchmark, quick):
    grouped, theta_sweeps = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_grouped_results("Figure 13: ConvNeXt-head fine-tuning on CIFAR-100 features", grouped)
    for variant, points in theta_sweeps.items():
        print_sweep(f"Theta sweep ({variant}FDA, K=3)", points)

    for results in grouped.values():
        assert_fda_communication_advantage(results, factor_vs_sync=3.0)

    # Synchronization counts: SketchFDA's tighter estimator should not trigger
    # more synchronizations than LinearFDA (the mechanism behind the paper's
    # 1.5x communication gap in this scenario).
    for label, results in grouped.items():
        by_name = strategies_by_name(results)
        assert by_name["SketchFDA"].synchronizations <= by_name["LinearFDA"].synchronizations + 2, (
            f"{label}: SketchFDA synchronized {by_name['SketchFDA'].synchronizations} times vs "
            f"LinearFDA {by_name['LinearFDA'].synchronizations}"
        )

    # Communication decreases (weakly) with Theta for both variants.
    for variant, points in theta_sweeps.items():
        ordered = sorted(points, key=lambda p: p.value)
        model_bytes = [p.result.model_bytes for p in ordered]
        assert model_bytes[-1] <= model_bytes[0] + 1
