"""Figure 11 — DenseNet201 on CIFAR-10: varying the number of workers K and Θ."""

from benchmarks.sweep_helpers import (
    check_theta_trends,
    check_worker_trends,
    print_figure,
    run_figure_sweeps,
)
from repro.experiments.registry import figure11


def _run(quick):
    return run_figure_sweeps(figure11(quick=quick))


def test_figure11_densenet201_varying_k_and_theta(benchmark, quick):
    theta_sweeps, worker_sweeps = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_figure(
        "Figure 11: DenseNet201 on CIFAR-10, varying K and Theta", theta_sweeps, worker_sweeps
    )
    check_theta_trends(theta_sweeps)
    check_worker_trends(worker_sweeps)
