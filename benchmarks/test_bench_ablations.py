"""Ablation benchmarks for the design choices called out in DESIGN.md (§6).

These go beyond the paper's figures and quantify:

1. monitor tightness — exact vs sketch vs linear variance estimation;
2. AMS sketch size — estimation error and synchronization count vs (l, m);
3. the LinearFDA heuristic ξ (last global-drift direction) vs a random ξ;
4. communication-accounting scheme — paper-style upload counting vs ring AllReduce;
5. the dynamic-Θ controller (the paper's future-work extension) vs a static Θ.
"""

import numpy as np

from benchmarks.conftest import run_workload
from repro.core.monitor import ExactMonitor, LinearMonitor, SketchMonitor
from repro.core.state import average_states
from repro.core.theta import DynamicThetaController
from repro.core.variance import variance_from_drifts
from repro.distributed.comm import NAIVE_COST_MODEL, RING_COST_MODEL, CommunicationCostModel
from repro.experiments.registry import lenet_mnist_workload
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy

RUN = TrainingRun(accuracy_target=0.9, max_steps=200, eval_every_steps=20)


def _monitor_tightness():
    """Relative looseness of each monitor's H estimate on random drifts."""
    rng = np.random.default_rng(0)
    drifts = [rng.normal(size=800) for _ in range(8)]
    true_variance = variance_from_drifts(drifts)
    looseness = {}
    for name, monitor in (
        ("exact", ExactMonitor()),
        ("sketch(5x250)", SketchMonitor(depth=5, width=250, seed=1)),
        ("sketch(3x32)", SketchMonitor(depth=3, width=32, seed=1)),
        ("linear(random xi)", LinearMonitor(dimension=800, seed=1)),
    ):
        states = [monitor.local_state(drift) for drift in drifts]
        estimate = monitor.estimate(average_states(states))
        looseness[name] = estimate / true_variance
    return true_variance, looseness


def test_ablation_monitor_tightness(benchmark):
    true_variance, looseness = benchmark.pedantic(_monitor_tightness, rounds=1, iterations=1)
    print("\n=== Ablation: variance-estimate tightness (H / Var) ===")
    for name, ratio in looseness.items():
        print(f"  {name:<20} H/Var = {ratio:.3f}")
    assert looseness["exact"] == np.float64(1.0) or abs(looseness["exact"] - 1.0) < 1e-9
    # Every monitor over-estimates (ratio >= 1 up to sketch noise), and the
    # large sketch is tighter than the random-direction linear estimate.
    for name, ratio in looseness.items():
        assert ratio > 0.85
    assert looseness["sketch(5x250)"] <= looseness["linear(random xi)"] + 1e-9


def _sketch_size_ablation():
    workload = lenet_mnist_workload(num_workers=4)
    results = {}
    for depth, width in ((3, 16), (5, 64), (5, 250)):
        result = run_workload(
            workload,
            lambda d=depth, w=width: FDAStrategy(
                threshold=8.0, variant="sketch", sketch_depth=d, sketch_width=w
            ),
            RUN,
        )
        results[f"{depth}x{width}"] = result
    return results


def test_ablation_sketch_size(benchmark):
    results = benchmark.pedantic(_sketch_size_ablation, rounds=1, iterations=1)
    print("\n=== Ablation: AMS sketch size ===")
    for geometry, result in results.items():
        print(
            f"  sketch {geometry:<8} comm={result.communication_bytes:>10} B  "
            f"state={result.state_bytes:>10} B  syncs={result.synchronizations}  "
            f"reached={result.reached_target}"
        )
    # Larger sketches transmit more state bytes per step.
    assert results["5x250"].state_bytes > results["3x16"].state_bytes
    # All geometries still deliver the accuracy target on this easy workload.
    assert all(result.reached_target for result in results.values())


def _xi_heuristic_ablation():
    """LinearFDA with the paper's ξ heuristic vs a frozen random ξ."""
    workload = lenet_mnist_workload(num_workers=4)

    heuristic = run_workload(workload, lambda: FDAStrategy(threshold=8.0, variant="linear"), RUN)

    class FrozenLinearMonitor(LinearMonitor):
        """LinearFDA without the heuristic: ξ stays a random unit vector."""

        def on_synchronization(self, new_global, previous_global):
            return None

    dimension = workload.model_factory().num_parameters
    frozen = run_workload(
        workload,
        lambda: FDAStrategy(
            threshold=8.0, variant="linear", monitor=FrozenLinearMonitor(dimension, seed=3)
        ),
        RUN,
    )
    return heuristic, frozen


def test_ablation_linear_xi_heuristic(benchmark):
    heuristic, frozen = benchmark.pedantic(_xi_heuristic_ablation, rounds=1, iterations=1)
    print("\n=== Ablation: LinearFDA xi heuristic vs frozen random xi ===")
    for name, result in (("heuristic xi", heuristic), ("random xi", frozen)):
        print(
            f"  {name:<14} syncs={result.synchronizations:>3}  "
            f"comm={result.communication_bytes:>10} B  reached={result.reached_target}"
        )
    # A frozen random direction cannot trigger *fewer* synchronizations than the
    # paper's heuristic by more than noise (it only loosens the estimate).
    assert heuristic.synchronizations <= frozen.synchronizations + 2


def _cost_model_ablation():
    import dataclasses

    workload = lenet_mnist_workload(num_workers=4)
    results = {}
    for name, cost_model in (("paper-upload", NAIVE_COST_MODEL), ("ring-allreduce", RING_COST_MODEL)):
        configured = dataclasses.replace(workload, cost_model=cost_model)
        results[name] = run_workload(configured, lambda: SynchronousStrategy(), RUN)
    return results


def test_ablation_communication_accounting(benchmark):
    results = benchmark.pedantic(_cost_model_ablation, rounds=1, iterations=1)
    print("\n=== Ablation: communication-accounting scheme (Synchronous) ===")
    for name, result in results.items():
        print(f"  {name:<16} comm={result.communication_bytes:>12} B  steps={result.parallel_steps}")
    # Ring AllReduce moves roughly 2(K-1)/K per worker vs 1 per worker in the
    # paper's upload-only accounting: for K=4 that is a 1.5x ratio.
    ratio = results["ring-allreduce"].communication_bytes / max(
        results["paper-upload"].communication_bytes, 1
    )
    print(f"  ratio ring/paper = {ratio:.2f}")
    assert 1.2 < ratio < 1.9


def _dynamic_theta_ablation():
    workload = lenet_mnist_workload(num_workers=4)
    static = run_workload(workload, lambda: FDAStrategy(threshold=2.0, variant="linear"), RUN)
    target_bytes = 2000.0  # per-step budget, far below what Theta=2 consumes here
    dynamic = run_workload(
        workload,
        lambda: FDAStrategy(
            threshold=2.0,
            variant="linear",
            theta_controller=DynamicThetaController(
                target_bytes_per_step=target_bytes, window=10, adjustment=1.5
            ),
        ),
        RUN,
    )
    return static, dynamic


def test_ablation_dynamic_theta(benchmark):
    static, dynamic = benchmark.pedantic(_dynamic_theta_ablation, rounds=1, iterations=1)
    print("\n=== Ablation: dynamic Theta controller (future work) vs static Theta ===")
    for name, result in (("static", static), ("dynamic", dynamic)):
        per_step = result.communication_bytes / max(result.parallel_steps, 1)
        print(
            f"  {name:<8} comm={result.communication_bytes:>10} B  "
            f"bytes/step={per_step:>8.1f}  syncs={result.synchronizations}  "
            f"reached={result.reached_target}"
        )
    # The controller trades accuracy progress for bandwidth: it must not use
    # more communication per step than the static configuration it adapts.
    static_rate = static.communication_bytes / max(static.parallel_steps, 1)
    dynamic_rate = dynamic.communication_bytes / max(dynamic.parallel_steps, 1)
    assert dynamic_rate <= static_rate * 1.5
