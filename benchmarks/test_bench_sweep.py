"""Benchmark of the streaming sweep executor (the ISSUE-7 headline).

One 24-cell grid (12 variance thresholds Θ × 2 workload seeds) is executed
four ways and timed:

* **eager** — the pre-executor reference path (:func:`_run_one`): every cell
  rebuilds dataset partitions and all K worker models from scratch;
* **cold** — the executor with an empty content-addressed store: every cell
  trains, but partitions and initial model state are memoized per workload
  and rebound per cell (copy-on-bind);
* **warm** — a fresh executor over the populated store: every cell replays
  from ``runs.jsonl``, nothing trains;
* **parallel** — the executor with ``jobs=4`` over a fresh store.

Acceptance bars: warm ≥ 10× faster than cold; cold ≥ 1.3× faster than eager
(the shared-setup memoization win); parallel ≥ 2× faster than serial cold.
Wall-clock bars follow the strict/report-only convention
(``REPRO_BENCH_STRICT=0`` downgrades them to warnings; the parallel bar is
additionally skipped on boxes with fewer than 4 cores, where it cannot
physically hold).  Bit-identity — eager vs cold vs warm vs parallel byte
ledgers, histories, and accuracies — and the ≥ 90 % second-pass hit rate are
asserted hard in every mode.

The store directory honors ``REPRO_SWEEP_CACHE_DIR`` so CI can upload
``runs.jsonl`` as an artifact; the cold/warm/parallel timings land in
``BENCH_sweep.json`` (sections ``cold``/``warm``/``parallel``).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from benchmarks.bench_json import emit_bench_section
from repro.data.datasets import train_test_split
from repro.data.synthetic import synthetic_features
from repro.experiments.executor import SweepCell, SweepExecutor
from repro.experiments.run import TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster, make_optimizer
from repro.nn.architectures import transfer_head
from repro.strategies.fda_strategy import FDAStrategy

SMALL = os.environ.get("REPRO_BENCH_SMALL", "0") == "1"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: Grid shape: 12 thresholds × 2 workload seeds = 24 cells (halved in SMALL
#: mode).  Θ values are irrelevant to the timing — they only make every cell
#: a distinct run key.
THETAS = [0.25 * 2**i for i in range(6 if SMALL else 12)]
WORKLOAD_SEEDS = [0] if SMALL else [0, 1]

#: Per-cell budget: one step and a single evaluation, so per-cell *setup*
#: (partitioning a large dataset, building K models) is a significant share
#: of eager cell cost — the regime the paper's 1000-run grids live in (many
#: cheap cells over shared inputs).
RUN = TrainingRun(accuracy_target=0.999, max_steps=1, eval_every_steps=1)
NUM_WORKERS = 8
NUM_TRAIN = 8_000 if SMALL else 50_000
NUM_TEST = 200


def build_workload(seed: int) -> WorkloadConfig:
    full = synthetic_features(
        NUM_TRAIN + NUM_TEST,
        feature_dim=32,
        num_classes=20,
        seed=seed,
        name="sweep-bench-features",
    )
    train, test = train_test_split(
        full, test_fraction=NUM_TEST / (NUM_TRAIN + NUM_TEST), seed=seed
    )
    return WorkloadConfig(
        name=f"sweep-bench-s{seed}",
        model_factory=lambda: transfer_head(
            feature_dim=32, num_classes=20, hidden_units=(256, 128), seed=0
        ),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam", learning_rate=0.005),
        num_workers=NUM_WORKERS,
        batch_size=8,
        seed=seed,
    )


def build_cells(workloads) -> list:
    return [
        SweepCell(
            workload=workload,
            strategy_factory=lambda theta=theta: FDAStrategy(
                threshold=theta, variant="linear", seed=0
            ),
            run=RUN,
            label=f"theta={theta}/seed={workload.seed}",
            tags={"theta": theta, "seed": workload.seed},
        )
        for workload in workloads
        for theta in THETAS
    ]


def run_eager(cells) -> list:
    """The pre-executor path: rebuild every cell's setup from scratch."""
    results = []
    for cell in cells:
        cluster, test_dataset = build_cluster(cell.workload)
        results.append(
            cell.run.execute(
                cell.strategy_factory(),
                cluster,
                test_dataset,
                train_dataset=cell.workload.train_dataset,
                workload_name=cell.workload.name,
            )
        )
    return results


def assert_results_identical(label, left, right):
    for index, (a, b) in enumerate(zip(left, right)):
        assert a.communication_bytes == b.communication_bytes, (label, index)
        assert a.state_bytes == b.state_bytes, (label, index)
        assert a.model_bytes == b.model_bytes, (label, index)
        assert a.parallel_steps == b.parallel_steps, (label, index)
        assert a.synchronizations == b.synchronizations, (label, index)
        assert a.final_accuracy == b.final_accuracy, (label, index)
        assert a.history.entries == b.history.entries, (label, index)


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_bench_sweep_executor(tmp_path):
    workloads = [build_workload(seed) for seed in WORKLOAD_SEEDS]
    cells = build_cells(workloads)
    cache_dir = Path(os.environ.get("REPRO_SWEEP_CACHE_DIR", tmp_path / "sweep-cache"))

    def measure_eager_and_cold(directory):
        eager, eager_s = timed(lambda: run_eager(cells))
        cold_executor = SweepExecutor(cache_dir=directory)
        cold, cold_s = timed(lambda: cold_executor.execute(cells))
        return eager, eager_s, cold, cold_s

    eager_results, eager_seconds, cold_results, cold_seconds = measure_eager_and_cold(
        cache_dir
    )
    assert_results_identical("cold-vs-eager", cold_results, eager_results)

    def measure_warm():
        executor = SweepExecutor(cache_dir=cache_dir)
        results, seconds = timed(lambda: executor.execute(cells))
        return executor, results, seconds

    warm_executor, warm_results, warm_seconds = measure_warm()
    # The ≥90% second-pass hit-rate bar is hard in every mode (it measures
    # correctness of the content addressing, not machine speed); here every
    # cell must replay.
    assert warm_executor.stats.hit_rate >= 0.9, warm_executor.stats.describe()
    assert warm_executor.stats.executed == 0
    assert_results_identical("warm-vs-cold", warm_results, cold_results)

    def measure_parallel():
        executor = SweepExecutor(cache_dir=None, jobs=4)
        results, seconds = timed(lambda: executor.execute(cells))
        return executor, results, seconds

    parallel_executor, parallel_results, parallel_seconds = measure_parallel()
    assert_results_identical("parallel-vs-cold", parallel_results, cold_results)

    cores = os.cpu_count() or 1
    memo_speedup = eager_seconds / cold_seconds
    warm_speedup = cold_seconds / warm_seconds
    parallel_speedup = cold_seconds / parallel_seconds

    print(f"\n=== sweep executor: {len(cells)} cells, K={NUM_WORKERS} ===")
    print(f"  eager (pre-executor): {eager_seconds:8.3f}s")
    print(f"  cold  (memoized):     {cold_seconds:8.3f}s  ({memo_speedup:.2f}x vs eager)")
    print(f"  warm  (replayed):     {warm_seconds:8.3f}s  ({warm_speedup:.2f}x vs cold)")
    print(
        f"  parallel (jobs=4):    {parallel_seconds:8.3f}s  "
        f"({parallel_speedup:.2f}x vs cold, {cores} cores)"
    )

    # Best-of re-measurement: shared runner wall clocks are noisy, so each
    # missed wall-clock bar is retried a few times before failing.
    attempts = 1
    while STRICT and (memo_speedup < 1.3 or warm_speedup < 10.0) and attempts < 4:
        retry_dir = tmp_path / f"retry-{attempts}"
        eager_retry, eager_s, cold_retry, cold_s = measure_eager_and_cold(retry_dir)
        _, _, warm_s = measure_warm()
        memo_speedup = max(memo_speedup, eager_s / cold_s)
        warm_speedup = max(warm_speedup, cold_seconds / warm_s)
        attempts += 1
        print(
            f"  re-measured (attempt {attempts}): memoization {memo_speedup:.2f}x, "
            f"warm {warm_speedup:.2f}x"
        )
    parallel_attempts = 1
    while STRICT and cores >= 4 and parallel_speedup < 2.0 and parallel_attempts < 4:
        _, _, parallel_s = measure_parallel()
        parallel_speedup = max(parallel_speedup, cold_seconds / parallel_s)
        parallel_attempts += 1
        print(f"  re-measured parallel: {parallel_speedup:.2f}x")

    base_row = {
        "cells": len(cells),
        "K": NUM_WORKERS,
        "train_samples": NUM_TRAIN,
        "eager_seconds": round(eager_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
    }
    emit_bench_section(
        "sweep",
        "cold",
        [{**base_row, "memoization_speedup": round(memo_speedup, 3)}],
    )
    emit_bench_section(
        "sweep",
        "warm",
        [
            {
                **base_row,
                "warm_seconds": round(warm_seconds, 4),
                "warm_speedup": round(warm_speedup, 3),
                "cache_hit_rate": round(warm_executor.stats.hit_rate, 4),
            }
        ],
    )
    emit_bench_section(
        "sweep",
        "parallel",
        [
            {
                **base_row,
                "jobs": 4,
                "cores": cores,
                "parallel_seconds": round(parallel_seconds, 4),
                "parallel_speedup": round(parallel_speedup, 3),
            }
        ],
    )

    failures = []
    if memo_speedup < 1.3:
        failures.append(
            f"shared-setup memoization delivered {memo_speedup:.2f}x < 1.3x vs eager"
        )
    if warm_speedup < 10.0:
        failures.append(f"warm replay delivered {warm_speedup:.2f}x < 10x vs cold")
    if cores >= 4 and parallel_speedup < 2.0:
        failures.append(
            f"jobs=4 delivered {parallel_speedup:.2f}x < 2x vs serial cold"
        )
    elif cores < 4:
        print(
            f"  (parallel >=2x bar skipped: {cores} core(s) < 4 — "
            "bit-identity was still asserted)"
        )
    if failures and not STRICT:
        for failure in failures:
            print(f"  WARNING: {failure} (REPRO_BENCH_STRICT=0, not failing)")
        return
    assert not failures, "; ".join(failures)
