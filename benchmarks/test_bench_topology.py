"""Micro-benchmark of the communication fabric: topology × network wall-clock.

Pure fabric-level simulation — no models, no training — so the full grid runs
in milliseconds: per (topology, network) cell it replays an FDA-style round
pattern (one tiny state AllReduce per step, one full-model AllReduce every
``SYNC_PERIOD`` steps) against the BSP pattern (full-model AllReduce every
step) and compares virtual wall-clock.  The shape assertions encode the
paper's headline: the byte savings translate into large wall-clock wins on
the shared 0.5 Gbps federated channel and nearly vanish on InfiniBand.

A second benchmark measures the accounting overhead itself (charges per
second), which is the fabric's hot path inside every training loop.

``REPRO_BENCH_SMALL=1`` (set by the CI smoke job) trims the round counts;
``REPRO_BENCH_STRICT=0`` downgrades the throughput floor to a warning on
runners whose wall-clock cannot be trusted.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.bench_json import emit_bench_section
from repro.distributed.network import get_network
from repro.distributed.topology import Fabric, NAMED_TOPOLOGIES, get_topology

SMALL = os.environ.get("REPRO_BENCH_SMALL", "0") == "1"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

MODEL_DIMENSION = 1_000_000       # accounting is O(1) in d, so keep it paper-sized
STATE_ELEMENTS = 2                # LinearFDA local state
NUM_WORKERS = 16
SYNC_PERIOD = 10                  # FDA synchronizes every 10th step here
ROUNDS = 60 if SMALL else 300
COMPUTE_SECONDS_PER_STEP = 0.1


def simulate(topology_name: str, network_name: str, fda: bool, rounds: int = ROUNDS):
    """Replay one protocol's round pattern; returns (total_seconds, total_bytes)."""
    fabric = Fabric(topology=get_topology(topology_name), network=get_network(network_name))
    seconds = rounds * COMPUTE_SECONDS_PER_STEP
    for round_index in range(rounds):
        if fda:
            seconds += fabric.allreduce(STATE_ELEMENTS, NUM_WORKERS, "fda-state").seconds
            if (round_index + 1) % SYNC_PERIOD == 0:
                seconds += fabric.allreduce(MODEL_DIMENSION, NUM_WORKERS, "model-sync").seconds
        else:
            seconds += fabric.allreduce(MODEL_DIMENSION, NUM_WORKERS, "model-sync").seconds
    return seconds, fabric.tracker.total_bytes


@pytest.mark.benchmark(group="topology")
def test_bench_topology_wallclock_grid():
    print(
        f"\n=== fabric wall-clock: FDA (sync every {SYNC_PERIOD}) vs BSP, "
        f"K={NUM_WORKERS}, d={MODEL_DIMENSION:,}, {ROUNDS} rounds ===")
    header = (
        f"{'topology':<14}{'network':<10}{'BSP s':>10}{'FDA s':>10}"
        f"{'speedup':>9}{'BSP bytes':>14}{'FDA bytes':>14}"
    )
    print(header)
    print("-" * len(header))
    speedups = {}
    rows = []
    for topology in sorted(NAMED_TOPOLOGIES):
        for network in ("fl", "balanced", "hpc"):
            bsp_seconds, bsp_bytes = simulate(topology, network, fda=False)
            fda_seconds, fda_bytes = simulate(topology, network, fda=True)
            speedups[(topology, network)] = bsp_seconds / fda_seconds
            rows.append(
                {
                    "topology": topology,
                    "network": network,
                    "bsp_seconds": round(bsp_seconds, 4),
                    "fda_seconds": round(fda_seconds, 4),
                    "speedup": round(bsp_seconds / fda_seconds, 3),
                    "bsp_bytes": int(bsp_bytes),
                    "fda_bytes": int(fda_bytes),
                }
            )
            print(
                f"{topology:<14}{network:<10}{bsp_seconds:>10.2f}{fda_seconds:>10.2f}"
                f"{bsp_seconds / fda_seconds:>8.2f}x{bsp_bytes:>14,}{fda_bytes:>14,}"
            )
    emit_bench_section("topology", "fda-vs-bsp-wallclock", rows)

    # The paper's claim holds on the few-hop topologies (star, two-level
    # hierarchy, gossip with its log K rounds): the byte savings buy real
    # wall-clock on the federated channel and nearly nothing on InfiniBand.
    for topology in ("star", "hierarchical", "gossip"):
        fl_speedup = speedups[(topology, "fl")]
        hpc_speedup = speedups[(topology, "hpc")]
        assert fl_speedup > 1.2, (
            f"{topology}: expected FDA to beat BSP by >1.2x on the FL network, "
            f"got {fl_speedup:.2f}x"
        )
        assert fl_speedup > hpc_speedup, (
            f"{topology}: expected the FL speedup ({fl_speedup:.2f}x) to exceed "
            f"the HPC speedup ({hpc_speedup:.2f}x)"
        )
        assert hpc_speedup < 1.2, (
            f"{topology}: on HPC the win should be marginal, got {hpc_speedup:.2f}x"
        )
    # The ring is the fabric's cautionary tale: FDA's *per-step* state
    # AllReduce pays the full 2(K-1) sequential latency hops, so on the
    # latency-heavy FL channel the advantage collapses to ~parity — exactly
    # the kind of interconnect effect the fabric exists to expose.
    ring_fl = speedups[("ring", "fl")]
    assert 0.8 < ring_fl < 1.2, (
        f"ring/fl: expected the latency-bound ring to erase FDA's advantage "
        f"(~1.0x), got {ring_fl:.2f}x"
    )


@pytest.mark.benchmark(group="topology")
def test_bench_sync_wallclock_by_topology():
    """One full-model synchronization: how each topology prices it per network."""
    print(f"\n=== one model sync (d={MODEL_DIMENSION:,}, K={NUM_WORKERS}) ===")
    print(f"{'topology':<14}{'fl s':>10}{'hpc s':>10}{'bytes':>14}")
    times = {}
    rows = []
    for topology in sorted(NAMED_TOPOLOGIES):
        row = {}
        num_bytes = 0
        for network in ("fl", "hpc"):
            fabric = Fabric(
                topology=get_topology(topology), network=get_network(network)
            )
            charge = fabric.allreduce(MODEL_DIMENSION, NUM_WORKERS, "model-sync")
            row[network] = charge.seconds
            num_bytes = charge.num_bytes
        times[topology] = row
        rows.append(
            {
                "topology": topology,
                "fl_seconds": round(row["fl"], 6),
                "hpc_seconds": round(row["hpc"], 6),
                "bytes": int(num_bytes),
            }
        )
        print(f"{topology:<14}{row['fl']:>10.3f}{row['hpc']:>10.5f}{num_bytes:>14,}")
    emit_bench_section("topology", "sync-wallclock-by-topology", rows)
    # Every topology is slower on the federated channel than on InfiniBand,
    # and the ring's 2(K-1) latency hops cost more than the star's 2 on the
    # latency-heavy FL network.
    for topology, row in times.items():
        assert row["fl"] > row["hpc"]
    assert times["ring"]["fl"] > times["star"]["fl"]


@pytest.mark.benchmark(group="topology")
def test_bench_fabric_accounting_overhead():
    """The fabric charge itself must stay off the training hot path's budget."""
    iterations = 2_000 if SMALL else 20_000
    fabric = Fabric(topology=get_topology("star"), network=get_network("fl"))
    start = time.perf_counter()
    for _ in range(iterations):
        fabric.allreduce(STATE_ELEMENTS, NUM_WORKERS, "fda-state")
    elapsed = time.perf_counter() - start
    rate = iterations / elapsed
    print(f"\nfabric.allreduce accounting: {rate:,.0f} charges/s")
    emit_bench_section(
        "topology",
        "accounting-overhead",
        [{"iterations": iterations, "charges_per_sec": round(rate, 1)}],
    )
    floor = 20_000.0
    if rate < floor and not STRICT:
        print(f"  WARNING: {rate:,.0f} charges/s < {floor:,.0f} (REPRO_BENCH_STRICT=0)")
        return
    assert rate > floor, f"fabric accounting too slow: {rate:,.0f} charges/s"
