"""Figure 4 — VGG16* on MNIST: two accuracy targets, diminishing returns.

The paper's Figure 4 repeats the Figure-3 comparison on the larger VGG16*
model with two accuracy targets per heterogeneity setting; the key additional
observation is *diminishing returns*: the baselines pay a steep extra price
for the final accuracy increment while the FDA variants barely move.  This
benchmark runs the strategy line-up at a base target and at a higher target on
the IID workload and checks that ordering.
"""

from benchmarks.conftest import (
    assert_fda_communication_advantage,
    print_grouped_results,
    run_spec,
    run_workload,
    strategies_by_name,
)
from repro.experiments.registry import figure4


def _run(quick):
    spec = figure4(quick=quick)
    grouped = run_spec(spec)

    # Diminishing-returns comparison: rerun the IID workload at a higher target.
    higher = {}
    harder_run = type(spec.run)(
        accuracy_target=min(0.97, spec.run.accuracy_target + 0.05),
        max_steps=spec.run.max_steps * 2,
        eval_every_steps=spec.run.eval_every_steps,
    )
    for name, factory in spec.strategy_factories.items():
        higher[name] = run_workload(spec.workloads["iid"], factory, harder_run)
    return grouped, higher


def test_figure4_vgg_mnist_two_targets(benchmark, quick):
    grouped, higher = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_grouped_results("Figure 4: VGG16* on MNIST (base target)", grouped)

    print("\n--- higher accuracy target (diminishing returns) ---")
    for name, result in higher.items():
        print(
            f"{name:<12} reached={result.reached_target} "
            f"comm={result.communication_bytes:>12} B  steps={result.parallel_steps}"
        )

    for results in grouped.values():
        assert_fda_communication_advantage(results, factor_vs_sync=5.0)

    # Diminishing returns: the extra cost of the higher target is milder for FDA
    # than for Synchronous (paper: FDA shows a slight, if any, increase).
    base = strategies_by_name(grouped["iid"])
    if base["Synchronous"].reached_target and higher["Synchronous"].reached_target:
        sync_growth = higher["Synchronous"].communication_bytes / max(
            base["Synchronous"].communication_bytes, 1
        )
        fda_growth = higher["LinearFDA"].communication_bytes / max(
            base["LinearFDA"].communication_bytes, 1
        )
        print(f"communication growth for higher target: Sync {sync_growth:.2f}x, LinearFDA {fda_growth:.2f}x")
        assert fda_growth < sync_growth * 3.0
