"""Machine-readable benchmark output (``BENCH_<name>.json``).

The perf-canary benchmarks print human tables; CI additionally needs a
stable, parseable record so the perf trajectory can be tracked PR-over-PR
(the bench-smoke job uploads these files as build artifacts).  Each
benchmark test contributes one *section* (a list of row dicts); sections
merge into one document per benchmark file, so partially run suites still
produce valid JSON.

Output location: the current working directory, or ``REPRO_BENCH_JSON_DIR``
when set.  Set ``REPRO_BENCH_JSON=0`` to disable emission entirely.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict, List


def bench_json_path(name: str) -> Path:
    """Where ``BENCH_<name>.json`` is written."""
    directory = Path(os.environ.get("REPRO_BENCH_JSON_DIR", "."))
    return directory / f"BENCH_{name}.json"


#: Benchmark names already written by *this* process.  The first emit for a
#: name starts a fresh document — a pre-existing file from an earlier run in
#: a reused workspace must not leak stale sections into the current record —
#: while later emits in the same run merge their sections into it.
_EMITTED_NAMES: set = set()


def emit_bench_section(name: str, section: str, rows: List[Dict[str, object]]) -> None:
    """Merge one section of rows into ``BENCH_<name>.json`` (best effort).

    Emission must never fail a benchmark: I/O errors are swallowed after a
    warning print.
    """
    if os.environ.get("REPRO_BENCH_JSON", "1") == "0":
        return
    path = bench_json_path(name)
    try:
        document = {}
        if name in _EMITTED_NAMES and path.exists():
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                # A corrupt/truncated file (e.g. from an interrupted run in a
                # reused workspace) is discarded, not propagated.
                document = {}
        if not isinstance(document, dict) or document.get("format") != "repro.bench":
            document = {"format": "repro.bench", "version": 1, "benchmark": name}
        _EMITTED_NAMES.add(name)
        # Overwritten (not setdefault) on every emit: a stale environment
        # block from a previous run must not misdescribe fresh rows.
        document["environment"] = {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "small_mode": os.environ.get("REPRO_BENCH_SMALL", "0") == "1",
            "strict_mode": os.environ.get("REPRO_BENCH_STRICT", "1") != "0",
        }
        sections = document.setdefault("sections", {})
        sections[section] = rows
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"  [bench-json] wrote section {section!r} to {path}")
    except OSError as error:  # pragma: no cover - depends on the filesystem
        print(f"  [bench-json] WARNING: could not write {path}: {error}")
